.PHONY: install test bench bench-json perf-check perf-history examples reproduce trace-smoke ledger-smoke profile-smoke fleet-smoke fuzz-smoke fuzz corpus-smoke serve-smoke clean

TRACE_SMOKE_OUT := /tmp/privanalyzer-trace-smoke.jsonl
LEDGER_SMOKE_DIR := /tmp/privanalyzer-ledger-smoke
PROFILE_SMOKE_DIR := /tmp/privanalyzer-profile-smoke
FLEET_SMOKE_DIR := /tmp/privanalyzer-fleet-smoke
CORPUS_SMOKE_DIR := /tmp/privanalyzer-corpus-smoke
SERVE_SMOKE_DIR := /tmp/privanalyzer-serve-smoke
FUZZ_SEED ?= 0
FUZZ_RUNS ?= 300

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Write BENCH_rosa.json: the ROSA query engine's perf trajectory
# (per-benchmark wall-clock, states explored, cache hit rate).
bench-json:
	python benchmarks/perf_snapshot.py

# Assert the cached passwd pipeline run is not slower than the uncached
# one and that the query cache actually served hits.
perf-check:
	python benchmarks/perf_check.py

# Fold the current BENCH_rosa.json into BENCH_history.jsonl (SHA-stamped)
# and print the wall-clock trajectory table.
perf-history:
	python benchmarks/perf_history.py append

# Regenerate every paper table and figure with the printed series visible.
reproduce:
	pytest benchmarks/ --benchmark-only -s -q

# Observability smoke test: a traced analyze run must emit valid JSONL
# spans covering every pipeline stage (see docs/OBSERVABILITY.md).
trace-smoke:
	PYTHONPATH=src python -m repro.cli analyze passwd --trace \
		--trace-out $(TRACE_SMOKE_OUT) --profile > /dev/null
	PYTHONPATH=src python -c "\
	import json, sys; \
	lines = [line for line in open('$(TRACE_SMOKE_OUT)') if line.strip()]; \
	assert lines, 'trace JSONL is empty'; \
	names = {json.loads(line)['name'] for line in lines}; \
	missing = {'compile', 'autopriv.transform', 'chronopriv-run', 'rosa.query'} - names; \
	assert not missing, f'spans missing: {missing}'; \
	print(f'trace-smoke ok: {len(lines)} spans, stages {sorted(names)}')"

# Run-ledger smoke test: two identical analyze runs must diff clean
# (exit 0).  The wide perf tolerance keeps CI timing noise out of the
# gate; verdicts, exposure and syscall surfaces are compared exactly.
ledger-smoke:
	rm -rf $(LEDGER_SMOKE_DIR)
	PYTHONPATH=src python -m repro.cli analyze passwd \
		--ledger $(LEDGER_SMOKE_DIR)/run1 > /dev/null
	PYTHONPATH=src python -m repro.cli analyze passwd \
		--ledger $(LEDGER_SMOKE_DIR)/run2 > /dev/null
	PYTHONPATH=src python -m repro.cli diff \
		$(LEDGER_SMOKE_DIR)/run1 $(LEDGER_SMOKE_DIR)/run2 \
		--perf-tolerance 3.0

# Hot-path profiler smoke test: a profiled analyze run must emit a
# non-empty collapsed-stack file (flamegraph.pl grammar) and a JSON
# report whose rosa.search root attributes >= 95% of its wall time to
# named frames (see docs/PERFORMANCE.md).
profile-smoke:
	rm -rf $(PROFILE_SMOKE_DIR)
	PYTHONPATH=src python -m repro.cli profile passwd \
		--out $(PROFILE_SMOKE_DIR) > /dev/null
	PYTHONPATH=src python -c "\
	import json, re; \
	lines = [line for line in open('$(PROFILE_SMOKE_DIR)/profile.collapsed') if line.strip()]; \
	assert lines, 'collapsed profile is empty'; \
	assert all(re.fullmatch(r'[^ ]+(;[^ ]+)* \d+', line.strip()) for line in lines), 'bad collapsed-stack line'; \
	report = json.load(open('$(PROFILE_SMOKE_DIR)/profile.json')); \
	assert report['schema'] == 1, report['schema']; \
	search = report['roots']['rosa.search']; \
	assert search['attributed_fraction'] >= 0.95, search; \
	assert report['roots']['vm']['attributed_fraction'] >= 0.95, report['roots']['vm']; \
	print(f'profile-smoke ok: {len(lines)} stacks, rosa.search ' \
	      f'{search[\"attributed_fraction\"]:.1%} attributed')"

# Fleet-telemetry smoke test: a --jobs 4 process-pool rosa run must
# merge one telemetry capsule per worker — a single Perfetto trace with
# a distinct track per worker, a workers.json section in the ledger,
# and >= 95% of each worker's execute time attributed in the profiler
# report (see docs/OBSERVABILITY.md).  The queries are vulnerable by
# design, so the rosa exit code 1 is expected.
fleet-smoke:
	rm -rf $(FLEET_SMOKE_DIR) && mkdir -p $(FLEET_SMOKE_DIR)
	for i in 1 2 3 4; do \
		sed "s/ruid : 11/ruid : 1$$i/" examples/queries/figure2.rosa \
			> $(FLEET_SMOKE_DIR)/q$$i.rosa || exit 1; done
	PYTHONPATH=src python -m repro.cli rosa \
		$(FLEET_SMOKE_DIR)/q1.rosa $(FLEET_SMOKE_DIR)/q2.rosa \
		$(FLEET_SMOKE_DIR)/q3.rosa $(FLEET_SMOKE_DIR)/q4.rosa \
		--jobs 4 --ledger $(FLEET_SMOKE_DIR)/ledger \
		--perfetto-out $(FLEET_SMOKE_DIR)/trace.perfetto.json \
		--profile-out $(FLEET_SMOKE_DIR)/prof > /dev/null; \
		test $$? -le 1
	PYTHONPATH=src python -c "\
	import json; \
	trace = json.load(open('$(FLEET_SMOKE_DIR)/trace.perfetto.json')); \
	tracks = {e['args']['name'] for e in trace \
	          if e.get('ph') == 'M' and e['name'] == 'thread_name'}; \
	workers = {name for name in tracks if name.startswith('worker:')}; \
	assert len(workers) >= 2, f'expected multiple worker tracks, got {tracks}'; \
	fleet = json.load(open('$(FLEET_SMOKE_DIR)/ledger/workers.json')); \
	assert fleet['workers'], fleet; \
	prof = json.load(open('$(FLEET_SMOKE_DIR)/ledger/profile.json')); \
	fractions = {w: s['attributed_fraction'] for w, s in prof['workers'].items()}; \
	assert fractions and all(f >= 0.95 for f in fractions.values()), fractions; \
	print(f'fleet-smoke ok: tracks {sorted(workers)}, ' \
	      f'{len(fleet[\"workers\"])} ledger worker(s), ' \
	      f'min attribution {min(fractions.values()):.1%}')"

# Conformance fuzz smoke (CI gate, ~30s): a fixed-seed campaign over the
# six differential oracle families (including compiled-vs-dispatch and
# reduction-parity) plus the marker-gated pytest suite.
# See docs/TESTING.md.
fuzz-smoke:
	PYTHONPATH=src python -m repro.cli fuzz --seed 0 --runs 25
	PYTHONPATH=src python -m pytest tests/ -m fuzz -q

# Nightly-scale campaign (not a CI gate): every oracle family including
# the metamorphic properties, at a real run count.  Override with
# FUZZ_SEED / FUZZ_RUNS, e.g. `make fuzz FUZZ_SEED=$$(date +%s)`.
fuzz:
	PYTHONPATH=src python -m repro.cli fuzz \
		--seed $(FUZZ_SEED) --runs $(FUZZ_RUNS) --oracle all

# Corpus + peers smoke test (CI gate): a seeded 32-program daemon
# corpus with one planted CAP_SYS_ADMIN hoarder.  The peers report must
# rank the violator top-1 with the report's only capability finding,
# and a warm rerun over the same profile store must serve every program
# from cache (see docs/CORPUS.md).
corpus-smoke:
	rm -rf $(CORPUS_SMOKE_DIR)
	PYTHONPATH=src python -m repro.cli corpus build \
		--out $(CORPUS_SMOKE_DIR)/corpus --seed 0 --size 32 \
		--families daemon --violators 1 --no-exemplars --no-builtins
	PYTHONPATH=src python -m repro.cli peers $(CORPUS_SMOKE_DIR)/corpus \
		--store $(CORPUS_SMOKE_DIR)/profiles --jobs 2 --format json \
		--out $(CORPUS_SMOKE_DIR)/peers.json > /dev/null
	PYTHONPATH=src python -c "\
	import json; \
	manifest = json.load(open('$(CORPUS_SMOKE_DIR)/corpus/manifest.json')); \
	violators = {e['name'] for e in manifest['entries'] if e['violator']}; \
	report = json.load(open('$(CORPUS_SMOKE_DIR)/peers.json')); \
	top = report['outliers'][0]; \
	assert top['program'] in violators, \
	    f'top outlier {top} is not the planted violator {violators}'; \
	findings = [(f['program'], f['capability']) for f in report['findings']]; \
	assert findings, 'no capability finding for the planted hoarder'; \
	assert all(p in violators and c == 'CapSysAdmin' for p, c in findings), findings; \
	print(f'corpus-smoke ok: violator {top[\"program\"]} is top-1 ' \
	      f'(score {top[\"score\"]:.1f}), findings {findings}')"
	PYTHONPATH=src python -m repro.cli peers $(CORPUS_SMOKE_DIR)/corpus \
		--store $(CORPUS_SMOKE_DIR)/profiles \
		> $(CORPUS_SMOKE_DIR)/warm.txt 2> $(CORPUS_SMOKE_DIR)/warm-stats.txt
	grep -q "32 hit(s), 0 miss(es)" $(CORPUS_SMOKE_DIR)/warm-stats.txt \
		|| { echo "corpus-smoke: warm sweep was not fully cached:"; \
		     cat $(CORPUS_SMOKE_DIR)/warm-stats.txt; exit 1; }
	@echo "corpus-smoke ok: warm sweep served 32/32 from the profile store"

# Control-plane smoke test (CI gate): start `privanalyzer serve`, run
# two concurrent cold clients over a corpus slice (no duplicated
# publishes, identical answers), then a second-sweep client that must
# be >= 90% store-served and verdict-identical, and snapshot the
# Prometheus dashboard to serve-metrics.prom (see docs/SERVING.md).
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR)
	PYTHONPATH=src python scripts/serve_smoke.py --dir $(SERVE_SMOKE_DIR)

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
