.PHONY: install test bench examples reproduce clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

# Regenerate every paper table and figure with the printed series visible.
reproduce:
	pytest benchmarks/ --benchmark-only -s -q

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		python $$script || exit 1; \
	done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
