"""Benchmark harness: regenerates every table and figure of the paper."""
