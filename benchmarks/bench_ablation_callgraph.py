"""Ablation A2 — call-graph precision vs AutoPriv effectiveness.

§VII-C hypothesises that sshd's retained privileges are partly an
artefact of AutoPriv's conservatively-resolved indirect calls.  This
ablation re-runs the sshd pipeline with a type-matched indirect-call
resolver and measures how much earlier CAP_SYS_CHROOT (used only by a
never-invoked, differently-typed handler) dies.
"""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name


def run_with_filter(indirect_filter):
    analyzer = PrivAnalyzer(indirect_targets_filter=indirect_filter)
    return analyzer.analyze(spec_by_name("sshd"))


@pytest.fixture(scope="module")
def conservative():
    return run_with_filter("address-taken")


@pytest.fixture(scope="module")
def type_matched():
    return run_with_filter("type-matched")


def syschroot_window(analysis):
    total = analysis.chrono.total
    held = sum(
        phase.phase.instruction_count
        for phase in analysis.phases
        if "CapSysChroot" in phase.phase.privileges
    )
    return held / total if total else 0.0


class TestCallGraphPrecision:
    def test_conservative_holds_syschroot_forever(self, conservative):
        assert syschroot_window(conservative) == pytest.approx(1.0)

    def test_type_matched_retires_syschroot(self, conservative, type_matched):
        assert syschroot_window(type_matched) < syschroot_window(conservative)
        # The handler is provably unreachable under arity matching, so the
        # capability should never even enter a counted phase.
        assert syschroot_window(type_matched) == pytest.approx(0.0)

    def test_dynamic_behaviour_unchanged(self, conservative, type_matched):
        """Precision only changes removal points, never observable output."""
        assert conservative.stdout == type_matched.stdout
        assert conservative.chrono.total == pytest.approx(
            type_matched.chrono.total, rel=0.05
        )

    def test_print_comparison(self, conservative, type_matched, capsys):
        with capsys.disabled():
            print("\n=== A2: CAP_SYS_CHROOT retention (sshd) ===")
            print(f"  address-taken call graph: {syschroot_window(conservative):6.1%}")
            print(f"  type-matched call graph:  {syschroot_window(type_matched):6.1%}")


@pytest.mark.parametrize("indirect_filter", ["address-taken", "type-matched"])
def test_analysis_time(benchmark, indirect_filter):
    spec = spec_by_name("sshd")

    def compile_only():
        return PrivAnalyzer(indirect_targets_filter=indirect_filter).compile(spec)

    module, transform, _ = benchmark.pedantic(compile_only, rounds=3, iterations=1)
    assert transform is not None
