"""Ablation A3 — ChronoPriv instrumentation overhead.

The paper's §VI instrumentation adds one counter call per basic block.
This ablation measures the cost in both retired instructions and wall
clock, per program.
"""

import pytest

from repro.autopriv import transform_module
from repro.chronopriv import instrument_module
from repro.frontend import compile_source
from repro.oskernel.setup import build_kernel
from repro.programs import spec_by_name
from repro.vm import Interpreter
from benchmarks.conftest import ORIGINAL_PROGRAMS


def build(name, instrumented):
    spec = spec_by_name(name)
    module = compile_source(spec.source, spec.name)
    transform_module(module, spec.permitted)
    if instrumented:
        instrument_module(module)
    return spec, module


def execute(spec, module):
    kernel = build_kernel(refactored_ownership=spec.refactored_fs)
    process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
    vm = Interpreter(module, kernel, process, argv=list(spec.argv), stdin=list(spec.stdin))
    vm.env.update({key: list(value) if isinstance(value, list) else value
                   for key, value in spec.env.items()})
    if spec.setup is not None:
        spec.setup(kernel, vm)
    code = vm.run()
    assert code == spec.expected_exit
    return vm


@pytest.mark.parametrize("name", ORIGINAL_PROGRAMS)
@pytest.mark.parametrize("instrumented", [False, True], ids=["plain", "chrono"])
def test_execution_time(benchmark, name, instrumented):
    spec, module = build(name, instrumented)
    vm = benchmark.pedantic(lambda: execute(spec, module), rounds=3, iterations=1)
    benchmark.extra_info["retired"] = vm.executed_instructions


def test_print_overhead(capsys):
    with capsys.disabled():
        print("\n=== A3: ChronoPriv instruction overhead ===")
        print(f"{'program':<10} {'plain':>10} {'instrumented':>13} {'overhead':>9}")
        for name in ORIGINAL_PROGRAMS:
            spec, plain_module = build(name, instrumented=False)
            plain = execute(spec, plain_module).executed_instructions
            spec, chrono_module = build(name, instrumented=True)
            chrono = execute(spec, chrono_module).executed_instructions
            print(
                f"{name:<10} {plain:>10,} {chrono:>13,} "
                f"{(chrono - plain) / plain:>8.1%}"
            )


@pytest.mark.parametrize("name", ORIGINAL_PROGRAMS)
def test_overhead_is_bounded(name):
    """One counter per block: overhead can never exceed 1 per instruction."""
    spec, plain_module = build(name, instrumented=False)
    plain = execute(spec, plain_module).executed_instructions
    spec, chrono_module = build(name, instrumented=True)
    chrono = execute(spec, chrono_module).executed_instructions
    assert plain < chrono <= 2 * plain
