"""Ablation A4 — attack feasibility and search cost under defenses (§X).

Extends the paper's future-work direction with measurements: for each
program phase of su (the most exposed utility), how do the four modeled
defenses change the attack-1 verdict, and what do the weaker attacker
models cost ROSA?
"""

import pytest

from repro.core.attacks import READ_DEV_MEM
from repro.rosa import check
from repro.rosa.defenses import apply_cfi, apply_data_integrity, apply_seccomp
from benchmarks.conftest import analysis_for


def su_phase_query(phase_index):
    analysis = analysis_for("su")
    phase = analysis.phases[phase_index].phase
    return READ_DEV_MEM.build_query(
        phase.privileges, phase.uids, phase.gids, analysis.syscalls
    )


DEFENSES = {
    "undefended": lambda query: query,
    "seccomp-no-open": lambda query: apply_seccomp(
        query, ["setuid", "seteuid", "setgid", "setegid", "kill"]
    ),
    "arg-integrity": lambda query: apply_data_integrity(query),
}


@pytest.mark.parametrize("defense", sorted(DEFENSES))
def test_defended_search_time(benchmark, defense):
    query = DEFENSES[defense](su_phase_query(0))
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    benchmark.extra_info["verdict"] = report.verdict.value


def test_print_defense_matrix(capsys):
    with capsys.disabled():
        print("\n=== A4: su attack-1 verdicts under defenses, per phase ===")
        analysis = analysis_for("su")
        print(f"{'phase':<10}" + "".join(f"  {name:<16}" for name in sorted(DEFENSES)))
        for index, phase_analysis in enumerate(analysis.phases):
            row = [f"su_priv{index + 1:<3}"]
            for name in sorted(DEFENSES):
                query = DEFENSES[name](su_phase_query(index))
                verdict = check(query).verdict
                row.append(f"  {verdict.symbol} {verdict.value:<13}")
            print("".join(row))


class TestDefenseShapes:
    def test_seccomp_closes_every_phase(self):
        analysis = analysis_for("su")
        for index in range(len(analysis.phases)):
            query = DEFENSES["seccomp-no-open"](su_phase_query(index))
            assert not check(query).vulnerable

    def test_arg_integrity_closes_every_phase(self):
        analysis = analysis_for("su")
        for index in range(len(analysis.phases)):
            query = DEFENSES["arg-integrity"](su_phase_query(index))
            assert not check(query).vulnerable

    def test_undefended_matches_pipeline(self):
        analysis = analysis_for("su")
        for index, phase_analysis in enumerate(analysis.phases):
            expected = phase_analysis.verdicts[1].verdict
            assert check(su_phase_query(index)).verdict is expected
