"""Ablation A5 — sensitivity of Table III to the /dev/mem DAC mode.

Our reproduction deviates from the paper's Table III in one place: the
paper marks passwd's final euid-0 phases ✗ for attacks 1/2, while its
own §VII-D1 prose says euid 0 *can* open /dev/mem.  This ablation tests
whether any static /dev/mem model reconciles table and prose:

* With Ubuntu's stock mode (root:kmem 0o640), euid 0 reads/writes
  directly — matching the prose, and every other Table III cell.
* With a locked-down mode (0o000), euid 0 *still* wins: as the file's
  owner it may ``chmod`` first (no capability needed) and then open —
  the model checker finds the two-step recipe by itself.
* Locking the mode is not even consistent with the rest of the table:
  su's attack-2 ✓ cells (CapSetuid-only phases) require /dev/mem to be
  owner-writable.

Conclusion (also recorded in EXPERIMENTS.md): the paper's ✗ in that one
0.23 %-of-execution cell cannot be produced by any consistent static
file model; our grid follows the documented DAC semantics and the
paper's prose.
"""

import pytest

from repro.core.attacks import READ_DEV_MEM, WRITE_DEV_MEM
from repro.rosa import check
from benchmarks.conftest import analysis_for


def phase_query(program, phase_index, attack, devmem_perms, surface=None):
    analysis = analysis_for(program)
    phase = analysis.phases[phase_index].phase
    return attack.build_query(
        phase.privileges,
        phase.uids,
        phase.gids,
        surface if surface is not None else analysis.syscalls,
        devmem_perms=devmem_perms,
    )


class TestDevmemModeSensitivity:
    def test_stock_mode_euid0_reads_directly(self):
        report = check(phase_query("passwd", 4, READ_DEV_MEM, 0o640))
        assert report.vulnerable
        assert report.witness == ["open"]

    def test_locked_mode_euid0_chmods_first(self):
        """Locking the mode does not save the paper's ✗: the owner may
        chmod.  The witness is the giveaway — ROSA discovers the longer
        recipe."""
        report = check(phase_query("passwd", 4, READ_DEV_MEM, 0o000))
        assert report.vulnerable
        assert report.witness == ["chmod", "open"]

    def test_locked_mode_without_chmod_finally_blocks(self):
        """Only mode 0o000 *and* a chmod/chown-free syscall surface yield
        the paper's ✗ — but passwd does use chmod (§VII-C), so that
        surface contradicts the attack model."""
        surface = frozenset({"open_read", "open_write", "setuid"})
        report = check(
            phase_query("passwd", 4, READ_DEV_MEM, 0o000, surface=surface)
        )
        assert not report.vulnerable

    def test_locked_mode_breaks_su_attack2(self):
        """Cross-check: su's CapSetuid-only phase is ✓ for attack 2 in the
        paper, which needs /dev/mem owner-writable — mode 0o000 flips it.
        No single static mode satisfies both tables' cells."""
        stock = check(phase_query("su", 3, WRITE_DEV_MEM, 0o640))
        locked = check(phase_query("su", 3, WRITE_DEV_MEM, 0o000))
        assert stock.vulnerable  # the paper's ✓
        assert not locked.vulnerable  # 0o000 would contradict it

    def test_refactored_grid_robust_to_mode(self):
        """The refactoring conclusion is insensitive to the choice: the
        refactored passwd's empty phase is ✗ under either mode (its euid
        is 998, not 0)."""
        for mode in (0o640, 0o000):
            report = check(phase_query("passwdRef", 4, READ_DEV_MEM, mode))
            assert not report.vulnerable

    def test_print_comparison(self, capsys):
        with capsys.disabled():
            print("\n=== A5: passwd attacks 1/2 vs /dev/mem mode ===")
            print(f"{'phase':<16} {'0o640 (Ubuntu)':>16} {'0o000 (locked)':>16}")
            analysis = analysis_for("passwd")
            for index, phase_analysis in enumerate(analysis.phases):
                cells = []
                for mode in (0o640, 0o000):
                    symbols = " ".join(
                        check(
                            phase_query("passwd", index, attack, mode)
                        ).verdict.symbol
                        for attack in (READ_DEV_MEM, WRITE_DEV_MEM)
                    )
                    cells.append(symbols)
                print(
                    f"{phase_analysis.phase.name:<16} {cells[0]:>16} {cells[1]:>16}"
                )
            print("0o000 does not reproduce the paper's priv5 ✗ (owner chmod)"
                  " and would break su's attack-2 ✓ cells.")


@pytest.mark.parametrize("mode", [0o640, 0o000], ids=["ubuntu-640", "locked-000"])
def test_verdict_time_by_mode(benchmark, mode):
    query = phase_query("passwd", 4, READ_DEV_MEM, mode)
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    benchmark.extra_info["verdict"] = report.verdict.value
