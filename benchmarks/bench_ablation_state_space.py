"""Ablation A1 — state-space behaviour of the bounded model checker.

§VIII's explanation of ROSA's timing: successful attacks stop at the
first witness, failing attacks must exhaust the reachable space, and the
space grows with the wildcard domains (users, files, syscall budget).
This ablation measures all three effects directly.
"""

import pytest

from repro.caps import CapabilitySet
from repro.rewriting import Configuration
from repro.rosa import RosaQuery, check, goals, model, syscalls
from repro.rosa.syscalls import WILDCARD


def devmem_query(caps, extra_users=0, repeat=1):
    """An attack-1-style query with a configurable wildcard user domain."""
    objects = [
        model.process_for_user(1, uid=1000, gid=1000),
        model.file_obj(10, name="/dev/mem", owner=0, group=15, perms=0o640),
        model.dir_entry(11, name="/dev", owner=0, group=0, perms=0o755, inode=10),
        model.user(20, 0),
        model.user(21, 1000),
        model.group(30, 15),
        model.group(31, 1000),
    ]
    for index in range(extra_users):
        objects.append(model.user(40 + index, 5000 + index))
    capset = CapabilitySet.parse(caps).as_frozenset()
    messages = []
    for _ in range(repeat):
        messages.extend(
            [
                syscalls.sys_open(1, WILDCARD, "r", capset),
                syscalls.sys_setuid(1, WILDCARD, capset),
                syscalls.sys_setresuid(1, WILDCARD, WILDCARD, WILDCARD, capset),
                syscalls.sys_chown(1, WILDCARD, WILDCARD, WILDCARD, capset),
                syscalls.sys_chmod(1, WILDCARD, 0o777, capset),
            ]
        )
    return RosaQuery(
        f"devmem[{caps}/u{extra_users}/r{repeat}]",
        Configuration(objects + messages),
        goals.file_opened_for_read(10),
    )


class TestSuccessVsFailure:
    def test_successful_attack_explores_less(self, capsys):
        success = check(devmem_query("CapSetuid"))
        failure = check(devmem_query("(empty)"))
        assert success.vulnerable and not failure.vulnerable
        with capsys.disabled():
            print(
                f"\n=== A1: success explores {success.states_explored} states, "
                f"failure exhausts {failure.states_explored} ==="
            )
        assert failure.states_explored > success.states_explored

    @pytest.mark.parametrize("caps", ["CapSetuid", "CapDacOverride", "CapChown"])
    def test_successful_search_time(self, benchmark, caps):
        query = devmem_query(caps)
        report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
        assert report.vulnerable

    def test_failing_search_time(self, benchmark):
        query = devmem_query("(empty)")
        report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
        assert not report.vulnerable


class TestWildcardDomainScaling:
    @pytest.mark.parametrize("extra_users", [0, 2, 4])
    def test_failing_search_scales_with_users(self, benchmark, extra_users):
        query = devmem_query("(empty)", extra_users=extra_users)
        report = benchmark.pedantic(lambda: check(query), rounds=5, iterations=1)
        benchmark.extra_info["states"] = report.states_seen

    def test_state_count_grows_with_domain(self, capsys):
        counts = []
        for extra_users in (0, 2, 4):
            report = check(devmem_query("(empty)", extra_users=extra_users))
            counts.append(report.states_seen)
        with capsys.disabled():
            print(f"\n=== A1: failing-search states vs wildcard users: {counts} ===")
        assert counts[0] <= counts[1] <= counts[2]


class TestSyscallBudgetScaling:
    @pytest.mark.parametrize("repeat", [1, 2])
    def test_failing_search_scales_with_budget(self, benchmark, repeat):
        query = devmem_query("(empty)", repeat=repeat)
        report = benchmark.pedantic(lambda: check(query), rounds=3, iterations=1)
        benchmark.extra_info["states"] = report.states_seen

    def test_budget_increases_states(self):
        one = check(devmem_query("(empty)", repeat=1))
        two = check(devmem_query("(empty)", repeat=2))
        assert two.states_seen >= one.states_seen
