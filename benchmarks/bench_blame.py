"""Blame analysis bench — automating the paper's §VII-D observations.

Times the necessary-capability computation and prints the blame tables
that correspond to the paper's manual findings (CAP_SETUID is su's
refactoring target; passwd's DAC capabilities are mutually redundant).
"""

import pytest

from repro.caps import CapabilitySet
from repro.core.attacks import ATTACKS_BY_ID
from repro.core.blame import (
    minimal_blocking_sets,
    necessary_capabilities,
    render_blame,
)
from benchmarks.conftest import analysis_for


def test_print_blame_tables(capsys):
    with capsys.disabled():
        print("\n=== Capability blame (automated §VII-D reasoning) ===")
        for program in ("passwd", "su"):
            print()
            print(render_blame(analysis_for(program)))


@pytest.mark.parametrize("program", ["passwd", "su"])
def test_blame_time_per_phase(benchmark, program):
    analysis = analysis_for(program)
    phase = analysis.phases[0].phase
    attack = ATTACKS_BY_ID[4]

    def blame_once():
        return necessary_capabilities(
            attack, phase.privileges, phase.uids, phase.gids, analysis.syscalls
        )

    result = benchmark.pedantic(blame_once, rounds=5, iterations=1)
    benchmark.extra_info["blamed"] = result.describe()


class TestPaperObservations:
    def test_su_refactoring_target_is_setuid(self):
        """§VII-D2: 'The last privilege to remain live is CAP_SETUID ...
        helping guide the developer on where to focus refactoring.'"""
        analysis = analysis_for("su")
        phase = analysis.phases[0].phase
        blamed = necessary_capabilities(
            ATTACKS_BY_ID[4], phase.privileges, phase.uids, phase.gids,
            analysis.syscalls,
        )
        assert blamed == CapabilitySet.of("CapSetuid")

    def test_passwd_attack1_needs_a_removal_pair(self):
        """passwd's phase 1 holds several independent read routes
        (DacReadSearch, DacOverride, Setuid, Setgid-to-kmem, Chown,
        Fowner): no single removal suffices — which is exactly why the
        paper's refactoring rebuilds the program around *credentials*
        instead of trimming capabilities."""
        analysis = analysis_for("passwd")
        phase = analysis.phases[0].phase
        single = necessary_capabilities(
            ATTACKS_BY_ID[1], phase.privileges, phase.uids, phase.gids,
            analysis.syscalls,
        )
        assert single == CapabilitySet.empty()
        pairs = minimal_blocking_sets(
            ATTACKS_BY_ID[1], phase.privileges, phase.uids, phase.gids,
            analysis.syscalls, max_size=2,
        )
        # With five independent routes even pairs cannot block it.
        assert pairs == []
