"""Figures 10–11 — ROSA search time for the refactored programs.

The paper observes that analysing the refactored programs is generally
*slower*: more attacks fail, and failing attacks force ROSA to exhaust
the state space (§VIII).  The assertion at the bottom checks that shape.
"""

import time

import pytest

from repro.core.attacks import ALL_ATTACKS
from repro.rosa import check
from benchmarks.conftest import REFACTORED_PROGRAMS, analysis_for


def _figure_params():
    params = []
    for program in REFACTORED_PROGRAMS:
        analysis = analysis_for(program)
        for index in range(len(analysis.phases)):
            for attack in ALL_ATTACKS:
                params.append(
                    pytest.param(
                        program,
                        index,
                        attack,
                        id=f"{program}_priv{index + 1}-attack{attack.attack_id}",
                    )
                )
    return params


@pytest.mark.parametrize("program,phase_index,attack", _figure_params())
def test_search_time(benchmark, program, phase_index, attack):
    analysis = analysis_for(program)
    phase = analysis.phases[phase_index].phase
    query = attack.build_query(
        phase.privileges, phase.uids, phase.gids, analysis.syscalls
    )
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    benchmark.extra_info["verdict"] = report.verdict.value


def _mean_verdict_time(analysis):
    total = 0.0
    queries = 0
    for phase_analysis in analysis.phases:
        phase = phase_analysis.phase
        for attack in ALL_ATTACKS:
            query = attack.build_query(
                phase.privileges, phase.uids, phase.gids, analysis.syscalls
            )
            start = time.perf_counter()
            check(query)
            total += time.perf_counter() - start
            queries += 1
    return total / queries


def test_refactored_searches_are_not_faster(capsys):
    """§VIII: verdicts on the refactored programs take longer on average
    (more exhausted-space negatives)."""
    originals = [_mean_verdict_time(analysis_for(p)) for p in ("passwd", "su")]
    refactored = [_mean_verdict_time(analysis_for(p)) for p in REFACTORED_PROGRAMS]
    with capsys.disabled():
        print("\n=== Figures 10-11: mean verdict time (ms) ===")
        for name, value in zip(("passwd", "su"), originals):
            print(f"  {name:<10} {value * 1000:7.3f}")
        for name, value in zip(REFACTORED_PROGRAMS, refactored):
            print(f"  {name:<10} {value * 1000:7.3f}")
    # The shape claim, with slack for timer noise: refactored analyses are
    # at least comparable — never dramatically faster.
    assert sum(refactored) > 0.5 * sum(originals)
