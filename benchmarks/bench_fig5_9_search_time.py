"""Figures 5–9 — ROSA search time per (program, privilege phase, attack).

The paper runs each (phase, attack) query 10 times and reports mean and
standard deviation of ROSA's verdict time; ``benchmark.pedantic`` with 10
rounds reproduces that methodology.  The printed series is the figure
data: one line per (phase, attack) with the verdict and timing.
"""

import pytest

from repro.core.attacks import ALL_ATTACKS
from repro.rosa import check
from benchmarks.conftest import ORIGINAL_PROGRAMS, analysis_for


def _figure_params():
    params = []
    for program in ORIGINAL_PROGRAMS:
        analysis = analysis_for(program)
        for index, phase_analysis in enumerate(analysis.phases, start=1):
            for attack in ALL_ATTACKS:
                params.append(
                    pytest.param(
                        program,
                        index - 1,
                        attack,
                        id=f"{program}_priv{index}-attack{attack.attack_id}",
                    )
                )
    return params


@pytest.mark.parametrize("program,phase_index,attack", _figure_params())
def test_search_time(benchmark, program, phase_index, attack):
    analysis = analysis_for(program)
    phase = analysis.phases[phase_index].phase
    query = attack.build_query(
        phase.privileges, phase.uids, phase.gids, analysis.syscalls,
        label=f"{phase.name}/attack{attack.attack_id}",
    )
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    benchmark.extra_info["verdict"] = report.verdict.value
    benchmark.extra_info["states"] = report.states_seen
    # Sanity: the timed verdict matches the pipeline's verdict.
    expected = analysis.phases[phase_index].verdicts[attack.attack_id].verdict
    assert report.verdict is expected


def test_print_figure_series(capsys):
    with capsys.disabled():
        print("\n=== Figures 5-9: ROSA search time (ms, mean of 10) ===")
        import time

        for program in ORIGINAL_PROGRAMS:
            analysis = analysis_for(program)
            print(f"\n-- {program} --")
            for phase_analysis in analysis.phases:
                phase = phase_analysis.phase
                cells = []
                for attack in ALL_ATTACKS:
                    query = attack.build_query(
                        phase.privileges, phase.uids, phase.gids, analysis.syscalls
                    )
                    samples = []
                    for _ in range(10):
                        start = time.perf_counter()
                        report = check(query)
                        samples.append((time.perf_counter() - start) * 1000)
                    mean = sum(samples) / len(samples)
                    cells.append(f"a{attack.attack_id}:{report.verdict.symbol}{mean:7.2f}")
                print(f"  {phase.name:<16} " + "  ".join(cells))
