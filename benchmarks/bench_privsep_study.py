"""Extension study — privilege separation vs the paper's sshd finding.

The paper leaves sshd exposed for ≈99 % of execution and points at its
structural causes (§VII-C).  This study measures the mitigation OpenSSH
actually ships: a monitor/child split where the forked session child
permanently destroys its copy of every capability before doing the
heavy work.  Regenerates a Table-III-style block for both processes and
the combined-exposure comparison.
"""

import pytest

from repro.core.attacks import ALL_ATTACKS
from repro.core.multiprocess import analyze_multiprocess
from repro.programs import spec_by_name
from benchmarks.conftest import analysis_for


@pytest.fixture(scope="module")
def privsep():
    return analyze_multiprocess(spec_by_name("sshdPrivsep"))


def test_print_study(privsep, capsys):
    monolithic = analysis_for("sshd")
    with capsys.disabled():
        print("\n=== Privilege-separation study (extension) ===")
        print()
        print(privsep.render())
        print("\ncombined exposure (instruction-weighted, all processes):")
        print(f"{'attack':<24} {'monolithic sshd':>16} {'privsep sshd':>14}")
        table = privsep.exposure_table()
        for attack in ALL_ATTACKS:
            mono = monolithic.vulnerability_window(attack.attack_id)
            print(f"{attack.name:<24} {mono:>16.1%} {table[attack.name]:>14.1%}")


def test_privsep_pipeline_time(benchmark):
    benchmark.pedantic(
        lambda: analyze_multiprocess(spec_by_name("sshdPrivsep")),
        rounds=3,
        iterations=1,
    )


class TestStudyShapes:
    def test_exposure_ratio(self, privsep):
        monolithic = analysis_for("sshd")
        split = privsep.combined_exposure(ALL_ATTACKS[0])
        assert monolithic.vulnerability_window(1) / max(split, 1e-9) > 5

    def test_child_dominates_instruction_count(self, privsep):
        parent, *children = privsep.reports
        child_total = sum(child.total for child in children)
        assert child_total / privsep.total_instructions > 0.85
