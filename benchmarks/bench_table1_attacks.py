"""Table I — the four modeled attacks.

Regenerates the attack inventory and times one canonical ROSA verdict
per attack: the program has the full syscall surface, a dangerous
capability, and regular-user credentials.
"""

import pytest

from repro.caps import CapabilitySet
from repro.core.attacks import ALL_ATTACKS
from repro.rosa import check

SURFACE = frozenset(
    {
        "open_read", "open_write", "setuid", "seteuid", "setresuid",
        "setgid", "setegid", "setresgid", "kill", "chmod", "chown",
        "unlink", "rename", "socket", "bind", "connect",
    }
)
USER = (1000, 1000, 1000)

#: A capability that makes each attack feasible, per the Table I column.
ENABLING_CAPS = {
    1: "CapDacReadSearch",
    2: "CapDacOverride",
    3: "CapNetBindService",
    4: "CapKill",
}


def test_print_table1(capsys):
    with capsys.disabled():
        print("\n=== Table I: Modeled Attacks ===")
        for attack in ALL_ATTACKS:
            print(f"  {attack.attack_id}  {attack.description}")


@pytest.mark.parametrize("attack", ALL_ATTACKS, ids=lambda a: a.name)
def test_attack_verdict_time(benchmark, attack):
    caps = CapabilitySet.of(ENABLING_CAPS[attack.attack_id])
    query = attack.build_query(caps, USER, USER, SURFACE)
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    assert report.vulnerable


@pytest.mark.parametrize("attack", ALL_ATTACKS, ids=lambda a: f"{a.name}-blocked")
def test_blocked_attack_verdict_time(benchmark, attack):
    query = attack.build_query(CapabilitySet.empty(), USER, USER, SURFACE)
    report = benchmark.pedantic(lambda: check(query), rounds=10, iterations=1)
    assert not report.vulnerable
