"""Table II — the test programs: inventory, SLOC, and compile time."""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from benchmarks.conftest import ORIGINAL_PROGRAMS


def test_print_table2(capsys):
    with capsys.disabled():
        print("\n=== Table II: Programs for Experiments ===")
        print(f"{'Program':<10} {'PrivC SLOC':>10}  Description")
        for name in ORIGINAL_PROGRAMS:
            spec = spec_by_name(name)
            print(f"{spec.name:<10} {spec.sloc:>10}  {spec.description}")


@pytest.mark.parametrize("name", ORIGINAL_PROGRAMS)
def test_compile_time(benchmark, name):
    """PrivC → IR → AutoPriv → ChronoPriv compile time per program."""
    spec = spec_by_name(name)
    analyzer = PrivAnalyzer()
    module, transform, instrumentation = benchmark(analyzer.compile, spec)
    assert instrumentation.blocks_instrumented > 0
