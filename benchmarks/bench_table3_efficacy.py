"""Table III — security efficacy of the five original programs.

Prints the regenerated table (phases, credentials, dynamic instruction
counts, per-attack verdicts) and benchmarks the full PrivAnalyzer
pipeline per program.
"""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from benchmarks.conftest import ORIGINAL_PROGRAMS, analysis_for


def test_print_table3(capsys):
    with capsys.disabled():
        print("\n=== Table III: Security Efficacy Results ===")
        print("(attacks: 1=read /dev/mem, 2=write /dev/mem, 3=bind port, 4=kill sshd)")
        for name in ORIGINAL_PROGRAMS:
            analysis = analysis_for(name)
            print()
            print(analysis.render_table())
        print()
        print("Vulnerability windows (fraction of dynamic instructions):")
        header = f"{'program':<10}" + "".join(f"  attack{i}" for i in range(1, 5))
        print(header)
        for name in ORIGINAL_PROGRAMS:
            analysis = analysis_for(name)
            row = f"{name:<10}" + "".join(
                f"  {analysis.vulnerability_window(i):7.1%}" for i in range(1, 5)
            )
            print(row)


@pytest.mark.parametrize("name", ORIGINAL_PROGRAMS)
def test_full_pipeline_time(benchmark, name):
    """Wall-clock for compile + run + model-check of one program."""
    spec = spec_by_name(name)

    def pipeline():
        return PrivAnalyzer().analyze(spec)

    analysis = benchmark.pedantic(pipeline, rounds=3, iterations=1)
    assert analysis.chrono.total > 0


class TestHeadlineShapes:
    """The claims Table III supports, asserted against fresh runs."""

    def test_ping_all_clear(self):
        assert analysis_for("ping").invulnerable_window() == 1.0

    def test_thttpd_mostly_clear(self):
        assert analysis_for("thttpd").invulnerable_window() > 0.8

    def test_passwd_retains_power(self):
        assert analysis_for("passwd").vulnerability_window(1) > 0.9

    def test_su_retains_power(self):
        assert analysis_for("su").vulnerability_window(4) > 0.8

    def test_sshd_always_exposed(self):
        assert analysis_for("sshd").vulnerability_window(1) == pytest.approx(1.0)
