"""Tables IV and V — the refactored passwd and su.

Prints the refactoring-size comparison (Table IV's point: the changes
are small) and the regenerated Table V, and benchmarks the refactored
pipelines.
"""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from benchmarks.conftest import REFACTORED_PROGRAMS, analysis_for


def test_print_table4(capsys):
    with capsys.disabled():
        print("\n=== Table IV: Refactoring size (PrivC SLOC) ===")
        for original, refactored in (("passwd", "passwdRef"), ("su", "suRef")):
            original_sloc = spec_by_name(original).sloc
            refactored_sloc = spec_by_name(refactored).sloc
            print(
                f"  {original:<8} {original_sloc:>4} -> {refactored_sloc:>4} "
                f"(delta {refactored_sloc - original_sloc:+d})"
            )


def test_print_table5(capsys):
    with capsys.disabled():
        print("\n=== Table V: Results for Refactored Programs ===")
        for name in REFACTORED_PROGRAMS:
            analysis = analysis_for(name)
            print()
            print(analysis.render_table())
        print()
        print("Improvement (read+write /dev/mem exposure):")
        for original, refactored in (("passwd", "passwdRef"), ("su", "suRef")):
            before = analysis_for(original).vulnerability_window(1)
            after = analysis_for(refactored).vulnerability_window(1)
            print(f"  {original:<8} {before:6.1%} -> {after:6.1%}")


@pytest.mark.parametrize("name", REFACTORED_PROGRAMS)
def test_refactored_pipeline_time(benchmark, name):
    spec = spec_by_name(name)
    analysis = benchmark.pedantic(
        lambda: PrivAnalyzer().analyze(spec), rounds=3, iterations=1
    )
    assert analysis.chrono.total > 0


class TestHeadlineImprovements:
    def test_passwd_window_shrinks(self):
        assert analysis_for("passwd").vulnerability_window(1) > 0.9
        assert analysis_for("passwdRef").vulnerability_window(1) < 0.12

    def test_su_window_shrinks(self):
        assert analysis_for("su").vulnerability_window(1) > 0.8
        assert analysis_for("suRef").vulnerability_window(1) < 0.03

    def test_refactored_mostly_invulnerable(self):
        assert analysis_for("passwdRef").invulnerable_window() > 0.88
        assert analysis_for("suRef").invulnerable_window() > 0.97
