"""Shared fixtures for the benchmark harness.

Each bench module regenerates one of the paper's tables or figures.  The
full pipeline runs once per program per session; the benchmarks then time
the pieces the paper times (chiefly ROSA searches, Figures 5–11) and
print the regenerated rows so `pytest benchmarks/ --benchmark-only -s`
reproduces the evaluation section end to end.
"""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name

ORIGINAL_PROGRAMS = ("passwd", "ping", "sshd", "su", "thttpd")
REFACTORED_PROGRAMS = ("passwdRef", "suRef")

_cache = {}


def analysis_for(name):
    """Run (and cache) the full PrivAnalyzer pipeline for one program."""
    if name not in _cache:
        _cache[name] = PrivAnalyzer().analyze(spec_by_name(name))
    return _cache[name]


@pytest.fixture(scope="session")
def analyses():
    """Pipeline results for the five Table III programs."""
    return {name: analysis_for(name) for name in ORIGINAL_PROGRAMS}


@pytest.fixture(scope="session")
def refactored_analyses():
    """Pipeline results for the two Table V programs."""
    return {name: analysis_for(name) for name in REFACTORED_PROGRAMS}
