"""Shared fixtures for the benchmark harness.

Each bench module regenerates one of the paper's tables or figures.  The
full pipeline runs once per program per session; the benchmarks then time
the pieces the paper times (chiefly ROSA searches, Figures 5–11) and
print the regenerated rows so `pytest benchmarks/ --benchmark-only -s`
reproduces the evaluation section end to end.

The shared pipeline runs record per-stage span breakdowns (compile /
chronopriv-run / rosa) through :mod:`repro.telemetry`; the terminal
summary prints them so every benchmark session also reports where the
non-benchmarked pipeline time went.  The timed inner loops themselves
run with telemetry disabled — the overhead-free default path.
"""

import pytest

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name
from repro.telemetry import Telemetry

ORIGINAL_PROGRAMS = ("passwd", "ping", "sshd", "su", "thttpd")
REFACTORED_PROGRAMS = ("passwdRef", "suRef")

#: Stages reported in the per-program breakdown table.
BREAKDOWN_STAGES = (
    "compile", "autopriv.transform", "chronopriv-run", "rosa.check-phase",
)

_cache = {}
#: Per-program per-stage seconds, filled as analyses run:
#: ``{"passwd": {"compile": 0.03, ...}, ...}``.
STAGE_TIMINGS = {}


def analysis_for(name):
    """Run (and cache) the full PrivAnalyzer pipeline for one program."""
    if name not in _cache:
        telemetry = Telemetry.enabled()
        _cache[name] = PrivAnalyzer(telemetry=telemetry).analyze(spec_by_name(name))
        totals = {}
        for span in telemetry.tracer.finished:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        STAGE_TIMINGS[name] = {
            stage: totals.get(stage, 0.0) for stage in BREAKDOWN_STAGES
        }
        STAGE_TIMINGS[name]["total"] = totals.get("pipeline.analyze", 0.0)
    return _cache[name]


@pytest.fixture(scope="session")
def stage_timings():
    """Per-stage pipeline breakdowns recorded so far (program -> stage -> s)."""
    return STAGE_TIMINGS


def pytest_terminal_summary(terminalreporter):
    if not STAGE_TIMINGS:
        return
    terminalreporter.write_sep("-", "pipeline stage breakdown (ms)")
    header = f"{'program':<12}" + "".join(
        f"{stage:>20}" for stage in BREAKDOWN_STAGES + ("total",)
    )
    terminalreporter.write_line(header)
    for name, stages in STAGE_TIMINGS.items():
        terminalreporter.write_line(
            f"{name:<12}"
            + "".join(
                f"{stages.get(stage, 0.0) * 1000:>20.1f}"
                for stage in BREAKDOWN_STAGES + ("total",)
            )
        )


@pytest.fixture(scope="session")
def analyses():
    """Pipeline results for the five Table III programs."""
    return {name: analysis_for(name) for name in ORIGINAL_PROGRAMS}


@pytest.fixture(scope="session")
def refactored_analyses():
    """Pipeline results for the two Table V programs."""
    return {name: analysis_for(name) for name in REFACTORED_PROGRAMS}
