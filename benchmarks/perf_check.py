"""``make perf-check``: the query cache must never cost wall-clock.

Runs the full passwd pipeline with a cold engine and then with a warm
one (same analyzer, cache primed by the first run) and asserts the warm
run is not slower — within a noise tolerance, since passwd's ROSA stage
is a few milliseconds of a VM-dominated pipeline and the two runs are
near-identical by construction.  Also asserts the cache actually engaged
(passwd's 20 phase×attack queries hit 17 distinct keys, so the second
run must be answered entirely from cache).
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import PrivAnalyzer  # noqa: E402
from repro.programs import spec_by_name  # noqa: E402

REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))
#: Allowed warm/cold ratio: >1.0 absorbs scheduler noise on a pipeline
#: whose cacheable stage is only a few percent of wall-clock.
TOLERANCE = float(os.environ.get("PERF_CHECK_TOLERANCE", "1.15"))


def best_run(analyzer_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        analyzer = analyzer_factory()
        start = time.perf_counter()
        analyzer.analyze(spec_by_name("passwd"))
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cold = best_run(PrivAnalyzer)

    shared = PrivAnalyzer()
    shared.analyze(spec_by_name("passwd"))  # prime the cache
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        shared.analyze(spec_by_name("passwd"))
        warm = min(warm, time.perf_counter() - start)

    stats = shared.engine.cache_stats()
    ratio = warm / cold
    print(
        f"perf-check: cold {cold * 1000:.1f} ms, warm {warm * 1000:.1f} ms "
        f"(ratio {ratio:.2f}, tolerance {TOLERANCE}), "
        f"cache hit rate {stats['hit_rate']:.2f}"
    )
    if stats["hits"] == 0:
        print("perf-check FAILED: the query cache never hit", file=sys.stderr)
        return 1
    if ratio > TOLERANCE:
        print(
            f"perf-check FAILED: cached run {ratio:.2f}x slower than uncached",
            file=sys.stderr,
        )
        return 1
    print("perf-check ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
