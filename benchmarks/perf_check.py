"""``make perf-check``: the query cache must never cost wall-clock,
and state-space reduction must never cost states or flip a verdict.

Runs the full passwd pipeline with a cold engine and then with a warm
one (same analyzer, cache primed by the first run) and asserts the warm
run is not slower — within a noise tolerance, since passwd's ROSA stage
is a few milliseconds of a VM-dominated pipeline and the two runs are
near-identical by construction.  Also asserts the cache actually engaged
(passwd's 20 phase×attack queries hit 17 distinct keys, so the second
run must be answered entirely from cache).

Then gates the symmetry + partial-order reduction: every passwd and
thttpd (repeat 2) phase×attack query is searched with reduction off and
on, and the gate fails if any verdict or witness-existence differs, if
any exhaustive reduced search saw more states than its raw twin, or if
the thttpd batch — the search-dominated workload — did not see strictly
fewer states in aggregate.

Finally prints a per-entry delta table against the committed
``BENCH_rosa.json`` baseline (current vs recorded wall-clock).  Ratios
are informational — the baseline may come from another machine — but a
baseline entry that is missing entirely means the snapshot is stale and
fails the check with a clear message and a nonzero exit.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import PrivAnalyzer  # noqa: E402
from repro.programs import spec_by_name  # noqa: E402
from repro.rosa.query import Verdict, check  # noqa: E402

from perf_snapshot import BUDGET, phase_queries  # noqa: E402

REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rosa.json")
#: Allowed warm/cold ratio: >1.0 absorbs scheduler noise on a pipeline
#: whose cacheable stage is only a few percent of wall-clock.
TOLERANCE = float(os.environ.get("PERF_CHECK_TOLERANCE", "1.15"))


def best_run(analyzer_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        analyzer = analyzer_factory()
        start = time.perf_counter()
        analyzer.analyze(spec_by_name("passwd"))
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cold = best_run(PrivAnalyzer)

    shared = PrivAnalyzer()
    shared.analyze(spec_by_name("passwd"))  # prime the cache
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        shared.analyze(spec_by_name("passwd"))
        warm = min(warm, time.perf_counter() - start)

    stats = shared.engine.cache_stats()
    ratio = warm / cold
    print(
        f"perf-check: cold {cold * 1000:.1f} ms, warm {warm * 1000:.1f} ms "
        f"(ratio {ratio:.2f}, tolerance {TOLERANCE}), "
        f"cache hit rate {stats['hit_rate']:.2f}"
    )
    if stats["hits"] == 0:
        print("perf-check FAILED: the query cache never hit", file=sys.stderr)
        return 1
    if ratio > TOLERANCE:
        print(
            f"perf-check FAILED: cached run {ratio:.2f}x slower than uncached",
            file=sys.stderr,
        )
        return 1
    if check_reduction() != 0:
        return 1
    if baseline_deltas(
        {"passwd_pipeline_cold": cold, "passwd_pipeline_warm": warm}
    ) != 0:
        return 1
    print("perf-check ok")
    return 0


def baseline_deltas(
    measured: Dict[str, float], baseline_path: str = BASELINE_PATH
) -> int:
    """Current-vs-committed-baseline wall-clock, one table row per entry.

    The ratio column is informational (the committed snapshot may come
    from different hardware); what gates is *presence*: a measured entry
    with no baseline in ``BENCH_rosa.json`` means the snapshot is stale.
    """
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        print(
            f"perf-check FAILED: no baseline snapshot at "
            f"{os.path.abspath(baseline_path)} — run `make bench-json` and "
            f"commit BENCH_rosa.json",
            file=sys.stderr,
        )
        return 1
    except ValueError as error:
        print(
            f"perf-check FAILED: unreadable baseline "
            f"{os.path.abspath(baseline_path)}: {error}",
            file=sys.stderr,
        )
        return 1
    entries = snapshot.get("entries", {})
    sha = str(snapshot.get("meta", {}).get("git_sha", "?"))
    print(f"perf-check: deltas vs committed BENCH_rosa.json (commit {sha[:12]})")
    header = f"  {'entry':<26} {'baseline ms':>12} {'current ms':>12} {'ratio':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    missing = []
    for name in sorted(measured):
        entry = entries.get(name)
        if not isinstance(entry, dict) or "wall_seconds" not in entry:
            missing.append(name)
            continue
        base = float(entry["wall_seconds"])
        current = measured[name]
        ratio = current / base if base else float("inf")
        print(
            f"  {name:<26} {base * 1000:>12.1f} {current * 1000:>12.1f} "
            f"{ratio:>7.2f}x"
        )
    if missing:
        plural = "y" if len(missing) == 1 else "ies"
        print(
            f"perf-check FAILED: baseline entr{plural} missing from "
            f"BENCH_rosa.json: {', '.join(missing)} — regenerate the snapshot "
            f"with `make bench-json`",
            file=sys.stderr,
        )
        return 1
    return 0


def check_reduction() -> int:
    """Reduced and raw searches must agree; reduction must not cost states."""
    failures = 0
    for program, repeat, require_strict in (("passwd", 1, False), ("thttpd", 2, True)):
        raw_states = reduced_states = 0
        for query, _spec in phase_queries(program, repeat=repeat):
            raw = check(query, BUDGET, reduction=False)
            reduced = check(query, BUDGET, reduction=True)
            if raw.verdict is not reduced.verdict:
                print(
                    f"perf-check FAILED: {query.name} verdict flips under "
                    f"reduction ({raw.verdict.value} -> {reduced.verdict.value})",
                    file=sys.stderr,
                )
                failures += 1
            elif bool(raw.witness) != bool(reduced.witness):
                print(
                    f"perf-check FAILED: {query.name} witness existence differs "
                    "under reduction",
                    file=sys.stderr,
                )
                failures += 1
            # Exhaustive searches explore their whole (reduced) space, so
            # the quotient can never be larger; found-verdict searches stop
            # early and are excluded from the inequality.
            if raw.verdict is Verdict.INVULNERABLE:
                raw_states += raw.states_seen
                reduced_states += reduced.states_seen
                if reduced.states_seen > raw.states_seen:
                    print(
                        f"perf-check FAILED: {query.name} reduced search saw "
                        f"{reduced.states_seen} states vs {raw.states_seen} raw",
                        file=sys.stderr,
                    )
                    failures += 1
        marker = "<" if reduced_states < raw_states else "="
        print(
            f"perf-check: {program} (repeat {repeat}) reduction "
            f"{reduced_states} {marker} {raw_states} states (exhaustive queries)"
        )
        if require_strict and reduced_states >= raw_states:
            print(
                f"perf-check FAILED: {program} reduced search must explore "
                f"strictly fewer states ({reduced_states} vs {raw_states})",
                file=sys.stderr,
            )
            failures += 1
    return failures


if __name__ == "__main__":
    sys.exit(main())
