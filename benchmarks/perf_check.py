"""``make perf-check``: the query cache must never cost wall-clock,
and state-space reduction must never cost states or flip a verdict.

Runs the full passwd pipeline with a cold engine and then with a warm
one (same analyzer, cache primed by the first run) and asserts the warm
run is not slower — within a noise tolerance, since passwd's ROSA stage
is a few milliseconds of a VM-dominated pipeline and the two runs are
near-identical by construction.  Also asserts the cache actually engaged
(passwd's 20 phase×attack queries hit 17 distinct keys, so the second
run must be answered entirely from cache).

Then gates the symmetry + partial-order reduction: every passwd and
thttpd (repeat 2) phase×attack query is searched with reduction off and
on, and the gate fails if any verdict or witness-existence differs, if
any exhaustive reduced search saw more states than its raw twin, or if
the thttpd batch — the search-dominated workload — did not see strictly
fewer states in aggregate.

Reduction must also pay for itself in *wall-clock*, not just states
(:func:`check_reduction_wallclock`): the thttpd (repeat 2) reduced
engine batch must beat the live unindexed/unreduced baseline, and the
passwd reduced engine batch — whose searches are tiny enough that the
engine skips reduction (see ``REDUCTION_MIN_SPACE``) — must cost no
more than the unreduced batch plus noise.  And the compiled VM core
must keep earning its keep (:func:`check_vm_core`): the cold passwd
pipeline on the stock interpreter must be at least
``PERF_CHECK_COMPILED_MIN`` times faster than the same pipeline forced
onto the per-instruction dispatch loop, measured back-to-back on this
host.

Two fleet-serving gates follow.  :func:`check_engine_tax` holds the
engine's fixed per-query overhead on cold tiny batches: the passwd
batch through a cold engine (reduction off, so only key derivation,
cache bookkeeping and scheduling differ) must cost at most
``PERF_CHECK_ENGINE_TAX`` (1.5x) of the live unindexed baseline plus a
small absolute noise floor.  :func:`check_store_second_client` proves
fleet-wide compute-once end to end: after a first client publishes
into a shared verdict store, a *second* client (fresh analyzer, empty
in-memory LRU, new store handle — the ``privanalyzer serve`` scenario)
must be at least 90% store-served with zero attestation rejections,
and its verdict grid and exposure table must be bit-identical to a
live analyzer computing everything from scratch.

Finally prints a per-entry delta table against the committed
``BENCH_rosa.json`` baseline (current vs recorded wall-clock).  Ratios
are informational — the baseline may come from another machine — but a
baseline entry that is missing entirely means the snapshot is stale and
fails the check with a clear message and a nonzero exit.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import PrivAnalyzer  # noqa: E402
from repro.programs import spec_by_name  # noqa: E402
from repro.rosa.query import Verdict, check  # noqa: E402

from perf_snapshot import BUDGET, phase_queries, rosa_baseline, rosa_engine  # noqa: E402

REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rosa.json")
#: Allowed warm/cold ratio: >1.0 absorbs scheduler noise on a pipeline
#: whose cacheable stage is only a few percent of wall-clock.
TOLERANCE = float(os.environ.get("PERF_CHECK_TOLERANCE", "1.15"))
#: Minimum cold-pipeline speedup of the compiled VM core over the
#: dispatch loop.  Measured ~2x on the reference host; 1.6 leaves head-
#: room for slower allocators and noisy CI boxes without letting the
#: compiled core silently regress to parity.
COMPILED_MIN_SPEEDUP = float(os.environ.get("PERF_CHECK_COMPILED_MIN", "1.6"))
#: Allowed cold-engine/baseline ratio for the tiny passwd batch.  The
#: engine adds key derivation, cache bookkeeping and batch scheduling
#: per query; before the memoized digests it sat at ~1.9x.
ENGINE_TAX_MAX = float(os.environ.get("PERF_CHECK_ENGINE_TAX", "1.5"))
#: Minimum fraction of a second client's store lookups that must hit.
STORE_SERVED_MIN = float(os.environ.get("PERF_CHECK_STORE_SERVED_MIN", "0.9"))


def best_run(analyzer_factory) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        analyzer = analyzer_factory()
        start = time.perf_counter()
        analyzer.analyze(spec_by_name("passwd"))
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cold = best_run(PrivAnalyzer)

    shared = PrivAnalyzer()
    shared.analyze(spec_by_name("passwd"))  # prime the cache
    warm = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        shared.analyze(spec_by_name("passwd"))
        warm = min(warm, time.perf_counter() - start)

    stats = shared.engine.cache_stats()
    ratio = warm / cold
    print(
        f"perf-check: cold {cold * 1000:.1f} ms, warm {warm * 1000:.1f} ms "
        f"(ratio {ratio:.2f}, tolerance {TOLERANCE}), "
        f"cache hit rate {stats['hit_rate']:.2f}"
    )
    if stats["hits"] == 0:
        print("perf-check FAILED: the query cache never hit", file=sys.stderr)
        return 1
    if ratio > TOLERANCE:
        print(
            f"perf-check FAILED: cached run {ratio:.2f}x slower than uncached",
            file=sys.stderr,
        )
        return 1
    if check_reduction() != 0:
        return 1
    if check_reduction_wallclock() != 0:
        return 1
    if check_vm_core(cold) != 0:
        return 1
    if check_engine_tax() != 0:
        return 1
    if check_store_second_client() != 0:
        return 1
    if baseline_deltas(
        {"passwd_pipeline_cold": cold, "passwd_pipeline_warm": warm}
    ) != 0:
        return 1
    print("perf-check ok")
    return 0


def baseline_deltas(
    measured: Dict[str, float], baseline_path: str = BASELINE_PATH
) -> int:
    """Current-vs-committed-baseline wall-clock, one table row per entry.

    The ratio column is informational (the committed snapshot may come
    from different hardware); what gates is *presence*: a measured entry
    with no baseline in ``BENCH_rosa.json`` means the snapshot is stale.
    """
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        print(
            f"perf-check FAILED: no baseline snapshot at "
            f"{os.path.abspath(baseline_path)} — run `make bench-json` and "
            f"commit BENCH_rosa.json",
            file=sys.stderr,
        )
        return 1
    except ValueError as error:
        print(
            f"perf-check FAILED: unreadable baseline "
            f"{os.path.abspath(baseline_path)}: {error}",
            file=sys.stderr,
        )
        return 1
    entries = snapshot.get("entries", {})
    sha = str(snapshot.get("meta", {}).get("git_sha", "?"))
    print(f"perf-check: deltas vs committed BENCH_rosa.json (commit {sha[:12]})")
    header = f"  {'entry':<26} {'baseline ms':>12} {'current ms':>12} {'ratio':>8}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    missing = []
    for name in sorted(measured):
        entry = entries.get(name)
        if not isinstance(entry, dict) or "wall_seconds" not in entry:
            missing.append(name)
            continue
        base = float(entry["wall_seconds"])
        current = measured[name]
        ratio = current / base if base else float("inf")
        print(
            f"  {name:<26} {base * 1000:>12.1f} {current * 1000:>12.1f} "
            f"{ratio:>7.2f}x"
        )
    if missing:
        plural = "y" if len(missing) == 1 else "ies"
        print(
            f"perf-check FAILED: baseline entr{plural} missing from "
            f"BENCH_rosa.json: {', '.join(missing)} — regenerate the snapshot "
            f"with `make bench-json`",
            file=sys.stderr,
        )
        return 1
    return 0


def check_reduction() -> int:
    """Reduced and raw searches must agree; reduction must not cost states."""
    failures = 0
    for program, repeat, require_strict in (("passwd", 1, False), ("thttpd", 2, True)):
        raw_states = reduced_states = 0
        for query, _spec in phase_queries(program, repeat=repeat):
            raw = check(query, BUDGET, reduction=False)
            reduced = check(query, BUDGET, reduction=True)
            if raw.verdict is not reduced.verdict:
                print(
                    f"perf-check FAILED: {query.name} verdict flips under "
                    f"reduction ({raw.verdict.value} -> {reduced.verdict.value})",
                    file=sys.stderr,
                )
                failures += 1
            elif bool(raw.witness) != bool(reduced.witness):
                print(
                    f"perf-check FAILED: {query.name} witness existence differs "
                    "under reduction",
                    file=sys.stderr,
                )
                failures += 1
            # Exhaustive searches explore their whole (reduced) space, so
            # the quotient can never be larger; found-verdict searches stop
            # early and are excluded from the inequality.
            if raw.verdict is Verdict.INVULNERABLE:
                raw_states += raw.states_seen
                reduced_states += reduced.states_seen
                if reduced.states_seen > raw.states_seen:
                    print(
                        f"perf-check FAILED: {query.name} reduced search saw "
                        f"{reduced.states_seen} states vs {raw.states_seen} raw",
                        file=sys.stderr,
                    )
                    failures += 1
        marker = "<" if reduced_states < raw_states else "="
        print(
            f"perf-check: {program} (repeat {repeat}) reduction "
            f"{reduced_states} {marker} {raw_states} states (exhaustive queries)"
        )
        if require_strict and reduced_states >= raw_states:
            print(
                f"perf-check FAILED: {program} reduced search must explore "
                f"strictly fewer states ({reduced_states} vs {raw_states})",
                file=sys.stderr,
            )
            failures += 1
    return failures


def _best_wall(fn) -> float:
    """Best-of-``REPEATS`` wall-clock for a zero-argument callable."""
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def check_reduction_wallclock() -> int:
    """Reduction must pay (or cost nothing) in wall-clock, live.

    Two gates, both measured back-to-back on this host so committed
    numbers from other machines never enter the comparison:

    * thttpd (repeat 2) — the search-dominated batch where reduction is
      active: the reduced engine must beat the unindexed/unreduced
      baseline outright (this was 0.35x before lazy canonicalization
      and the working ample-set POR);
    * passwd — every search is tiny, so the engine downgrades to raw
      search (``REDUCTION_MIN_SPACE``): the reduction-default engine
      must cost no more than the reduction-off engine plus noise (a
      fixed few-millisecond floor, since both batches run ~2 ms).
    """
    from repro.rosa import QueryCache, QueryEngine

    failures = 0

    thttpd_pairs = phase_queries("thttpd", repeat=2)
    baseline = _best_wall(lambda: rosa_baseline(thttpd_pairs))
    reduced = _best_wall(
        lambda: rosa_engine(
            thttpd_pairs, QueryEngine(budget=BUDGET, cache=QueryCache())
        )
    )
    ratio = baseline / reduced
    print(
        f"perf-check: thttpd r2 reduced engine {reduced * 1000:.1f} ms vs "
        f"baseline {baseline * 1000:.1f} ms ({ratio:.2f}x, floor 1.0)"
    )
    if ratio < 1.0:
        print(
            f"perf-check FAILED: thttpd reduced search is {1 / ratio:.2f}x "
            "slower than the unreduced baseline — reduction no longer pays",
            file=sys.stderr,
        )
        failures += 1

    passwd_pairs = phase_queries("passwd")
    unreduced = _best_wall(
        lambda: rosa_engine(
            passwd_pairs,
            QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False),
        )
    )
    tiny = _best_wall(
        lambda: rosa_engine(
            passwd_pairs, QueryEngine(budget=BUDGET, cache=QueryCache())
        )
    )
    allowed = unreduced * 1.5 + 0.005
    print(
        f"perf-check: passwd tiny-search batch {tiny * 1000:.1f} ms reduced "
        f"vs {unreduced * 1000:.1f} ms raw (allowed {allowed * 1000:.1f} ms)"
    )
    if tiny > allowed:
        print(
            "perf-check FAILED: passwd reduced batch exceeds the raw batch "
            f"({tiny * 1000:.1f} ms > {allowed * 1000:.1f} ms) — the "
            "tiny-search downgrade regressed",
            file=sys.stderr,
        )
        failures += 1
    return failures


def check_engine_tax() -> int:
    """The engine's fixed per-query tax on a cold tiny batch is bounded.

    passwd's 20 queries finish in ~2 ms total, so everything the engine
    adds around the searches — canonical key derivation, cache misses,
    batch dedup and scheduling — is a visible fraction of wall-clock.
    Both sides run back-to-back on this host with reduction off, so the
    ratio isolates exactly that overhead; a small absolute floor keeps
    the gate meaningful when both batches run in a millisecond.
    """
    from repro.rosa import QueryCache, QueryEngine

    pairs = phase_queries("passwd")
    baseline = _best_wall(lambda: rosa_baseline(pairs))
    engine_cold = _best_wall(
        lambda: rosa_engine(
            pairs, QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False)
        )
    )
    allowed = baseline * ENGINE_TAX_MAX + 0.003
    ratio = engine_cold / baseline if baseline else float("inf")
    print(
        f"perf-check: passwd engine-cold {engine_cold * 1000:.1f} ms vs "
        f"baseline {baseline * 1000:.1f} ms ({ratio:.2f}x, "
        f"allowed {allowed * 1000:.1f} ms at {ENGINE_TAX_MAX}x)"
    )
    if engine_cold > allowed:
        print(
            f"perf-check FAILED: cold engine batch {engine_cold * 1000:.1f} ms "
            f"exceeds {allowed * 1000:.1f} ms — the per-query fixed tax "
            "regressed",
            file=sys.stderr,
        )
        return 1
    return 0


def check_store_second_client() -> int:
    """A second client over a warm shared store serves, and serves right.

    Client one publishes the passwd pipeline's verdicts into a fresh
    :class:`SharedVerdictStore`; client two is a brand-new analyzer with
    an empty in-memory LRU whose only head start is that store on disk.
    Gates: at least ``STORE_SERVED_MIN`` of client two's store lookups
    hit, nothing is rejected, and its verdict grid and exposure table
    are bit-identical to a third analyzer computing live with no store
    at all — compute-once must never mean compute-differently.
    """
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory(prefix="perf-check-store-") as root:
        spec = spec_by_name("passwd")
        PrivAnalyzer(verdict_store=root).analyze(spec)  # client one

        second = PrivAnalyzer(verdict_store=root)
        served = second.analyze(spec)  # client two: warm store, cold L1
        store = second.engine.store
        lookups = store.hits + store.misses
        fraction = store.hits / lookups if lookups else 0.0
        print(
            f"perf-check: second client store-served {store.hits}/{lookups} "
            f"({fraction:.2f}, floor {STORE_SERVED_MIN}), "
            f"rejected {store.rejected}"
        )
        if fraction < STORE_SERVED_MIN:
            print(
                f"perf-check FAILED: second client only {fraction:.2f} "
                f"store-served (floor {STORE_SERVED_MIN})",
                file=sys.stderr,
            )
            failures += 1
        if store.rejected:
            print(
                f"perf-check FAILED: second client rejected {store.rejected} "
                "store entries — attestation or schema drift",
                file=sys.stderr,
            )
            failures += 1

        from repro.core.report import analysis_to_dict

        live = PrivAnalyzer().analyze(spec)  # no cache head start at all
        if analysis_to_dict(served) != analysis_to_dict(live):
            print(
                "perf-check FAILED: store-served analysis (verdict grid, "
                "windows, exposure) differs from live computation",
                file=sys.stderr,
            )
            failures += 1
        for served_phase, live_phase in zip(served.phases, live.phases):
            for attack_id, live_report in live_phase.verdicts.items():
                served_report = served_phase.verdicts[attack_id]
                if (
                    served_report.verdict is not live_report.verdict
                    or served_report.witness != live_report.witness
                ):
                    print(
                        f"perf-check FAILED: {served_phase.name}/attack"
                        f"{attack_id} served verdict differs from live",
                        file=sys.stderr,
                    )
                    failures += 1
    if not failures:
        print("perf-check: store second-client serving verdict-identical")
    return failures


def check_vm_core(cold: float) -> int:
    """The compiled VM core must stay well ahead of the dispatch loop.

    ``cold`` is the stock (compiled) cold-pipeline wall-clock already
    measured by :func:`main`; the dispatch run happens right after it on
    the same host, so the ratio is a genuine like-for-like speedup.
    """
    from repro.vm import set_interpreter_class
    from repro.vm.interpreter import DispatchInterpreter

    previous = set_interpreter_class(DispatchInterpreter)
    try:
        dispatch = best_run(PrivAnalyzer)
    finally:
        set_interpreter_class(previous)
    ratio = dispatch / cold
    print(
        f"perf-check: compiled pipeline {cold * 1000:.1f} ms vs dispatch "
        f"{dispatch * 1000:.1f} ms ({ratio:.2f}x, floor {COMPILED_MIN_SPEEDUP})"
    )
    if ratio < COMPILED_MIN_SPEEDUP:
        print(
            f"perf-check FAILED: compiled VM core only {ratio:.2f}x faster "
            f"than the dispatch loop (floor {COMPILED_MIN_SPEEDUP})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
