"""``make perf-history``: the benchmark trajectory across commits.

``BENCH_rosa.json`` is one snapshot — the *latest* numbers.  This tool
keeps the whole trajectory: ``append`` folds the current snapshot into
``BENCH_history.jsonl`` (one JSON record per line, stamped with the git
SHA and a timestamp), and ``show`` renders a per-entry table of
wall-clock across the recorded history, flagging entries whose latest
run regressed against the previous record.

Usage::

    python benchmarks/perf_history.py append      # after `make bench-json`
    python benchmarks/perf_history.py show
    python benchmarks/perf_history.py show --last 5

Stdlib only.  Timestamps are injected at the entry point (tests pass
constants), matching the run-ledger convention.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

sys.path.insert(0, os.path.dirname(__file__))

from perf_snapshot import git_sha  # noqa: E402

HISTORY_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_history.jsonl")
SNAPSHOT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rosa.json")

#: Latest-vs-previous slow-down ratio beyond which ``show`` flags a row.
REGRESSION_RATIO = 1.5
#: Deltas under this many seconds are never flagged — sub-floor noise.
REGRESSION_FLOOR = 0.05


def load_history(path: str = HISTORY_PATH) -> List[Dict]:
    """Every record in the history file, oldest first (missing file → [])."""
    if not os.path.exists(path):
        return []
    records = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except ValueError as error:
                raise ValueError(
                    f"{path}:{line_number}: corrupt history record: {error}"
                )
    return records


def record_from_snapshot(snapshot: Dict, timestamp: float) -> Dict:
    """One history line: provenance plus per-entry wall-clock and speedups.

    Prefers the snapshot's own ``meta`` provenance (written by
    ``make bench-json``); ``timestamp`` and a fresh ``git rev-parse``
    fill in for pre-meta snapshots.
    """
    meta = snapshot.get("meta", {})
    return {
        "schema": 1,
        "git_sha": meta.get("git_sha") or git_sha(),
        "timestamp_unix": meta.get("timestamp_unix", timestamp),
        "repeats": snapshot.get("repeats"),
        "entries": {
            name: entry.get("wall_seconds")
            for name, entry in sorted(snapshot.get("entries", {}).items())
            if isinstance(entry, dict)
        },
        "speedups": snapshot.get("speedups", {}),
    }


def append_snapshot(
    snapshot_path: str = SNAPSHOT_PATH,
    history_path: str = HISTORY_PATH,
    timestamp: Optional[float] = None,
) -> Dict:
    """Append the current snapshot to the history; returns the record."""
    try:
        with open(snapshot_path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except FileNotFoundError:
        raise SystemExit(
            f"perf-history: no snapshot at {os.path.abspath(snapshot_path)} — "
            f"run `make bench-json` first"
        )
    except ValueError as error:
        raise SystemExit(
            f"perf-history: unreadable snapshot "
            f"{os.path.abspath(snapshot_path)}: {error}"
        )
    record = record_from_snapshot(
        snapshot, time.time() if timestamp is None else timestamp
    )
    with open(history_path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return record


def render_trajectory(
    records: List[Dict],
    last: Optional[int] = None,
    regression_ratio: float = REGRESSION_RATIO,
) -> str:
    """A per-entry wall-clock table across history records, newest last.

    The final column flags entries whose latest run is more than
    ``regression_ratio`` times the previous record (and at least
    :data:`REGRESSION_FLOOR` seconds slower).
    """
    if not records:
        return "(no history — run `make bench-json` then perf-history append)"
    if last is not None and last > 0:
        records = records[-last:]
    names = sorted({name for record in records for name in record.get("entries", {})})
    shas = [str(record.get("git_sha", "?"))[:10] for record in records]
    header = f"{'entry':<34}" + "".join(f" {sha:>11}" for sha in shas) + "  trend"
    lines = [header, "-" * len(header)]
    for name in names:
        walls = [record.get("entries", {}).get(name) for record in records]
        cells = "".join(
            f" {wall * 1000:>9.1f}ms" if wall is not None else f" {'—':>11}"
            for wall in walls
        )
        trend = ""
        known = [wall for wall in walls if wall is not None]
        if len(known) >= 2:
            previous, latest = known[-2], known[-1]
            if (
                latest > previous * regression_ratio
                and latest - previous > REGRESSION_FLOOR
            ):
                trend = f"  REGRESSED {latest / previous:.1f}x"
            elif previous > 0 and latest < previous / regression_ratio:
                trend = f"  improved {previous / latest:.1f}x"
        lines.append(f"{name:<34}{cells}{trend}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="perf-history",
        description="Track BENCH_rosa.json snapshots across commits.",
    )
    parser.add_argument(
        "--history", default=HISTORY_PATH, metavar="PATH",
        help="history file (default BENCH_history.jsonl at the repo root)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    append = sub.add_parser(
        "append", help="fold the current BENCH_rosa.json into the history"
    )
    append.add_argument(
        "--snapshot", default=SNAPSHOT_PATH, metavar="PATH",
        help="snapshot to record (default BENCH_rosa.json)",
    )
    show = sub.add_parser("show", help="render the trajectory table")
    show.add_argument(
        "--last", type=int, default=None, metavar="N",
        help="only the newest N records (default: all)",
    )
    show.add_argument(
        "--regression-ratio", type=float, default=REGRESSION_RATIO, metavar="R",
        help=f"flag entries whose latest run is R× the previous "
        f"(default {REGRESSION_RATIO})",
    )
    args = parser.parse_args(argv)
    if args.command == "append":
        record = append_snapshot(
            snapshot_path=args.snapshot, history_path=args.history,
            timestamp=time.time(),
        )
        print(
            f"perf-history: recorded {len(record['entries'])} entries at "
            f"{record['git_sha'][:10]} -> {os.path.abspath(args.history)}"
        )
        print(render_trajectory(load_history(args.history)))
        return 0
    records = load_history(args.history)
    print(
        render_trajectory(
            records, last=args.last, regression_ratio=args.regression_ratio
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
