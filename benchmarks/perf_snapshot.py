"""Emit ``BENCH_rosa.json``: the query engine's performance trajectory.

Run as a script (``make bench-json``); stdlib only.  Every entry records
wall-clock seconds, the states explored by the searches involved, and
the cache hit rate, so future PRs have an apples-to-apples baseline:

* ``passwd_rosa_baseline`` — the passwd pipeline's 20 phase×attack
  searches, run one by one with rule indexing off and no cache: the
  pre-engine behaviour;
* ``passwd_rosa_engine_cold`` — the same queries through the engine with
  an empty cache: rule indexing plus batch dedup (17 distinct of 20);
* ``passwd_rosa_engine_warm`` — the same batch against the warm cache:
  the steady state for repeated table regenerations;
* ``passwd_pipeline_cold`` / ``passwd_pipeline_warm`` — the full
  pipeline (compile + VM + ROSA) with a fresh / shared engine;
* ``thttpd_rosa_repeat2`` — a search-dominated workload (message repeat
  2 grows the state space ~40×), engine versus baseline;
* ``thttpd_rosa_repeat3`` — the same stage at repeat 3 (the space grows
  another order of magnitude), where reduction's asymptotic win shows:
  baseline versus the reduced engine;
* ``passwd_pipeline_cold_dispatch`` — the cold pipeline forced onto the
  per-instruction dispatch loop, isolating the compiled VM core's
  contribution to end-to-end wall-clock;
* ``privsep_exposure_table`` — the multi-process study's exposure
  computation, whose phases heavily repeat credential tuples;
* ``served_warm`` — the passwd ROSA batch answered by a *fresh* engine
  (empty in-memory LRU) over a warm :class:`SharedVerdictStore`: the
  fleet-wide compute-once steady state, where "warm" survives process
  boundaries and restarts;
* ``store_cold_second_client`` — the full passwd pipeline as a second
  client: a fresh analyzer whose only head start is the shared store a
  first client published into (the ``make serve-smoke`` scenario).

Timing uses best-of-``REPEATS`` to damp scheduler noise; the speedup
figures in the JSON compare engine entries against their recorded
baseline entry, not against wall-clock from other machines.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import PrivAnalyzer  # noqa: E402
from repro.core.attacks import ALL_ATTACKS  # noqa: E402
from repro.core.extract import syscalls_used  # noqa: E402
from repro.core.multiprocess import analyze_multiprocess  # noqa: E402
from repro.programs import spec_by_name  # noqa: E402
from repro.rewriting import ObjectSystem, SearchBudget  # noqa: E402
from repro.rosa import QueryCache, QueryEngine, QueryRequest, check  # noqa: E402
from repro.rosa.query import unix_system  # noqa: E402
from repro.rosa.rules import unix_rules  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_rosa.json")
REPEATS = int(os.environ.get("BENCH_REPEATS", "3"))
BUDGET = SearchBudget(max_states=200_000, max_seconds=60.0)


def git_sha(repo_root: Optional[str] = None) -> str:
    """The checked-out commit, or ``"unknown"`` outside a git checkout."""
    root = repo_root or os.path.join(os.path.dirname(__file__), "..")
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def snapshot_meta(timestamp: float) -> Dict:
    """Provenance for one snapshot: commit, injected timestamp, host.

    ``timestamp`` is passed in by the caller (the ``__main__`` block
    stamps ``time.time()``; tests pass a constant) so the measurement
    code itself stays clock-free and replayable.
    """
    return {
        "git_sha": git_sha(),
        "timestamp_unix": timestamp,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
    }


def best_of(fn: Callable[[], Dict], repeats: int = REPEATS) -> Dict:
    """Run ``fn`` ``repeats`` times; keep the run with the least wall-clock."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        extra = fn() or {}
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best["wall_seconds"]:
            best = {"wall_seconds": elapsed, **extra}
    return best


def phase_queries(program: str, repeat: int = 1) -> List[Tuple]:
    """The (query, spec) pairs the pipeline would issue for ``program``."""
    analyzer = PrivAnalyzer(message_repeat=repeat)
    spec = spec_by_name(program)
    module, _, _ = analyzer.compile(spec)
    chrono, _, _ = analyzer.run_dynamic(spec, module)
    surface = syscalls_used(module)
    pairs = []
    for phase in chrono.phases:
        for attack in ALL_ATTACKS:
            args = (phase.privileges, phase.uids, phase.gids, surface)
            kwargs = {"repeat": repeat, "label": f"{phase.name}/attack{attack.attack_id}"}
            pairs.append(
                (attack.build_query(*args, **kwargs), attack.query_spec(*args, **kwargs))
            )
    return pairs


def rosa_baseline(pairs) -> Dict:
    """Pre-engine behaviour: serial checks, no cache, rule indexing off,
    no state-space reduction."""
    brute = ObjectSystem("UNIX", unix_rules(), indexed=False)
    states = 0
    for query, _ in pairs:
        report = check(dataclasses.replace(query, system=brute), BUDGET, reduction=False)
        states += report.states_explored
    return {"queries": len(pairs), "states_explored": states, "cache_hit_rate": 0.0}


def rosa_engine(pairs, engine: QueryEngine) -> Dict:
    reports = engine.run_queries(
        [QueryRequest(query, budget=BUDGET, spec=spec) for query, spec in pairs]
    )
    live = [r for r in reports if not r.from_cache]
    return {
        "queries": len(pairs),
        "states_explored": sum(r.states_explored for r in live),
        "states_seen": sum(r.states_seen for r in live),
        "symmetry_hits": sum(r.stats.symmetry_hits for r in live),
        "por_pruned": sum(r.stats.por_pruned for r in live),
        "cache_hit_rate": engine.cache.hit_rate if engine.cache else 0.0,
    }


def main(timestamp: Optional[float] = None) -> None:
    entries: Dict[str, Dict] = {}

    print("measuring passwd ROSA stage ...", file=sys.stderr)
    passwd_pairs = phase_queries("passwd")
    entries["passwd_rosa_baseline"] = best_of(lambda: rosa_baseline(passwd_pairs))
    entries["passwd_rosa_engine_cold"] = best_of(
        lambda: rosa_engine(
            passwd_pairs,
            QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False),
        )
    )
    # The same cold batch with symmetry + partial-order reduction on (the
    # engine default): states_seen must never exceed the unreduced entry.
    entries["passwd_rosa_engine_cold_reduced"] = best_of(
        lambda: rosa_engine(passwd_pairs, QueryEngine(budget=BUDGET, cache=QueryCache()))
    )
    warm_engine = QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False)
    rosa_engine(passwd_pairs, warm_engine)  # prime
    entries["passwd_rosa_engine_warm"] = best_of(
        lambda: rosa_engine(passwd_pairs, warm_engine)
    )

    print("measuring passwd full pipeline ...", file=sys.stderr)

    def pipeline_cold():
        analysis = PrivAnalyzer().analyze(spec_by_name("passwd"))
        return {
            "queries": sum(len(p.verdicts) for p in analysis.phases),
            "states_explored": sum(
                r.states_explored for p in analysis.phases for r in p.verdicts.values()
            ),
            "cache_hit_rate": 0.0,
        }

    entries["passwd_pipeline_cold"] = best_of(pipeline_cold)

    # The same cold pipeline on the dispatch loop: the compiled core's
    # end-to-end contribution is the ratio between these two entries,
    # measured on the same host in the same run (committed wall-clock
    # from other machines is not comparable).
    def pipeline_cold_dispatch():
        from repro.vm import set_interpreter_class
        from repro.vm.interpreter import DispatchInterpreter

        previous = set_interpreter_class(DispatchInterpreter)
        try:
            return pipeline_cold()
        finally:
            set_interpreter_class(previous)

    entries["passwd_pipeline_cold_dispatch"] = best_of(pipeline_cold_dispatch)

    shared = PrivAnalyzer()
    shared.analyze(spec_by_name("passwd"))  # prime the shared engine's cache

    def pipeline_warm():
        analysis = shared.analyze(spec_by_name("passwd"))
        return {
            "queries": sum(len(p.verdicts) for p in analysis.phases),
            "states_explored": sum(
                r.states_explored
                for p in analysis.phases
                for r in p.verdicts.values()
                if not r.from_cache
            ),
            "cache_hit_rate": shared.engine.cache.hit_rate,
        }

    entries["passwd_pipeline_warm"] = best_of(pipeline_warm)

    print("measuring thttpd ROSA stage (message repeat 2) ...", file=sys.stderr)
    thttpd_pairs = phase_queries("thttpd", repeat=2)
    entries["thttpd_rosa_repeat2_baseline"] = best_of(
        lambda: rosa_baseline(thttpd_pairs)
    )
    entries["thttpd_rosa_repeat2_engine"] = best_of(
        lambda: rosa_engine(
            thttpd_pairs,
            QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False),
        )
    )
    entries["thttpd_rosa_repeat2_engine_reduced"] = best_of(
        lambda: rosa_engine(thttpd_pairs, QueryEngine(budget=BUDGET, cache=QueryCache()))
    )
    thttpd_warm = QueryEngine(budget=BUDGET, cache=QueryCache(), reduction=False)
    rosa_engine(thttpd_pairs, thttpd_warm)  # prime
    entries["thttpd_rosa_repeat2_engine_warm"] = best_of(
        lambda: rosa_engine(thttpd_pairs, thttpd_warm)
    )

    print("measuring thttpd ROSA stage (message repeat 3) ...", file=sys.stderr)
    # Repeat 3 is where reduction pays asymptotically: the raw space is
    # another order of magnitude larger, and symmetry + POR prune a
    # super-linear fraction of it.
    thttpd3_pairs = phase_queries("thttpd", repeat=3)
    entries["thttpd_rosa_repeat3_baseline"] = best_of(
        lambda: rosa_baseline(thttpd3_pairs)
    )
    entries["thttpd_rosa_repeat3_engine_reduced"] = best_of(
        lambda: rosa_engine(thttpd3_pairs, QueryEngine(budget=BUDGET, cache=QueryCache()))
    )

    print("measuring thttpd full pipeline (message repeat 3) ...", file=sys.stderr)
    # A search-dominated full-pipeline benchmark: at message repeat 3 the
    # ROSA stage dwarfs compile + VM, so the engine's effect on end-to-end
    # wall-clock is visible (passwd's searches are tiny at any repeat —
    # its pipeline time is VM-dominated; see docs/PERFORMANCE.md).
    def thttpd_pipeline(analyzer):
        analysis = analyzer.analyze(spec_by_name("thttpd"))
        cache = analyzer.engine.cache
        return {
            "queries": sum(len(p.verdicts) for p in analysis.phases),
            "states_explored": sum(
                r.states_explored
                for p in analysis.phases
                for r in p.verdicts.values()
                if not r.from_cache
            ),
            "cache_hit_rate": cache.hit_rate if cache else 0.0,
        }

    entries["thttpd_pipeline_repeat3_cold"] = best_of(
        lambda: thttpd_pipeline(PrivAnalyzer(message_repeat=3))
    )
    shared_thttpd = PrivAnalyzer(message_repeat=3)
    shared_thttpd.analyze(spec_by_name("thttpd"))  # prime
    entries["thttpd_pipeline_repeat3_warm"] = best_of(
        lambda: thttpd_pipeline(shared_thttpd)
    )

    print("measuring shared verdict store serving ...", file=sys.stderr)
    from repro.rosa.store import SharedVerdictStore

    with tempfile.TemporaryDirectory(prefix="bench-store-") as store_root:
        # One cold engine publishes the whole passwd batch; every later
        # engine is a fresh process-equivalent (empty L1, new handle).
        rosa_engine(
            passwd_pairs,
            QueryEngine(
                budget=BUDGET,
                cache=QueryCache(),
                store=SharedVerdictStore(store_root),
            ),
        )

        def served_warm():
            store = SharedVerdictStore(store_root)
            result = rosa_engine(
                passwd_pairs,
                QueryEngine(budget=BUDGET, cache=QueryCache(), store=store),
            )
            lookups = store.hits + store.misses
            result["store_hit_rate"] = (
                store.hits / lookups if lookups else 0.0
            )
            return result

        entries["served_warm"] = best_of(served_warm)

    with tempfile.TemporaryDirectory(prefix="bench-store-") as store_root:
        PrivAnalyzer(verdict_store=store_root).analyze(spec_by_name("passwd"))

        def second_client():
            analyzer = PrivAnalyzer(verdict_store=store_root)
            analysis = analyzer.analyze(spec_by_name("passwd"))
            store = analyzer.engine.store
            lookups = store.hits + store.misses
            return {
                "queries": sum(len(p.verdicts) for p in analysis.phases),
                "states_explored": sum(
                    r.states_explored
                    for p in analysis.phases
                    for r in p.verdicts.values()
                    if not r.from_cache
                ),
                "cache_hit_rate": analyzer.engine.cache.hit_rate,
                "store_hit_rate": store.hits / lookups if lookups else 0.0,
            }

        entries["store_cold_second_client"] = best_of(second_client)

    print("measuring privsep exposure table ...", file=sys.stderr)

    def privsep():
        analysis = analyze_multiprocess(spec_by_name("sshdPrivsep"))
        table = analysis.exposure_table()
        return {
            "queries": analysis.engine.cache.hits + analysis.engine.cache.misses,
            "states_explored": 0,
            "cache_hit_rate": analysis.engine.cache.hit_rate,
            "exposure": table,
        }

    entries["privsep_exposure_table"] = best_of(privsep, repeats=1)

    speedups = {
        "passwd_rosa_cold_vs_baseline": entries["passwd_rosa_baseline"]["wall_seconds"]
        / entries["passwd_rosa_engine_cold"]["wall_seconds"],
        "passwd_rosa_warm_vs_baseline": entries["passwd_rosa_baseline"]["wall_seconds"]
        / entries["passwd_rosa_engine_warm"]["wall_seconds"],
        "passwd_pipeline_warm_vs_cold": entries["passwd_pipeline_cold"]["wall_seconds"]
        / entries["passwd_pipeline_warm"]["wall_seconds"],
        "thttpd_rosa_engine_vs_baseline": entries["thttpd_rosa_repeat2_baseline"][
            "wall_seconds"
        ]
        / entries["thttpd_rosa_repeat2_engine"]["wall_seconds"],
        "thttpd_rosa_warm_vs_baseline": entries["thttpd_rosa_repeat2_baseline"][
            "wall_seconds"
        ]
        / entries["thttpd_rosa_repeat2_engine_warm"]["wall_seconds"],
        "thttpd_pipeline_warm_vs_cold": entries["thttpd_pipeline_repeat3_cold"][
            "wall_seconds"
        ]
        / entries["thttpd_pipeline_repeat3_warm"]["wall_seconds"],
        "thttpd_rosa_reduced_vs_baseline": entries["thttpd_rosa_repeat2_baseline"][
            "wall_seconds"
        ]
        / entries["thttpd_rosa_repeat2_engine_reduced"]["wall_seconds"],
        "thttpd_rosa_repeat3_reduced_vs_baseline": entries[
            "thttpd_rosa_repeat3_baseline"
        ]["wall_seconds"]
        / entries["thttpd_rosa_repeat3_engine_reduced"]["wall_seconds"],
        "passwd_pipeline_compiled_vs_dispatch": entries[
            "passwd_pipeline_cold_dispatch"
        ]["wall_seconds"]
        / entries["passwd_pipeline_cold"]["wall_seconds"],
        "store_served_warm_vs_cold": entries["passwd_rosa_engine_cold_reduced"][
            "wall_seconds"
        ]
        / entries["served_warm"]["wall_seconds"],
        "store_second_client_vs_pipeline_cold": entries["passwd_pipeline_cold"][
            "wall_seconds"
        ]
        / entries["store_cold_second_client"]["wall_seconds"],
    }
    snapshot = {
        "schema": 1,
        "budget": {"max_states": BUDGET.max_states, "max_seconds": BUDGET.max_seconds},
        "repeats": REPEATS,
        "meta": snapshot_meta(time.time() if timestamp is None else timestamp),
        "entries": entries,
        "speedups": speedups,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(OUT_PATH)}", file=sys.stderr)
    for name, ratio in speedups.items():
        print(f"  {name}: {ratio:.2f}x", file=sys.stderr)


if __name__ == "__main__":
    main()
