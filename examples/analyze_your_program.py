"""Analyze your own program: write PrivC, get a privilege-risk report.

Demonstrates the full toolchain on a new program (a small "backup agent"
that reads the shadow database and writes an archive), including what the
AutoPriv transform inserted and what ChronoPriv observed — the workflow a
developer would use on their own code.

    python examples/analyze_your_program.py
"""

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.ir import print_function
from repro.programs.common import ProgramSpec

BACKUP_AGENT = """
// backup-agent: archive the shadow database to the user's home.

str read_database() {
    priv_raise(CAP_DAC_READ_SEARCH);
    int fd = open("/etc/shadow", "r");
    str content = "";
    if (fd >= 0) {
        content = read(fd);
        close(fd);
    }
    priv_lower(CAP_DAC_READ_SEARCH);
    return content;
}

int write_archive(str content) {
    int fd = open("/home/user/shadow.bak", "wc", 0o600);
    if (fd < 0) { return -1; }
    // "compress": checksum each entry while writing.
    int line = 0;
    while (line < 8) {
        str entry = str_field(content, line, "\\n");
        if (strlen(entry) > 0) {
            int sum = 0;
            int c = 0;
            while (c < strlen(entry)) {
                sum = (sum * 31 + c) % 65521;
                c = c + 1;
            }
            write(fd, strcat(entry, "\\n"));
        }
        line = line + 1;
    }
    close(fd);
    return 0;
}

void main() {
    str content = read_database();
    if (strlen(content) == 0) {
        print_str("backup: cannot read database");
        exit(1);
    }
    if (write_archive(content) < 0) {
        print_str("backup: cannot write archive");
        exit(1);
    }
    print_str("backup: done");
    exit(0);
}
"""


def main() -> None:
    spec = ProgramSpec(
        name="backup-agent",
        description="archives /etc/shadow into the invoking user's home",
        source=BACKUP_AGENT,
        permitted=CapabilitySet.of("CapDacReadSearch"),
    )
    analyzer = PrivAnalyzer()
    analysis = analyzer.analyze(spec)

    print("=== What AutoPriv did ===")
    print(f"removed at entry: {analysis.transform.entry_removed.describe()}")
    for function, block, index, caps in analysis.transform.insertions:
        print(f"  inserted priv_remove({caps.describe()}) at @{function}:%{block}:{index}")
    print()
    print("=== Transformed + instrumented IR of read_database ===")
    print(print_function(analysis.module.get_function("read_database")))
    print()
    print("=== What ChronoPriv observed ===")
    print(analysis.chrono.render())
    print()
    print("=== Risk assessment ===")
    print(analysis.render_table())
    print()
    window = analysis.vulnerability_window(1)
    print(f"Window for /dev/mem reads: {window:.1%} of execution —")
    print("CAP_DAC_READ_SEARCH reads *any* file while permitted, so keep")
    print("its live range as short as this program does.")


if __name__ == "__main__":
    main()
