"""Before/after audit: does a refactoring actually shrink the attack window?

This is the paper's §VII-D workflow: run PrivAnalyzer on a program and on
its refactored variant, and compare the vulnerability windows.  The two
refactoring lessons (§VII-E) are visible directly in the output:

1. *Change credentials early* — the refactored programs burn their
   CAP_SETUID/CAP_SETGID in the first ~1 % of execution to plant a second
   identity in the saved ids, then switch identities without privilege.
2. *Create special users for special files* — the refactored machine
   image gives /etc/shadow to the dedicated `etc` user, so no DAC-bypass
   capability is ever needed.

    python examples/audit_refactoring.py
"""

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name

ATTACK_LABELS = {
    1: "read /dev/mem",
    2: "write /dev/mem",
    3: "bind privileged port",
    4: "kill sshd",
}


def audit(pair):
    original_name, refactored_name = pair
    analyzer = PrivAnalyzer()
    original = analyzer.analyze(spec_by_name(original_name))
    refactored = analyzer.analyze(spec_by_name(refactored_name))

    print(f"=== {original_name} -> {refactored_name} ===")
    print()
    print("original:")
    print(original.render_table())
    print()
    print("refactored:")
    print(refactored.render_table())
    print()
    print(f"{'attack':<24} {'original':>10} {'refactored':>12}")
    for attack_id, label in ATTACK_LABELS.items():
        before = original.vulnerability_window(attack_id)
        after = refactored.vulnerability_window(attack_id)
        print(f"{label:<24} {before:>10.1%} {after:>12.1%}")
    print(
        f"{'all-clear window':<24} {original.invulnerable_window():>10.1%} "
        f"{refactored.invulnerable_window():>12.1%}"
    )
    print()


def main() -> None:
    for pair in (("passwd", "passwdRef"), ("su", "suRef")):
        audit(pair)
    print("Paper headline reproduced: the /dev/mem windows collapse from")
    print("~97%/88% to a few percent after two small refactorings.")


if __name__ == "__main__":
    main()
