"""Audit a container's capability policy against the modeled attacks.

The paper's introduction motivates PrivAnalyzer with Docker: containers
keep a default capability set, and nobody can say what that set actually
buys an attacker who compromises the contained process.  This example
checks capability bundles (including Docker's historical default) against
the four modeled attacks, assuming a fully exposed syscall surface (no
seccomp profile).

    python examples/container_policy.py
"""

from repro.caps import CapabilitySet
from repro.core.attacks import ALL_ATTACKS
from repro.rosa import check

#: Everything an unfiltered workload might invoke.
FULL_SURFACE = frozenset(
    {
        "open_read", "open_write", "setuid", "seteuid", "setresuid",
        "setgid", "setegid", "setresgid", "kill", "chmod", "fchmod",
        "chown", "fchown", "unlink", "rename", "socket", "bind", "connect",
    }
)

POLICIES = {
    "docker-default": CapabilitySet.of(
        "CapChown", "CapDacOverride", "CapFowner", "CapFsetid", "CapKill",
        "CapSetgid", "CapSetuid", "CapSetpcap", "CapNetBindService",
        "CapNetRaw", "CapSysChroot", "CapMknod", "CapAuditWrite",
        "CapSetfcap",
    ),
    "web-server": CapabilitySet.of("CapNetBindService"),
    "file-manager": CapabilitySet.of("CapChown", "CapFowner"),
    "dropped-all": CapabilitySet.empty(),
}

UIDS = (1000, 1000, 1000)


def main() -> None:
    print("Capability policy audit (process runs as uid 1000, no seccomp):")
    print()
    header = f"{'policy':<16}" + "".join(
        f"  {attack.name:<22}" for attack in ALL_ATTACKS
    )
    print(header)
    for name, policy in POLICIES.items():
        cells = []
        for attack in ALL_ATTACKS:
            query = attack.build_query(policy, UIDS, UIDS, FULL_SURFACE)
            report = check(query)
            cells.append(f"  {report.verdict.symbol} {report.verdict.value:<20}")
        print(f"{name:<16}" + "".join(cells))
    print()
    print("Reading: the Docker default set leaves every modeled attack open")
    print("if the workload's syscalls are not additionally filtered; a")
    print("purpose-built set (web-server) only exposes port masquerading.")


if __name__ == "__main__":
    main()
