"""Model a custom attack directly with the ROSA bounded model checker.

PrivAnalyzer ships four attacks, but ROSA is a general tool: describe a
Linux system as objects, give the attacker a syscall budget, and search
for any compromised state you can phrase as a predicate.

This example asks two custom questions the paper does not:

1. Can a process holding only CAP_FOWNER *corrupt the shadow database*
   (open /etc/shadow for writing)?
2. Can a process holding CAP_DAC_OVERRIDE *hide its tracks* by unlinking
   the audit log's directory entry?

    python examples/custom_attack.py
"""

from repro.rosa import Configuration, RosaQuery, check, goals, model, syscalls
from repro.rosa.syscalls import WILDCARD


def shadow_corruption_query(caps):
    """Objects: the attacker's process, /etc + /etc/shadow, identity pool."""
    capset = frozenset(syscalls.caps(caps))
    config = Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.dir_entry(2, name="/etc", owner=0, group=0, perms=0o755, inode=3),
            model.file_obj(3, name="/etc/shadow", owner=0, group=42, perms=0o640),
            model.user(10, 0),
            model.user(11, 1000),
            model.group(20, 42),
            model.group(21, 1000),
            syscalls.sys_open(1, WILDCARD, "w", capset),
            syscalls.sys_chmod(1, WILDCARD, 0o777, capset),
            syscalls.sys_chown(1, WILDCARD, WILDCARD, WILDCARD, capset),
            syscalls.sys_setuid(1, WILDCARD, capset),
        ]
    )
    return RosaQuery(
        f"corrupt-shadow[{','.join(sorted(str(c) for c in capset)) or 'no caps'}]",
        config,
        goals.file_opened_for_write(3),
        description="write access to the shadow password database",
    )


def log_tampering_query(caps):
    capset = frozenset(syscalls.caps(caps))
    config = Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.dir_entry(7, name="/var/log/audit.log", owner=0, group=0,
                            perms=0o755, inode=8),
            model.file_obj(8, name="audit.log", owner=0, group=0, perms=0o640),
            model.user(10, 0),
            model.user(11, 1000),
            model.group(20, 1000),
            syscalls.sys_unlink(1, WILDCARD, capset),
            syscalls.sys_rename(1, WILDCARD, "gone", capset),
        ]
    )
    return RosaQuery(
        f"unlink-audit-log[{','.join(sorted(str(c) for c in capset)) or 'no caps'}]",
        config,
        goals.entry_removed(7),
        description="remove the audit log's directory entry",
    )


def main() -> None:
    print("=== Custom attack 1: corrupt /etc/shadow ===")
    for caps in ([], ["CapFowner"], ["CapChown"], ["CapDacOverride"], ["CapSetuid"]):
        report = check(shadow_corruption_query(caps))
        print(f"  {report.summary()}")
    print()
    print("CAP_FOWNER alone suffices: chmod the shadow file world-writable,")
    print("then open it — no uid change, no DAC override needed.")
    print()
    print("=== Custom attack 2: unlink the audit log ===")
    for caps in ([], ["CapFowner"], ["CapDacOverride"]):
        report = check(log_tampering_query(caps))
        print(f"  {report.summary()}")
    print()
    print("Directory-entry removal is gated by *directory* write permission,")
    print("which only CAP_DAC_OVERRIDE bypasses.")


if __name__ == "__main__":
    main()
