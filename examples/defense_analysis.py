"""Model defense-weakened attackers (the paper's §X future work).

The base attack model lets an exploited program issue its system calls
in any order with corrupted arguments.  Deployed defenses shrink that
power.  This example re-checks the canonical /dev/mem attack under:

* seccomp — a syscall allowlist;
* CFI — calls restricted to the program's own order;
* argument integrity (CPI-style) — no wildcard corruption.

    python examples/defense_analysis.py
"""

from repro.rewriting import Configuration
from repro.rosa import RosaQuery, check, goals, model, syscalls
from repro.rosa.defenses import compare_defenses
from repro.rosa.syscalls import WILDCARD


def build_query(program_opens_before_setuid: bool):
    """A program holding CAP_SETUID that opens a file and setuids.

    Whether it opens *before* or *after* setuid decides what a
    CFI-constrained attacker can achieve.
    """
    capset = frozenset(syscalls.caps(["CapSetuid"]))
    setuid_msg = syscalls.sys_setuid(1, WILDCARD, capset)
    open_msg = syscalls.sys_open(1, WILDCARD, "r", capset)
    config = Configuration(
        [
            model.process_for_user(1, uid=1000, gid=1000),
            model.file_obj(10, name="/dev/mem", owner=0, group=15, perms=0o640),
            model.user(20, 0),
            model.user(21, 1000),
            setuid_msg,
            open_msg,
        ]
    )
    order = (
        [open_msg, setuid_msg]
        if program_opens_before_setuid
        else [setuid_msg, open_msg]
    )
    query = RosaQuery(
        "read-devmem", config, goals.file_opened_for_read(10)
    )
    return query, order


def main() -> None:
    print("Attack: read /dev/mem; program capabilities: CapSetuid.")
    print()
    for opens_first in (False, True):
        query, order = build_query(opens_first)
        shape = "open(); setuid()" if opens_first else "setuid(); open()"
        comparison = compare_defenses(
            query,
            program_order=order,
            seccomp_allowlist=["open"],  # filter setuid away
        )
        print(f"program shape: {shape}")
        for name, verdict in comparison.verdicts.items():
            print(f"  {name:<14} {verdict}")
        print()
    print("Observations:")
    print(" * seccomp filtering setuid kills the attack outright;")
    print(" * CFI only helps when the program's own call order (open before")
    print("   setuid) is the reverse of the order the attack recipe needs;")
    print(" * argument integrity helps exactly when the program's own")
    print("   arguments are harmless (here: wildcards dropped entirely).")


if __name__ == "__main__":
    main()
