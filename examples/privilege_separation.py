"""Privilege separation: measuring OpenSSH's answer to the sshd problem.

The paper's Table III shows sshd holding every capability for ~99 % of
execution — privilege brackets cannot help a server whose connection
loop structurally needs them.  This example measures the fix OpenSSH
actually deploys: fork a session child that permanently destroys its
copy of the capabilities before doing the heavy work.

Runs both sshd variants through the library (the multi-process pipeline
attaches a ChronoPriv recorder to every forked child), prints the
per-process phase tables, and compares the instruction-weighted
exposure.

    python examples/privilege_separation.py
"""

from repro.core import PrivAnalyzer
from repro.core.attacks import ALL_ATTACKS
from repro.core.multiprocess import analyze_multiprocess
from repro.programs import spec_by_name


def main() -> None:
    print("Monolithic sshd (the paper's Table III):")
    monolithic = PrivAnalyzer().analyze(spec_by_name("sshd"))
    print(monolithic.render_table())
    print()

    privsep = analyze_multiprocess(spec_by_name("sshdPrivsep"))
    print("Privilege-separated sshd, per process:")
    print()
    print(privsep.render())
    print()
    print(f"{'attack':<24} {'monolithic':>12} {'privsep':>10}")
    exposure = privsep.exposure_table()
    for attack in ALL_ATTACKS:
        mono = monolithic.vulnerability_window(attack.attack_id)
        print(f"{attack.name:<24} {mono:>12.1%} {exposure[attack.name]:>10.1%}")
    print()
    print("The session child runs >99% of the instructions with an empty")
    print("permitted set — the fork boundary achieves what privilege")
    print("bracketing alone could not (and what AutoPriv cannot derive:")
    print("the monitor still needs its capabilities for the next client).")


if __name__ == "__main__":
    main()
