"""Quickstart: measure how effectively a privileged program uses privileges.

Runs the full PrivAnalyzer pipeline (AutoPriv -> ChronoPriv -> ROSA) on
the paper's passwd model and prints its Table III row block: which
privilege sets are held, for what share of execution, and which of the
four modeled attacks each phase is vulnerable to.

    python examples/quickstart.py
"""

from repro.core import PrivAnalyzer
from repro.programs import spec_by_name


def main() -> None:
    spec = spec_by_name("passwd")
    print(f"Analyzing {spec.name!r}: {spec.description}")
    print(f"Installed permitted set: {spec.permitted.describe()}")
    print()

    analysis = PrivAnalyzer().analyze(spec)

    print(analysis.render_table())
    print()
    print("Attacks: 1=read /dev/mem, 2=write /dev/mem, "
          "3=bind privileged port, 4=SIGKILL the sshd server")
    print()
    for attack_id, label in [(1, "read /dev/mem"), (2, "write /dev/mem"),
                             (3, "bind privileged port"), (4, "kill sshd")]:
        window = analysis.vulnerability_window(attack_id)
        print(f"  vulnerable to {label:<22} for {window:6.1%} of execution")
    print(f"  invulnerable to everything     for "
          f"{analysis.invulnerable_window():6.1%} of execution")
    print()
    print("The paper's conclusion in one line: merely dropping dead")
    print("privileges is not enough — passwd stays exposed almost all run.")


if __name__ == "__main__":
    main()
