"""``make serve-smoke``: the control plane's compute-once gate, end to end.

Starts a real ``privanalyzer serve`` process, then:

1. runs TWO CONCURRENT cold clients over the same corpus slice and
   asserts they never duplicated work (publishes across both equal the
   store's distinct objects) and answered identically;
2. runs a third, "second sweep" client — fresh connection, fresh
   per-request engine, only the on-disk store warm — and asserts it is
   at least 90% store-served with responses bit-identical to the cold
   run;
3. snapshots ``{"op": "metrics"}`` into ``serve-metrics.prom`` (the CI
   artifact: the live dashboard as Prometheus text exposition);
4. shuts the server down over the protocol and waits for a clean exit.

Any assertion failure exits nonzero; the server is killed on the way
out regardless.  See docs/SERVING.md for the protocol and the runbook.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import ServeClient  # noqa: E402

CORPUS = {"seed": 0, "generated": 3}
SERVED_MIN = 0.9
STARTUP_TIMEOUT = 30.0


def wait_for_port(port_file: str, process: subprocess.Popen) -> tuple:
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise SystemExit(
                f"serve-smoke: server died during startup "
                f"(exit {process.returncode})"
            )
        if os.path.exists(port_file):
            host, port = open(port_file).read().strip().rsplit(":", 1)
            return host, int(port)
        time.sleep(0.05)
    raise SystemExit("serve-smoke: server never published its port")


def served_fraction(response: dict) -> float:
    served = response["served"]
    lookups = served["store_hits"] + served["store_misses"]
    return served["store_hits"] / lookups if lookups else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dir", default="/tmp/privanalyzer-serve-smoke")
    args = parser.parse_args()
    os.makedirs(args.dir, exist_ok=True)
    port_file = os.path.join(args.dir, "port")
    store_dir = os.path.join(args.dir, "store")
    metrics_path = os.path.join(args.dir, "serve-metrics.prom")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__), "..", "src")
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--store", store_dir, "--port-file", port_file,
        ],
        env=env,
    )
    try:
        host, port = wait_for_port(port_file, server)
        print(f"serve-smoke: server up on {host}:{port}")

        # -- 1: two concurrent cold clients, one shared store ---------------
        responses = []
        lock = threading.Lock()

        def cold_client() -> None:
            with ServeClient(host, port, timeout=300.0) as client:
                response = client.corpus(**CORPUS)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=cold_client) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert len(responses) == 2, "a cold client never answered"
        assert responses[0]["result"] == responses[1]["result"], (
            "concurrent cold clients answered differently"
        )
        with ServeClient(host, port, timeout=60.0) as client:
            entries = client.stats()["store"]["entries"]
        total_published = sum(r["served"]["published"] for r in responses)
        assert total_published == entries, (
            f"duplicated work: {total_published} publishes for "
            f"{entries} distinct store objects"
        )
        print(
            f"serve-smoke: 2 concurrent cold clients, "
            f"{entries} distinct searches, {total_published} publishes "
            f"(no duplicates), answers identical"
        )

        # -- 2: the second sweep — warm store, everything else cold ----------
        with ServeClient(host, port, timeout=300.0) as client:
            warm = client.corpus(**CORPUS)
        fraction = served_fraction(warm)
        assert fraction >= SERVED_MIN, (
            f"second client only {fraction:.2f} store-served "
            f"(floor {SERVED_MIN}): {warm['served']}"
        )
        assert warm["served"]["published"] == 0, warm["served"]
        assert warm["result"] == responses[0]["result"], (
            "store-served corpus differs from the live computation"
        )
        print(
            f"serve-smoke: second client {fraction:.0%} store-served "
            f"({warm['served']['store_hits']} hits), verdict-identical"
        )

        # -- 3: the dashboard artifact ---------------------------------------
        with ServeClient(host, port, timeout=60.0) as client:
            text = client.metrics_text()
            with open(metrics_path, "w", encoding="utf-8") as handle:
                handle.write(text)
            assert "privanalyzer_rosa_store_hits_total" in text
            assert "privanalyzer_serve_requests_total" in text
            client.shutdown()
        print(f"serve-smoke: wrote {metrics_path}")

        server.wait(timeout=30)
        assert server.returncode == 0, f"server exited {server.returncode}"
        print("serve-smoke ok")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
