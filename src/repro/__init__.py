"""PrivAnalyzer reproduction — measuring the efficacy of Linux privilege use.

A from-scratch Python reproduction of *PrivAnalyzer: Measuring the
Efficacy of Linux Privilege Use* (DSN 2019), including every substrate
the paper's toolchain depends on:

* :mod:`repro.caps` — the Linux capability/credential model;
* :mod:`repro.ir`, :mod:`repro.frontend` — an LLVM-flavoured IR and the
  PrivC mini-C frontend (the LLVM 3.7.1 substitute);
* :mod:`repro.autopriv` — static privilege liveness + dead-privilege
  removal (the AutoPriv compiler);
* :mod:`repro.chronopriv` — dynamic privilege-retention measurement;
* :mod:`repro.oskernel`, :mod:`repro.vm` — a simulated Linux kernel and
  an IR interpreter to execute instrumented programs;
* :mod:`repro.rewriting` — a bounded term/object rewriting engine (the
  Maude 2.7 substitute);
* :mod:`repro.rosa` — the ROSA bounded model checker;
* :mod:`repro.core` — the PrivAnalyzer pipeline, the four modeled
  attacks, and the risk metrics of the paper's Tables III and V;
* :mod:`repro.programs` — PrivC models of passwd, su, ping, thttpd and
  sshd, plus the refactored passwd/su.

Quickstart::

    from repro.core import PrivAnalyzer
    from repro.programs import spec_by_name

    analysis = PrivAnalyzer().analyze(spec_by_name("passwd"))
    print(analysis.render_table())
    print(f"vulnerable to /dev/mem reads for "
          f"{analysis.vulnerability_window(1):.0%} of execution")
"""

import logging as _logging

__version__ = "1.0.0"

__all__ = ["__version__"]

# Library etiquette: the ``repro`` logger hierarchy stays silent unless
# the application (or the CLI's --verbose/--quiet) installs a handler.
_logging.getLogger("repro").addHandler(_logging.NullHandler())
