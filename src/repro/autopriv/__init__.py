"""AutoPriv: static privilege liveness and dead-privilege removal.

The first stage of the PrivAnalyzer pipeline (§V).  Finds the program
points where each privilege becomes dead — unusable on every forward path
— and inserts ``priv_remove`` calls there, making those privileges
unavailable to an attacker from that point on.
"""

from repro.autopriv.liveness import PrivLiveness, analyze_module
from repro.autopriv.privuse import (
    PRIV_LOWER,
    PRIV_RAISE,
    PRIV_REMOVE,
    direct_uses,
    fold_constant,
    instruction_uses,
    mask_argument,
    registered_signal_handlers,
)
from repro.autopriv.transform import TransformReport, transform_module

__all__ = [
    "PRIV_LOWER",
    "PRIV_RAISE",
    "PRIV_REMOVE",
    "PrivLiveness",
    "TransformReport",
    "analyze_module",
    "direct_uses",
    "fold_constant",
    "instruction_uses",
    "mask_argument",
    "registered_signal_handlers",
    "transform_module",
]
