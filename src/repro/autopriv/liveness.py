"""Interprocedural privilege liveness.

AutoPriv (§V) computes, for every program point, which privileges might
still be used on some path forward — including uses that happen after the
current function returns.  A privilege absent from that set is *dead* and
can be removed from the permitted set.

The analysis has three layers:

1. **Call-graph closure** — ``uses(F)``: the privileges function ``F`` or
   anything it (transitively, via the possibly-conservative call graph)
   calls may raise.
2. **Return liveness fixpoint** — ``live_out(F)``: the privileges that
   may still be used after ``F`` returns, i.e. the union over all call
   sites of ``F`` of the liveness just after that call.  ``main`` has an
   empty return liveness.
3. **Intra-procedural backward data-flow** — within each function,
   block-level liveness seeded at returns with ``live_out(F)``, with each
   call site generating ``uses(callee)``.

Privileges used by registered signal handlers are pinned live for the
whole program: a handler can run at any instruction (§VII-C), so its
privileges never die.  This is exactly the mechanism that keeps sshd's
privileges alive in the paper's Table III.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple

from repro.caps import Capability, CapabilitySet
from repro.ir import BasicBlock, Call, CallGraph, Function, Instruction, Module
from repro.ir.dataflow import SetDataflowProblem, solve
from repro.autopriv import privuse

CapFacts = FrozenSet[Capability]


def _facts(caps: CapabilitySet) -> CapFacts:
    return caps.as_frozenset()


@dataclasses.dataclass
class PrivLiveness:
    """The complete liveness solution for one module."""

    module: Module
    callgraph: CallGraph
    #: Transitive privilege uses per function.
    uses: Dict[Function, CapabilitySet]
    #: Privileges that may be used after each function returns.
    live_out: Dict[Function, CapabilitySet]
    #: Privileges pinned live forever (signal handlers' uses).
    pinned: CapabilitySet
    #: Per-block liveness at block entry/exit, per function.
    block_in: Dict[Function, Dict[BasicBlock, CapFacts]]
    block_out: Dict[Function, Dict[BasicBlock, CapFacts]]

    def call_uses(self, call: Call) -> CapabilitySet:
        """Privileges a call site may (transitively) use."""
        used = privuse.instruction_uses(call)
        for target in self.callgraph.resolve_call(call):
            used = used | self.uses.get(target, CapabilitySet.empty())
        return used

    def live_after_instruction(
        self, function: Function, block: BasicBlock, index: int
    ) -> CapabilitySet:
        """Privileges live immediately after ``block.instructions[index]``.

        Walks backward from the block's out-set through the instructions
        following ``index``, adding each one's generated uses.
        """
        live = set(self.block_out[function][block])
        for instruction in reversed(block.instructions[index + 1 :]):
            live |= self._instruction_gen(instruction)
        return CapabilitySet(live) | self.pinned

    def _instruction_gen(self, instruction: Instruction) -> CapFacts:
        if isinstance(instruction, Call):
            return _facts(self.call_uses(instruction))
        return frozenset()


class _BlockLiveness(SetDataflowProblem):
    """Backward may-liveness of privileges within one function."""

    direction = "backward"
    meet = "union"

    def __init__(self, analysis_uses, live_out: CapabilitySet) -> None:
        self._gen_for = analysis_uses
        self._live_out = _facts(live_out)

    def gen(self, block: BasicBlock) -> CapFacts:
        generated: set = set()
        for instruction in block.instructions:
            generated |= self._gen_for(instruction)
        return frozenset(generated)

    def kill(self, block: BasicBlock) -> CapFacts:
        # Privileges do not die syntactically: removal points are where we
        # *insert* kills, so the analysis itself never kills.
        return frozenset()

    def boundary(self) -> CapFacts:
        return self._live_out


def analyze_module(
    module: Module,
    entry: str = "main",
    indirect_targets_filter: str = "address-taken",
) -> PrivLiveness:
    """Run the full interprocedural privilege-liveness analysis."""
    callgraph = CallGraph(module, indirect_targets_filter)

    # Layer 1: transitive uses per function.
    uses: Dict[Function, CapabilitySet] = {}
    for function in module.functions.values():
        used = privuse.direct_uses(function) if not function.is_declaration else CapabilitySet.empty()
        for callee in callgraph.transitive_callees(function):
            used = used | privuse.direct_uses(callee)
        uses[function] = used

    # Pinned privileges: whatever registered signal handlers may use.
    pinned = CapabilitySet.empty()
    for handler in privuse.registered_signal_handlers(module):
        pinned = pinned | uses.get(handler, CapabilitySet.empty())

    def instruction_gen(instruction: Instruction) -> CapFacts:
        if isinstance(instruction, Call):
            generated = privuse.instruction_uses(instruction)
            for target in callgraph.resolve_call(instruction):
                generated = generated | uses.get(target, CapabilitySet.empty())
            return _facts(generated)
        return frozenset()

    # Layer 2 + 3: iterate return-liveness and per-function block liveness
    # to a joint fixpoint.
    live_out: Dict[Function, CapabilitySet] = {
        function: CapabilitySet.empty() for function in module.functions.values()
    }
    block_in: Dict[Function, Dict[BasicBlock, CapFacts]] = {}
    block_out: Dict[Function, Dict[BasicBlock, CapFacts]] = {}

    defined = list(module.defined_functions())
    changed = True
    while changed:
        changed = False
        for function in defined:
            problem = _BlockLiveness(instruction_gen, live_out[function])
            result = solve(problem, function)
            if (
                block_in.get(function) != result.block_in
                or block_out.get(function) != result.block_out
            ):
                block_in[function] = result.block_in
                block_out[function] = result.block_out
                changed = True
        # Propagate liveness-after-call-site into callees' live_out.
        new_live_out = {
            function: CapabilitySet.empty() for function in module.functions.values()
        }
        for function in defined:
            for block in function.blocks:
                if block not in block_out.get(function, {}):
                    continue  # unreachable block
                live = set(block_out[function][block])
                for index in range(len(block.instructions) - 1, -1, -1):
                    instruction = block.instructions[index]
                    if isinstance(instruction, Call):
                        # ``live`` currently holds liveness *after* this call.
                        for target in callgraph.resolve_call(instruction):
                            new_live_out[target] = new_live_out[target] | CapabilitySet(live)
                    live |= instruction_gen(instruction)
        entry_function = module.functions.get(entry)
        if entry_function is not None:
            new_live_out[entry_function] = CapabilitySet.empty()
        if new_live_out != live_out:
            live_out = new_live_out
            changed = True

    return PrivLiveness(
        module=module,
        callgraph=callgraph,
        uses=uses,
        live_out=live_out,
        pinned=pinned,
        block_in=block_in,
        block_out=block_out,
    )
