"""Discovering where a program uses privileges.

A *privilege use* is a call to the AutoPriv runtime wrapper
``priv_raise(mask)`` (§II): the program is about to perform an operation
requiring those capabilities.  The mask argument is usually a constant
expression (``CAP_SETUID | CAP_CHOWN``); we fold IR constant expressions
to recover it.  A mask we cannot resolve statically is treated as "all
capabilities" — the conservative answer.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.caps import Capability, CapabilitySet
from repro.ir import BinOp, Call, ConstantInt, Function, Instruction, Module, Value
from repro.ir.instructions import BINARY_OPS

#: Name of the runtime wrapper whose argument names the capabilities used.
PRIV_RAISE = "priv_raise"
#: The other wrappers, recognised so analyses can treat them specially.
PRIV_LOWER = "priv_lower"
PRIV_REMOVE = "priv_remove"
#: Registering a signal handler makes the handler's privilege uses
#: asynchronous (§VII-C: "signal handlers can be called at any time").
SIGNAL_REGISTER = "signal"

FULL_MASK = CapabilitySet.full()


def fold_constant(value: Value) -> Optional[int]:
    """Evaluate an integer-constant IR expression, or None.

    Handles the shapes lowering produces for capability masks: integer
    literals and trees of binary operations over them.
    """
    if isinstance(value, ConstantInt):
        return value.value
    if isinstance(value, BinOp):
        lhs = fold_constant(value.operands[0])
        rhs = fold_constant(value.operands[1])
        if lhs is None or rhs is None:
            return None
        try:
            return value.type.wrap(BINARY_OPS[value.op](lhs, rhs))
        except ZeroDivisionError:
            return None
    return None


def mask_argument(call: Call) -> CapabilitySet:
    """The capability set named by a ``priv_*`` call's mask argument."""
    if not call.args:
        return FULL_MASK
    mask = fold_constant(call.args[0])
    if mask is None:
        return FULL_MASK
    try:
        return CapabilitySet.from_mask(mask)
    except ValueError:
        return FULL_MASK


def is_priv_call(call: Call, wrapper: str) -> bool:
    target = call.direct_target
    return target is not None and target.name == wrapper


def _is_use(instruction: Instruction) -> bool:
    """Is this instruction a privilege *use*?

    Programs following the AutoPriv discipline bracket privileged
    operations with ``priv_raise`` / ``priv_lower`` (§II).  Both wrappers
    count as uses: the privilege must stay permitted from the raise
    through the bracketed system calls up to the matching lower — so the
    closing ``priv_lower`` is the last point the privilege is needed, and
    removal happens after it.
    """
    return isinstance(instruction, Call) and (
        is_priv_call(instruction, PRIV_RAISE) or is_priv_call(instruction, PRIV_LOWER)
    )


def direct_uses(function: Function) -> CapabilitySet:
    """Capabilities used by raise/lower brackets directly inside ``function``."""
    used = CapabilitySet.empty()
    for instruction in function.instructions():
        if _is_use(instruction):
            used = used | mask_argument(instruction)
    return used


def instruction_uses(instruction: Instruction) -> CapabilitySet:
    """Capabilities used by this one instruction (non-transitively)."""
    if _is_use(instruction):
        return mask_argument(instruction)
    return CapabilitySet.empty()


def registered_signal_handlers(module: Module) -> Set[Function]:
    """Functions passed as handlers to ``signal()`` anywhere in the module."""
    from repro.ir import FunctionRef

    handlers: Set[Function] = set()
    for function in module.defined_functions():
        for instruction in function.instructions():
            if not isinstance(instruction, Call):
                continue
            if not is_priv_call(instruction, SIGNAL_REGISTER):
                continue
            for arg in instruction.args:
                if isinstance(arg, FunctionRef):
                    handlers.add(arg.function)
    return handlers
