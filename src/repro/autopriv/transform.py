"""The AutoPriv transformation: drop privileges the moment they die.

Given the liveness solution, insert ``priv_remove(mask)`` calls at every
live→dead transition — after the last instruction on a path that can use
a privilege — plus one sweep at program entry for privileges the program
can never use.  The paper's compiler additionally inserts a ``prctl()``
call disabling the kernel's root-uid capability fixups (§VII-B); we do
the same.

Privileges used by registered signal handlers are never removed: the
handler may run at any time.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, List, Tuple

from repro.caps import CapabilitySet
from repro.ir import Call, ConstantInt, Function, I64, Module
from repro.ir.instructions import Instruction
from repro.ir.types import VOID
from repro.autopriv import privuse
from repro.autopriv.liveness import PrivLiveness, analyze_module


@dataclasses.dataclass
class TransformReport:
    """What the transform did — used by tests and the A2 ablation."""

    #: (function name, block name, instruction index, removed set) per
    #: inserted priv_remove call.
    insertions: List[Tuple[str, str, int, CapabilitySet]]
    #: Privileges removed immediately at program entry.
    entry_removed: CapabilitySet
    #: Privileges pinned live by signal handlers (never removed).
    pinned: CapabilitySet
    #: Wall-clock seconds per pass: ``{"liveness": ..., "insertion": ...}``.
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)

    @property
    def insertion_count(self) -> int:
        return len(self.insertions) + (1 if self.entry_removed else 0)


def _runtime_fn(module: Module, name: str, param_types) -> "Function":
    """The runtime wrapper, reusing the program's own (possibly variadic)
    implicit declaration when one exists."""
    existing = module.functions.get(name)
    if existing is not None:
        return existing
    return module.declare(name, I64, param_types)


def _remove_call(module: Module, mask: CapabilitySet) -> Call:
    remove_fn = _runtime_fn(module, privuse.PRIV_REMOVE, [I64])
    return Call(remove_fn.ref(), [ConstantInt(I64, mask.to_mask())], I64)


def transform_module(
    module: Module,
    initial_permitted: CapabilitySet,
    entry: str = "main",
    insert_lockdown: bool = True,
    indirect_targets_filter: str = "address-taken",
    clock: Callable[[], float] = time.perf_counter,
) -> TransformReport:
    """Insert ``priv_remove`` calls in place; returns what was inserted.

    The report's ``timings`` break the pass into its two phases —
    privilege-liveness dataflow and call insertion — for the telemetry
    layer's per-pass profile.
    """
    pass_start = clock()
    liveness = analyze_module(module, entry, indirect_targets_filter)
    liveness_seconds = clock() - pass_start
    insertion_start = clock()
    insertions: List[Tuple[str, str, int, CapabilitySet]] = []
    candidates = initial_permitted - liveness.pinned

    for function in module.defined_functions():
        if function not in liveness.block_in:
            continue
        from repro.ir import predecessors

        preds = predecessors(function)
        block_in = liveness.block_in[function]
        block_out = liveness.block_out[function]
        for block in function.blocks:
            if block not in block_in:
                continue  # unreachable
            # Walk the block backward tracking instruction-level liveness.
            live_after = set(block_out[block])
            transitions: List[Tuple[int, CapabilitySet]] = []
            for index in range(len(block.instructions) - 1, -1, -1):
                instruction = block.instructions[index]
                generated = _instruction_gen(liveness, instruction)
                live_before = live_after | generated
                dying = (
                    CapabilitySet(live_before - live_after) & candidates
                )
                if dying and not instruction.is_terminator:
                    transitions.append((index, dying))
                live_after = live_before
            # Insert from the highest index down so indices stay valid.
            for index, dying in transitions:
                block.insert(index + 1, _remove_call(module, dying))
                insertions.append((function.name, block.name, index + 1, dying))

            # Edge deaths: a privilege live out of some predecessor (on
            # behalf of a *different* successor) but dead on entry here —
            # e.g. the false edge around an if-guarded bracket, or a loop
            # exit edge.  Removal at block entry is safe: liveness at
            # block entry is path-insensitive, so the privilege is dead
            # on every path from here regardless of the edge taken.
            reachable_preds = [pred for pred in preds[block] if pred in block_out]
            if not reachable_preds:
                continue
            incoming = set()
            for pred in reachable_preds:
                incoming |= set(block_out[pred])
            dying_at_entry = CapabilitySet(incoming - set(block_in[block])) & candidates
            if dying_at_entry:
                block.insert(0, _remove_call(module, dying_at_entry))
                insertions.append((function.name, block.name, 0, dying_at_entry))

    # Entry sweep: privileges never live at program start die immediately.
    entry_removed = CapabilitySet.empty()
    entry_function = module.functions.get(entry)
    if entry_function is not None and not entry_function.is_declaration:
        entry_block = entry_function.entry
        live_at_entry = CapabilitySet(
            liveness.block_in.get(entry_function, {}).get(entry_block, frozenset())
        )
        entry_removed = candidates - live_at_entry
        position = 0
        if insert_lockdown:
            lockdown = _runtime_fn(module, "prctl_lockdown", [])
            entry_block.insert(0, Call(lockdown.ref(), [], I64))
            position = 1
        if entry_removed:
            entry_block.insert(position, _remove_call(module, entry_removed))

    return TransformReport(
        insertions=insertions,
        entry_removed=entry_removed,
        pinned=liveness.pinned,
        timings={
            "liveness": liveness_seconds,
            "insertion": clock() - insertion_start,
        },
    )


def _instruction_gen(liveness: PrivLiveness, instruction: Instruction):
    if isinstance(instruction, Call):
        return liveness.call_uses(instruction).as_frozenset()
    return frozenset()
