"""Linux capability and credential model.

This package is the shared vocabulary of the whole reproduction: the
:class:`Capability` enum, immutable :class:`CapabilitySet` values, the
per-task effective/permitted/inheritable :class:`CapabilityState`, and the
six-id :class:`Credentials` tuple.
"""

from repro.caps.capability import (
    Capability,
    POWERFUL_CAPABILITIES,
    parse_capability,
)
from repro.caps.capset import CapabilitySet, CapabilityState
from repro.caps.credentials import Credentials, ROOT_GID, ROOT_UID

__all__ = [
    "Capability",
    "CapabilitySet",
    "CapabilityState",
    "Credentials",
    "POWERFUL_CAPABILITIES",
    "ROOT_GID",
    "ROOT_UID",
    "parse_capability",
]
