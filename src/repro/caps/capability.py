"""The Linux capability vocabulary.

Linux divides the power of the root user into distinct *capabilities*
(called *privileges* throughout the PrivAnalyzer paper).  Each capability
bypasses a specific subset of the access-control rules that the root user
of a classic Unix system bypasses wholesale.  This module defines the full
capability vocabulary of capability(7) as of Linux 4.x (the kernel the
paper's Ubuntu 16.04 testbed ran) plus helpers for converting between the
kernel-style names (``CAP_SETUID``) and the camel-case names the paper's
tables use (``CapSetuid``).
"""

from __future__ import annotations

import enum


class Capability(enum.IntEnum):
    """One Linux capability, numbered as in ``<linux/capability.h>``.

    The integer values match the kernel's capability numbers so that
    bit-mask representations produced by :class:`repro.caps.CapabilitySet`
    are directly comparable with real ``/proc/<pid>/status`` ``CapPrm``
    lines.
    """

    CAP_CHOWN = 0
    CAP_DAC_OVERRIDE = 1
    CAP_DAC_READ_SEARCH = 2
    CAP_FOWNER = 3
    CAP_FSETID = 4
    CAP_KILL = 5
    CAP_SETGID = 6
    CAP_SETUID = 7
    CAP_SETPCAP = 8
    CAP_LINUX_IMMUTABLE = 9
    CAP_NET_BIND_SERVICE = 10
    CAP_NET_BROADCAST = 11
    CAP_NET_ADMIN = 12
    CAP_NET_RAW = 13
    CAP_IPC_LOCK = 14
    CAP_IPC_OWNER = 15
    CAP_SYS_MODULE = 16
    CAP_SYS_RAWIO = 17
    CAP_SYS_CHROOT = 18
    CAP_SYS_PTRACE = 19
    CAP_SYS_PACCT = 20
    CAP_SYS_ADMIN = 21
    CAP_SYS_BOOT = 22
    CAP_SYS_NICE = 23
    CAP_SYS_RESOURCE = 24
    CAP_SYS_TIME = 25
    CAP_SYS_TTY_CONFIG = 26
    CAP_MKNOD = 27
    CAP_LEASE = 28
    CAP_AUDIT_WRITE = 29
    CAP_AUDIT_CONTROL = 30
    CAP_SETFCAP = 31
    CAP_MAC_OVERRIDE = 32
    CAP_MAC_ADMIN = 33
    CAP_SYSLOG = 34
    CAP_WAKE_ALARM = 35
    CAP_BLOCK_SUSPEND = 36
    CAP_AUDIT_READ = 37

    @property
    def camel_name(self) -> str:
        """The camel-case spelling used in the paper's tables.

        >>> Capability.CAP_DAC_READ_SEARCH.camel_name
        'CapDacReadSearch'
        """
        parts = self.name.split("_")[1:]
        return "Cap" + "".join(part.capitalize() for part in parts)

    def __str__(self) -> str:
        return self.camel_name

    def __repr__(self) -> str:
        # Same text as the stock IntEnum repr, but precomputed: canonical
        # configuration keys repr() capability sets on every state the
        # search creates, and enum.__repr__ is pure-Python per call.
        return _REPRS[self]


# Lookup tables built once at import time.
_REPRS = {
    cap: f"<Capability.{cap.name}: {cap.value}>" for cap in Capability
}
_BY_KERNEL_NAME = {cap.name: cap for cap in Capability}
_BY_CAMEL_NAME = {cap.camel_name: cap for cap in Capability}
_BY_LOWER_NAME = {cap.name.lower(): cap for cap in Capability}


def parse_capability(name: str) -> Capability:
    """Parse a capability from any accepted spelling.

    Accepted spellings: the kernel name (``CAP_SETUID``, case-insensitive)
    and the paper's camel-case name (``CapSetuid``).

    :raises ValueError: if the name matches no capability.
    """
    if name in _BY_CAMEL_NAME:
        return _BY_CAMEL_NAME[name]
    upper = name.upper()
    if upper in _BY_KERNEL_NAME:
        return _BY_KERNEL_NAME[upper]
    if name.lower() in _BY_LOWER_NAME:
        return _BY_LOWER_NAME[name.lower()]
    raise ValueError(f"unknown capability name: {name!r}")


#: Capabilities that, per the paper's §VII-D discussion, are individually
#: sufficient to mount powerful privilege-escalation attacks.  Used by the
#: risk report to highlight the privileges worth refactoring away first.
POWERFUL_CAPABILITIES = frozenset(
    {
        Capability.CAP_SETUID,
        Capability.CAP_SETGID,
        Capability.CAP_CHOWN,
        Capability.CAP_FOWNER,
        Capability.CAP_DAC_OVERRIDE,
        Capability.CAP_DAC_READ_SEARCH,
        Capability.CAP_KILL,
        Capability.CAP_SYS_ADMIN,
        Capability.CAP_SYS_PTRACE,
        Capability.CAP_SYS_RAWIO,
    }
)
