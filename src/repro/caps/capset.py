"""Immutable capability sets and the per-task capability state.

A Linux task carries three capability sets (capability(7)):

* *effective* — the set the kernel consults for access-control decisions;
* *permitted* — the limiting superset: a capability can only be raised into
  the effective set if it is permitted;
* *inheritable* — the set preserved across ``execve``.

Following the paper (§II), we provide the three PitBull-style operations it
borrows from the AutoPriv runtime: ``priv_raise`` (enable in effective),
``priv_lower`` (disable in effective) and ``priv_remove`` (disable in both
effective and permitted; irrevocable until the next ``execve``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from repro.caps.capability import Capability, parse_capability

CapLike = Union[Capability, str]


def _coerce(caps: Iterable[CapLike]) -> frozenset:
    return frozenset(
        cap if isinstance(cap, Capability) else parse_capability(cap) for cap in caps
    )


class CapabilitySet:
    """An immutable set of :class:`Capability` values.

    Behaves like a frozenset with capability-aware construction, ordering
    and rendering.  The rendering (:meth:`describe`) matches the paper's
    table style: camel-case names joined by commas, ``(empty)`` for the
    empty set.
    """

    __slots__ = ("_caps",)

    def __init__(self, caps: Iterable[CapLike] = ()) -> None:
        self._caps = _coerce(caps)

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "CapabilitySet":
        """The empty capability set."""
        return _EMPTY

    @classmethod
    def full(cls) -> "CapabilitySet":
        """Every capability the kernel defines (the root user's power)."""
        return _FULL

    @classmethod
    def of(cls, *caps: CapLike) -> "CapabilitySet":
        """Convenience variadic constructor.

        >>> CapabilitySet.of("CapSetuid", Capability.CAP_CHOWN)
        CapabilitySet({CapChown, CapSetuid})
        """
        return cls(caps)

    @classmethod
    def parse(cls, text: str) -> "CapabilitySet":
        """Parse a comma-separated list of capability names.

        Accepts the paper's ``(empty)`` marker and blank strings for the
        empty set.
        """
        text = text.strip()
        if not text or text == "(empty)" or text == "empty":
            return cls.empty()
        return cls(part.strip() for part in text.split(",") if part.strip())

    # -- set algebra -------------------------------------------------------

    def union(self, other: "CapabilitySet") -> "CapabilitySet":
        return CapabilitySet(self._caps | other._caps)

    def intersection(self, other: "CapabilitySet") -> "CapabilitySet":
        return CapabilitySet(self._caps & other._caps)

    def difference(self, other: "CapabilitySet") -> "CapabilitySet":
        return CapabilitySet(self._caps - other._caps)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    def add(self, *caps: CapLike) -> "CapabilitySet":
        """Return a new set with ``caps`` added (this type is immutable)."""
        return CapabilitySet(self._caps | _coerce(caps))

    def remove(self, *caps: CapLike) -> "CapabilitySet":
        """Return a new set with ``caps`` removed (missing ones ignored)."""
        return CapabilitySet(self._caps - _coerce(caps))

    def issubset(self, other: "CapabilitySet") -> bool:
        return self._caps <= other._caps

    def __le__(self, other: "CapabilitySet") -> bool:
        return self._caps <= other._caps

    def __lt__(self, other: "CapabilitySet") -> bool:
        return self._caps < other._caps

    # -- queries -----------------------------------------------------------

    def __contains__(self, cap: CapLike) -> bool:
        if isinstance(cap, str):
            cap = parse_capability(cap)
        return cap in self._caps

    def __iter__(self) -> Iterator[Capability]:
        return iter(sorted(self._caps))

    def __len__(self) -> int:
        return len(self._caps)

    def __bool__(self) -> bool:
        return bool(self._caps)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CapabilitySet):
            return self._caps == other._caps
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._caps)

    def as_frozenset(self) -> frozenset:
        """The underlying frozenset of :class:`Capability` values."""
        return self._caps

    def to_mask(self) -> int:
        """Encode the set as a kernel-style bit mask.

        The result is comparable with the hexadecimal ``CapPrm``/``CapEff``
        lines in ``/proc/<pid>/status``.
        """
        mask = 0
        for cap in self._caps:
            mask |= 1 << int(cap)
        return mask

    @classmethod
    def from_mask(cls, mask: int) -> "CapabilitySet":
        """Decode a kernel-style bit mask produced by :meth:`to_mask`."""
        if mask < 0:
            raise ValueError("capability mask must be non-negative")
        caps = []
        for cap in Capability:
            if mask & (1 << int(cap)):
                caps.append(cap)
                mask &= ~(1 << int(cap))
        if mask:
            raise ValueError(f"mask contains unknown capability bits: {mask:#x}")
        return cls(caps)

    def describe(self) -> str:
        """Render in the paper's table style.

        >>> CapabilitySet.of("CapSetuid", "CapChown").describe()
        'CapChown,CapSetuid'
        >>> CapabilitySet.empty().describe()
        '(empty)'
        """
        if not self._caps:
            return "(empty)"
        return ",".join(cap.camel_name for cap in sorted(self._caps))

    def __repr__(self) -> str:
        inner = ", ".join(cap.camel_name for cap in sorted(self._caps))
        return f"CapabilitySet({{{inner}}})"


_EMPTY = CapabilitySet()
_FULL = CapabilitySet(list(Capability))


class CapabilityState:
    """The effective/permitted/inheritable triple of one Linux task.

    Instances are immutable; each mutation returns a new state.  The class
    enforces the kernel invariants from capability(7):

    * effective ⊆ permitted, always;
    * permitted can only shrink (a task cannot grant itself capabilities).
    """

    __slots__ = ("effective", "permitted", "inheritable")

    def __init__(
        self,
        effective: CapabilitySet = _EMPTY,
        permitted: CapabilitySet = _EMPTY,
        inheritable: CapabilitySet = _EMPTY,
    ) -> None:
        if not effective.issubset(permitted):
            raise ValueError(
                "effective set must be a subset of the permitted set: "
                f"effective={effective.describe()} permitted={permitted.describe()}"
            )
        self.effective = effective
        self.permitted = permitted
        self.inheritable = inheritable

    @classmethod
    def for_root(cls) -> "CapabilityState":
        """The state of a root-owned task: everything permitted and effective."""
        return cls(effective=_FULL, permitted=_FULL, inheritable=_EMPTY)

    @classmethod
    def with_permitted(cls, permitted: CapabilitySet) -> "CapabilityState":
        """A task that starts with ``permitted`` available but nothing raised.

        This matches the paper's experimental setup (§VII-B): programs are
        installed "so that they start up with the correct permitted set"
        and must ``priv_raise`` capabilities before privileged operations.
        """
        return cls(effective=_EMPTY, permitted=permitted, inheritable=_EMPTY)

    # -- the AutoPriv runtime operations ------------------------------------

    def raise_caps(self, caps: CapabilitySet) -> "CapabilityState":
        """``priv_raise``: enable ``caps`` in the effective set.

        :raises PermissionError: if any capability is not permitted — the
            kernel refuses ``capset`` calls that would make the effective
            set exceed the permitted set.
        """
        if not caps.issubset(self.permitted):
            missing = caps - self.permitted
            raise PermissionError(
                f"cannot raise non-permitted capabilities: {missing.describe()}"
            )
        return CapabilityState(self.effective | caps, self.permitted, self.inheritable)

    def lower_caps(self, caps: CapabilitySet) -> "CapabilityState":
        """``priv_lower``: disable ``caps`` in the effective set only."""
        return CapabilityState(self.effective - caps, self.permitted, self.inheritable)

    def remove_caps(self, caps: CapabilitySet) -> "CapabilityState":
        """``priv_remove``: disable ``caps`` in effective *and* permitted.

        A removed capability can never be re-acquired by this task (until
        ``execve``, which we do not model); this is the operation AutoPriv
        inserts at privilege-death points.
        """
        return CapabilityState(
            self.effective - caps, self.permitted - caps, self.inheritable
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CapabilityState):
            return (
                self.effective == other.effective
                and self.permitted == other.permitted
                and self.inheritable == other.inheritable
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.effective, self.permitted, self.inheritable))

    def __repr__(self) -> str:
        return (
            f"CapabilityState(effective={self.effective.describe()}, "
            f"permitted={self.permitted.describe()}, "
            f"inheritable={self.inheritable.describe()})"
        )
