"""Process credentials: the user/group identity of a Linux task.

Each Linux task carries three user ids and three group ids
(credentials(7)):

* *real* (ruid/rgid) — who started the process;
* *effective* (euid/egid) — whom the kernel's permission checks consult;
* *saved* (suid/sgid) — a stash an unprivileged process may switch its
  effective id back to.

ChronoPriv records all six ids because the DAC permission checks ROSA
models depend on them (§V-A).  The paper's refactoring lesson "change
credentials early" (§VII-E) works precisely because an unprivileged
``setresuid`` may permute the current real/effective/saved values without
any capability.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable, Tuple

#: Conventional uid of the superuser.
ROOT_UID = 0
#: Conventional gid of the root group.
ROOT_GID = 0


@dataclasses.dataclass(frozen=True)
class Credentials:
    """The immutable credential tuple of one task.

    ``supplementary`` is the supplementary group list set by
    ``setgroups(2)``; DAC group checks consult the effective gid *and* the
    supplementary groups.
    """

    ruid: int
    euid: int
    suid: int
    rgid: int
    egid: int
    sgid: int
    supplementary: FrozenSet[int] = frozenset()

    @classmethod
    def for_user(
        cls, uid: int, gid: int, supplementary: Iterable[int] = ()
    ) -> "Credentials":
        """Credentials of a freshly logged-in user: all three ids equal."""
        return cls(uid, uid, uid, gid, gid, gid, frozenset(supplementary))

    @classmethod
    def for_root(cls) -> "Credentials":
        """Credentials of a root-owned task."""
        return cls.for_user(ROOT_UID, ROOT_GID)

    # -- renderings matching the paper's tables -----------------------------

    @property
    def uid_triple(self) -> Tuple[int, int, int]:
        """(ruid, euid, suid) — the order of the paper's *UID* column."""
        return (self.ruid, self.euid, self.suid)

    @property
    def gid_triple(self) -> Tuple[int, int, int]:
        """(rgid, egid, sgid) — the order of the paper's *GID* column."""
        return (self.rgid, self.egid, self.sgid)

    def describe_uids(self) -> str:
        return ",".join(str(uid) for uid in self.uid_triple)

    def describe_gids(self) -> str:
        return ",".join(str(gid) for gid in self.gid_triple)

    # -- queries used by permission checks ----------------------------------

    def groups(self) -> FrozenSet[int]:
        """All groups DAC checks match against: egid plus supplementary."""
        return self.supplementary | {self.egid}

    def may_set_uid_unprivileged(self, uid: int) -> bool:
        """May ``setresuid`` assign ``uid`` to any id slot without CAP_SETUID?

        credentials(7): an unprivileged process may set each of its three
        uids to any of the *current* real, effective or saved uid.
        """
        return uid in (self.ruid, self.euid, self.suid)

    def may_set_gid_unprivileged(self, gid: int) -> bool:
        """The group analogue of :meth:`may_set_uid_unprivileged`."""
        return gid in (self.rgid, self.egid, self.sgid)

    # -- transitions ---------------------------------------------------------

    def replace(self, **changes) -> "Credentials":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    def with_all_uids(self, uid: int) -> "Credentials":
        return self.replace(ruid=uid, euid=uid, suid=uid)

    def with_all_gids(self, gid: int) -> "Credentials":
        return self.replace(rgid=gid, egid=gid, sgid=gid)

    def __str__(self) -> str:
        return f"uid={self.describe_uids()} gid={self.describe_gids()}"
