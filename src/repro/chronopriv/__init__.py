"""ChronoPriv: dynamic privilege-retention measurement.

The second stage of the PrivAnalyzer pipeline (§V-A).  Instruments a
program to count IR instructions per basic block, and attributes each
count to the current combination of permitted capability set and process
credentials.  The output — which privilege sets were live, with which
uids/gids, for how many instructions — feeds the ROSA model checker.
"""

from repro.chronopriv.instrument import (
    CHRONO_COUNT,
    InstrumentationReport,
    instrument_module,
)
from repro.chronopriv.report import ChronoPhase, ChronoReport
from repro.chronopriv.runtime import ChronoRecorder

__all__ = [
    "CHRONO_COUNT",
    "ChronoPhase",
    "ChronoRecorder",
    "ChronoReport",
    "InstrumentationReport",
    "instrument_module",
]
