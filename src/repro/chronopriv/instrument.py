"""ChronoPriv's instrumentation pass.

Adds, at the top of every basic block, a call to ``__chrono_count(n)``
where ``n`` is the number of IR instructions in the block — excluding
``unreachable`` (executing one terminates the program, §VI) and excluding
the counting call itself.  At runtime the ChronoPriv recorder attributes
each increment to the current (permitted set, credentials) phase.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.ir import Call, ConstantInt, I64, Module, Unreachable

#: Name of the counting hook the VM resolves.
CHRONO_COUNT = "__chrono_count"


@dataclasses.dataclass
class InstrumentationReport:
    """Static accounting of what the pass inserted."""

    blocks_instrumented: int
    instructions_counted: int
    #: Per-function counted instruction totals.
    per_function: Dict[str, int]


def instrument_module(module: Module) -> InstrumentationReport:
    """Insert counting calls in place; idempotent per module."""
    count_fn = module.declare(CHRONO_COUNT, I64, [I64])
    blocks = 0
    total = 0
    per_function: Dict[str, int] = {}
    for function in module.defined_functions():
        function_total = 0
        for block in function.blocks:
            if _already_instrumented(block):
                continue
            countable = sum(
                1
                for instruction in block.instructions
                if not isinstance(instruction, Unreachable)
            )
            if countable == 0:
                continue
            block.insert(0, Call(count_fn.ref(), [ConstantInt(I64, countable)], I64))
            blocks += 1
            total += countable
            function_total += countable
        per_function[function.name] = function_total
    return InstrumentationReport(
        blocks_instrumented=blocks,
        instructions_counted=total,
        per_function=per_function,
    )


def _already_instrumented(block) -> bool:
    if not block.instructions:
        return False
    first = block.instructions[0]
    if not isinstance(first, Call):
        return False
    target = first.direct_target
    return target is not None and target.name == CHRONO_COUNT
