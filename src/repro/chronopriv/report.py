"""ChronoPriv report structures and rendering."""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from repro.caps import CapabilitySet


@dataclasses.dataclass
class ChronoPhase:
    """One row of the paper's Table III: a privilege/credential phase."""

    name: str
    privileges: CapabilitySet
    uids: Tuple[int, int, int]
    gids: Tuple[int, int, int]
    instruction_count: int
    percent: float

    def describe_uids(self) -> str:
        return ",".join(str(uid) for uid in self.uids)

    def describe_gids(self) -> str:
        return ",".join(str(gid) for gid in self.gids)

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.privileges.describe()} "
            f"uid={self.describe_uids()} gid={self.describe_gids()} "
            f"{self.instruction_count:,} ({self.percent:.2f}%)"
        )


@dataclasses.dataclass
class ChronoReport:
    """All phases of one program run, in first-observation order."""

    program: str
    phases: List[ChronoPhase]
    total: int

    def phase(self, name: str) -> ChronoPhase:
        for phase in self.phases:
            if phase.name == name:
                return phase
        raise KeyError(f"no phase named {name!r}")

    def render(self) -> str:
        """A fixed-width text table in the paper's column layout."""
        header = (
            f"{'Name':<18} {'Privileges':<58} {'UID (r,e,s)':<16} "
            f"{'GID (r,e,s)':<16} {'Dyn. Instr. Count':>20}"
        )
        rows = [header, "-" * len(header)]
        for phase in self.phases:
            rows.append(
                f"{phase.name:<18} {phase.privileges.describe():<58} "
                f"{phase.describe_uids():<16} {phase.describe_gids():<16} "
                f"{phase.instruction_count:>12,} ({phase.percent:5.2f}%)"
            )
        rows.append(f"{'total':<18} {'':<58} {'':<16} {'':<16} {self.total:>12,}")
        return "\n".join(rows)
