"""ChronoPriv's runtime: attribute instruction counts to privilege phases.

A *phase* is one combination of permitted capability set and process
credentials — the key of the paper's Table III rows.  The recorder hooks
the VM's ``__chrono_count`` intrinsic and attributes each block's count
to the phase in effect when the block starts; phases are numbered in
first-observation order and re-entering a previously seen combination
accumulates into the same row, exactly as the paper groups its results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caps import CapabilitySet
from repro.chronopriv.report import ChronoPhase, ChronoReport
from repro.oskernel import Kernel, Process

PhaseKey = Tuple[CapabilitySet, Tuple[int, int, int], Tuple[int, int, int]]


class ChronoRecorder:
    """Accumulates per-phase dynamic instruction counts for one process."""

    def __init__(self, program_name: str, process: Process) -> None:
        self.program_name = program_name
        self.process = process
        self._counts: Dict[PhaseKey, int] = {}
        self._order: List[PhaseKey] = []
        self._current_key: Optional[PhaseKey] = None

    # -- wiring -------------------------------------------------------------------

    def attach(self, vm, kernel: Kernel) -> None:
        """Install the counting hook and the credential-change observer."""
        vm.register_intrinsic("__chrono_count", self._on_count)
        kernel.cred_observers.append(self._on_cred_change)
        self._refresh_key()

    def _on_cred_change(self, process: Process) -> None:
        if process.pid == self.process.pid:
            self._refresh_key()

    def _refresh_key(self) -> None:
        creds = self.process.creds
        self._current_key = (
            self.process.caps.permitted,
            creds.uid_triple,
            creds.gid_triple,
        )

    def _on_count(self, vm, args) -> int:
        key = self._current_key
        if key is None:  # pragma: no cover - attach() always sets it
            self._refresh_key()
            key = self._current_key
        if key not in self._counts:
            self._counts[key] = 0
            self._order.append(key)
        self._counts[key] += args[0]
        return 0

    # -- results --------------------------------------------------------------------

    def report(self) -> ChronoReport:
        """The phase table in first-seen order, with percentages."""
        total = sum(self._counts.values())
        phases = []
        for index, key in enumerate(self._order, start=1):
            permitted, uids, gids = key
            count = self._counts[key]
            phases.append(
                ChronoPhase(
                    name=f"{self.program_name}_priv{index}",
                    privileges=permitted,
                    uids=uids,
                    gids=gids,
                    instruction_count=count,
                    percent=(100.0 * count / total) if total else 0.0,
                )
            )
        return ChronoReport(program=self.program_name, phases=phases, total=total)
