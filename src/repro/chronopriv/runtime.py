"""ChronoPriv's runtime: attribute instruction counts to privilege phases.

A *phase* is one combination of permitted capability set and process
credentials — the key of the paper's Table III rows.  The recorder hooks
the VM's ``__chrono_count`` intrinsic and attributes each block's count
to the phase in effect when the block starts; phases are numbered in
first-observation order and re-entering a previously seen combination
accumulates into the same row, exactly as the paper groups its results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.caps import CapabilitySet
from repro.chronopriv.report import ChronoPhase, ChronoReport
from repro.oskernel import Kernel, Process

PhaseKey = Tuple[CapabilitySet, Tuple[int, int, int], Tuple[int, int, int]]


class ChronoRecorder:
    """Accumulates per-phase dynamic instruction counts for one process.

    The hot path is one increment per basic-block execution, so the
    recorder keeps a mutable one-element counter *cell* per phase and
    caches the cell for the phase currently in effect; a credential
    change invalidates the cached cell and the next count re-resolves
    it.  Rows materialise lazily on the first count attributed to a
    phase — entering a phase that never executes a block adds no row.
    """

    def __init__(self, program_name: str, process: Process) -> None:
        self.program_name = program_name
        self.process = process
        self._counts: Dict[PhaseKey, List[int]] = {}
        self._order: List[PhaseKey] = []
        self._current_key: Optional[PhaseKey] = None
        #: The current phase's counter cell, or ``None`` until the first
        #: count after a phase change resolves (and maybe creates) it.
        self._cell: Optional[List[int]] = None

    # -- wiring -------------------------------------------------------------------

    def attach(self, vm, kernel: Kernel) -> None:
        """Install the counting hooks and the credential-change observer.

        Both counting paths land here: the ``__chrono_count`` intrinsic
        (dispatch-loop interpreters) and the ``vm.chrono_count`` method
        the compiled core calls directly, overridden per-instance so
        spawned children — whose counter must stay inert until their own
        recorder attaches — are unaffected.
        """
        vm.register_intrinsic("__chrono_count", self._on_count)
        vm.chrono_count = self.count
        kernel.cred_observers.append(self._on_cred_change)
        self._refresh_key()

    def _on_cred_change(self, process: Process) -> None:
        if process.pid == self.process.pid:
            self._refresh_key()

    def _refresh_key(self) -> None:
        creds = self.process.creds
        self._current_key = (
            self.process.caps.permitted,
            creds.uid_triple,
            creds.gid_triple,
        )
        self._cell = None

    def count(self, count: int) -> int:
        """Attribute ``count`` instructions to the current phase."""
        cell = self._cell
        if cell is None:
            key = self._current_key
            if key is None:  # pragma: no cover - attach() always sets it
                self._refresh_key()
                key = self._current_key
            cell = self._counts.get(key)
            if cell is None:
                cell = self._counts[key] = [0]
                self._order.append(key)
            self._cell = cell
        cell[0] += count
        return 0

    def _on_count(self, vm, args) -> int:
        return self.count(args[0])

    # -- results --------------------------------------------------------------------

    def report(self) -> ChronoReport:
        """The phase table in first-seen order, with percentages."""
        total = sum(cell[0] for cell in self._counts.values())
        phases = []
        for index, key in enumerate(self._order, start=1):
            permitted, uids, gids = key
            count = self._counts[key][0]
            phases.append(
                ChronoPhase(
                    name=f"{self.program_name}_priv{index}",
                    privileges=permitted,
                    uids=uids,
                    gids=gids,
                    instruction_count=count,
                    percent=(100.0 * count / total) if total else 0.0,
                )
            )
        return ChronoReport(program=self.program_name, phases=phases, total=total)
