"""The ``privanalyzer`` command-line interface.

Subcommands:

* ``list`` — the built-in program models (Table II + refactors);
* ``analyze <program>`` — run the full pipeline on a built-in model or a
  ``.privc`` source file, printing the Table-III-style report (or
  Markdown/JSON/CSV with ``--format``);
* ``hints <program>`` — refactoring guidance modelled on §VII-D/E;
* ``rosa <file>...`` — check Maude-style query files (Figure 2/4
  syntax); ``--jobs N`` fans distinct queries over a process pool whose
  workers report back telemetry capsules (merged spans, metrics,
  profiles — one Perfetto track per worker);
* ``fuzz`` — run the conformance testkit's seeded differential/metamorphic
  campaign; failures shrink to replayable repro files (docs/TESTING.md);
* ``profile`` — run a program or query under the hot-path profiler and
  print per-rule / per-reduction-phase / per-opcode cost attribution
  (``--out DIR`` writes flamegraph + JSON artifacts);
* ``corpus build`` — materialize a seeded, reproducible scenario corpus
  (family-conditioned generated programs + exemplars + the paper's
  built-ins) into a directory (docs/CORPUS.md);
* ``peers`` — sweep a corpus into privilege profiles (content-addressed
  cache, ``--jobs`` pooling) and report peer-group outliers: "which
  programs hold CAP_SYS_ADMIN longer than their peers";
* ``table3`` / ``table5`` — regenerate the paper's headline tables.

Observability (see ``docs/OBSERVABILITY.md``): ``--trace`` records
per-stage spans (``--trace-out`` writes them as JSONL, ``--perfetto-out``
as Chrome trace-event JSON), ``--profile`` prints a per-stage timing
table to stderr, ``--metrics-out``/``--prometheus-out`` export the
metrics registry, ``--audit-out`` dumps the simulated kernel's syscall
audit trail, ``--progress`` renders live ROSA search progress, and
``--verbose``/``--quiet`` control stderr logging.  ``--profile-out DIR``
attaches the hot-path profiler (per rewrite rule, reduction phase, VM
opcode, engine worker — see docs/PERFORMANCE.md) and writes
``DIR/profile.collapsed`` (flamegraph.pl format) plus
``DIR/profile.json``.  ``--ledger DIR``
captures the whole run as a versioned artifact directory that
``privanalyzer diff OLD NEW`` compares structurally (verdict flips,
exposure drift, per-stage slow-downs, syscall-surface changes), exiting
non-zero on regression.

Examples::

    privanalyzer analyze passwd
    privanalyzer analyze passwd --trace --trace-out trace.jsonl --profile
    privanalyzer analyze passwd --ledger out/run1
    privanalyzer diff out/run1 out/run2
    privanalyzer analyze agent.privc --caps CapSetuid,CapDacReadSearch
    privanalyzer rosa examples/queries/figure2.rosa --progress
    privanalyzer rosa examples/queries/*.rosa --jobs 4 --perfetto-out fleet.json
    privanalyzer table5 --format markdown
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.core import report as report_mod
from repro.programs import PROGRAM_MODULES, spec_by_name
from repro.programs.common import ProgramSpec
from repro.telemetry import (
    Telemetry,
    metrics_to_jsonl,
    metrics_to_prometheus,
    render_profile,
    render_progress,
    render_span_tree,
    spans_to_jsonl,
    trace_event_json,
)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """The telemetry flags shared by analyze / rosa / table commands."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--trace", action="store_true",
        help="record pipeline spans; without --trace-out, print the span "
        "tree to stderr",
    )
    group.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write recorded spans as JSONL to PATH (implies --trace)",
    )
    group.add_argument(
        "--profile", action="store_true",
        help="print a per-stage timing table to stderr (implies --trace)",
    )
    group.add_argument(
        "--perfetto-out", metavar="PATH", default=None,
        help="write the trace as Chrome trace-event / Perfetto JSON to PATH "
        "(implies --trace; open it in ui.perfetto.dev)",
    )
    group.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write the metrics-registry snapshot as JSONL to PATH",
    )
    group.add_argument(
        "--prometheus-out", metavar="PATH", default=None,
        help="write the metrics registry in Prometheus text exposition "
        "format to PATH",
    )
    group.add_argument(
        "--audit-out", metavar="PATH", default=None,
        help="record every simulated-kernel syscall and write the audit "
        "trail as JSONL to PATH",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="render live ROSA search progress (states/s, depth, budget "
        "used) to stderr while long searches run",
    )
    group.add_argument(
        "--progress-interval", type=int, default=None, metavar="N",
        help="expansions between two progress samples (default 1024)",
    )
    group.add_argument(
        "--profile-out", metavar="DIR", default=None,
        help="attach the hot-path profiler and write DIR/profile.collapsed "
        "(flamegraph.pl format) and DIR/profile.json",
    )


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """ROSA query-engine flags shared by analyze / table commands."""
    group = parser.add_argument_group("query engine (see docs/PERFORMANCE.md)")
    group.add_argument(
        "--no-query-cache", action="store_true",
        help="disable ROSA result caching; every query searches from scratch",
    )
    group.add_argument(
        "--query-cache", metavar="PATH", default=None,
        help="persist the ROSA result cache as JSON at PATH across runs",
    )
    group.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run distinct ROSA searches on a pool of N worker processes "
        "(default: serial, which is fastest at repro-scale budgets)",
    )
    group.add_argument(
        "--no-reduction", action="store_true",
        help="disable symmetry + partial-order state-space reduction; "
        "searches explore the raw state space (verdicts are identical)",
    )
    group.add_argument(
        "--verdict-store", metavar="DIR", default=None,
        help="back the query engine with the fleet-wide shared verdict "
        "store at DIR: distinct searches run once across every process "
        "sharing the directory (see docs/SERVING.md)",
    )
    _add_capsules_flag(group)


def _add_capsules_flag(target) -> None:
    target.add_argument(
        "--no-capsules", action="store_true",
        help="pool workers search dark instead of returning telemetry "
        "capsules (merged worker spans/metrics/profiles; verdicts are "
        "identical either way)",
    )


def _engine_kwargs(args) -> dict:
    """PrivAnalyzer keyword arguments derived from the engine flags."""
    from repro.rosa.engine import ParallelPolicy

    kwargs: dict = {
        "use_query_cache": not getattr(args, "no_query_cache", False),
        "query_cache_path": getattr(args, "query_cache", None),
        "reduction": not getattr(args, "no_reduction", False),
        "capsules": not getattr(args, "no_capsules", False),
        "verdict_store": getattr(args, "verdict_store", None),
    }
    jobs = getattr(args, "jobs", None)
    if jobs is not None:
        kwargs["parallel"] = ParallelPolicy(
            mode="process" if jobs > 1 else "serial", max_workers=jobs
        )
    return kwargs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="privanalyzer",
        description="Measure how effectively a program uses Linux privileges "
        "(PrivAnalyzer, DSN 2019 reproduction).",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "-v", "--verbose", action="store_true",
        help="log pipeline progress to stderr (DEBUG level)",
    )
    verbosity.add_argument(
        "-q", "--quiet", action="store_true",
        help="only log errors to stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in program models")

    analyze = sub.add_parser("analyze", help="run the full pipeline on a program")
    analyze.add_argument("program", help="built-in name or path to a .privc file")
    analyze.add_argument(
        "--caps",
        default=None,
        help="comma-separated permitted capability set (required for .privc files)",
    )
    analyze.add_argument("--arg", action="append", default=[], dest="argv",
                         help="program argument (repeatable)")
    analyze.add_argument("--stdin", action="append", default=[],
                         help="line typed at a prompt (repeatable)")
    analyze.add_argument("--uid", type=int, default=1000)
    analyze.add_argument("--gid", type=int, default=1000)
    analyze.add_argument(
        "--format", choices=("table", "markdown", "json", "csv"), default="table"
    )
    analyze.add_argument("--optimize", action="store_true",
                         help="run IR optimisation before the analyses")
    analyze.add_argument(
        "--callgraph", choices=("address-taken", "type-matched"),
        default="address-taken",
        help="indirect-call resolution for AutoPriv",
    )
    _add_observability_flags(analyze)
    _add_engine_flags(analyze)
    _add_ledger_flag(analyze)

    hints = sub.add_parser("hints", help="refactoring guidance (paper §VII-D/E)")
    hints.add_argument("program")
    hints.add_argument(
        "--blame", action="store_true",
        help="also run capability blame analysis per vulnerable phase",
    )

    rosa = sub.add_parser("rosa", help="check Maude-style ROSA query files")
    rosa.add_argument(
        "files", nargs="+", metavar="FILE",
        help="path(s) to queries in Figure 2/4 syntax",
    )
    rosa.add_argument("--max-states", type=int, default=200_000)
    rosa.add_argument("--max-seconds", type=float, default=60.0)
    rosa.add_argument(
        "--explain", action="store_true",
        help="narrate the witness step by step when vulnerable "
        "(incompatible with --jobs > 1)",
    )
    rosa.add_argument(
        "--no-reduction", action="store_true",
        help="search the raw state space without symmetry/partial-order "
        "reduction (verdicts are identical; states explored may grow)",
    )
    rosa.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="answer distinct queries on a pool of N worker processes; "
        "each worker returns a telemetry capsule merged into this "
        "session's trace/metrics/profile (one Perfetto track per worker)",
    )
    _add_capsules_flag(rosa)
    _add_observability_flags(rosa)
    _add_ledger_flag(rosa)

    diff = sub.add_parser(
        "diff",
        help="structurally compare two run ledgers; exit 1 on regression",
    )
    diff.add_argument("old", help="baseline ledger directory (from --ledger)")
    diff.add_argument("new", help="candidate ledger directory")
    diff.add_argument(
        "--tolerance", type=float, default=0.0, metavar="FRACTION",
        help="allowed exposure-fraction drift, 0-1 scale (default: exact)",
    )
    diff.add_argument(
        "--perf-tolerance", type=float, default=1.0, metavar="RATIO",
        help="allowed per-stage relative slow-down (1.0 = may take twice "
        "as long; default 1.0)",
    )
    diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings as a text report or a JSON document",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="run the conformance testkit's seeded fuzz campaign "
        "(see docs/TESTING.md)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; each (family, run) derives its own generator "
        "from it (default 0)",
    )
    fuzz.add_argument(
        "--runs", type=int, default=100,
        help="cases per oracle family (default 100)",
    )
    fuzz.add_argument(
        "--max-size", type=int, default=20, metavar="N",
        help="generated-case size budget: statements per program, "
        "queries per batch (default 20)",
    )
    fuzz.add_argument(
        "--oracle", action="append", default=[], metavar="FAMILY",
        help="oracle family to run (repeatable; default: the differential "
        "families cache, pools, vm, ledger; 'all' adds the metamorphic "
        "properties)",
    )
    fuzz.add_argument(
        "--artifacts", metavar="DIR", default="artifacts/fuzz",
        help="directory for shrunk repro files (default artifacts/fuzz)",
    )
    fuzz.add_argument(
        "--inject", metavar="FAULT", default=None,
        help="install a named artificial bug for the whole campaign, to "
        "demonstrate the oracles catch it (see repro.testkit.faults)",
    )
    fuzz.add_argument(
        "--replay", metavar="FILE", default=None,
        help="re-run one repro file instead of a campaign; exits 1 while "
        "the failure still reproduces",
    )

    profile = sub.add_parser(
        "profile",
        help="run a program or query under the hot-path profiler "
        "(per rule, reduction phase, VM opcode; see docs/PERFORMANCE.md)",
    )
    profile.add_argument(
        "target", help="built-in program name or path to a .rosa query file"
    )
    profile.add_argument(
        "--out", metavar="DIR", default=None,
        help="also write DIR/profile.collapsed (flamegraph.pl format) and "
        "DIR/profile.json",
    )
    profile.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="attacker syscall-message repeat for program targets — the "
        "bench's repeatN workloads (default 1)",
    )
    profile.add_argument("--max-states", type=int, default=200_000)
    profile.add_argument("--max-seconds", type=float, default=60.0)
    profile.add_argument(
        "--no-reduction", action="store_true",
        help="profile the raw search without symmetry/partial-order reduction",
    )
    profile.add_argument(
        "--limit", type=int, default=30, metavar="N",
        help="rows in the printed cost table (default 30)",
    )

    corpus = sub.add_parser(
        "corpus",
        help="build and inspect scenario corpora (see docs/CORPUS.md)",
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    corpus_build = corpus_sub.add_parser(
        "build", help="materialize a seeded, reproducible corpus directory"
    )
    corpus_build.add_argument(
        "--out", metavar="DIR", required=True,
        help="target directory (manifest.json + programs/*.privc)",
    )
    corpus_build.add_argument(
        "--seed", type=int, default=0,
        help="corpus seed; same seed, same corpus, byte for byte (default 0)",
    )
    corpus_build.add_argument(
        "--size", type=int, default=200,
        help="number of generated programs; built-ins and exemplars ride "
        "on top (default 200)",
    )
    corpus_build.add_argument(
        "--families", default=None, metavar="LIST",
        help="comma-separated family subset (default: all five; see "
        "docs/CORPUS.md)",
    )
    corpus_build.add_argument(
        "--violators", type=int, default=5, metavar="N",
        help="generated least-privilege violators to plant, spread evenly "
        "(default 5)",
    )
    corpus_build.add_argument(
        "--no-exemplars", action="store_true",
        help="leave out the hand-modeled exemplar programs",
    )
    corpus_build.add_argument(
        "--no-builtins", action="store_true",
        help="leave out the paper's built-in programs",
    )

    peers = sub.add_parser(
        "peers",
        help="peer-group least-privilege outlier report over a corpus "
        "(see docs/CORPUS.md)",
    )
    peers.add_argument(
        "corpus", help="materialized corpus directory (from `corpus build`)"
    )
    peers.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed profile cache; a warm sweep over an "
        "unchanged corpus profiles nothing",
    )
    peers.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="profile cache misses on N pool workers (default 1: serial)",
    )
    peers.add_argument(
        "--pool", choices=("thread", "process"), default="thread",
        help="worker pool flavour for --jobs > 1 (default thread)",
    )
    peers.add_argument(
        "--clusters", type=int, default=None, metavar="K",
        help="peer groups to form (default: about sqrt(n/2))",
    )
    peers.add_argument(
        "--seed", type=int, default=0,
        help="clustering seed; same seed + corpus, same report (default 0)",
    )
    peers.add_argument(
        "--cap", default=None, metavar="CAP",
        help="restrict capability findings to one capability, e.g. "
        "CapSysAdmin",
    )
    peers.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="outlier rows in the text report (default 10)",
    )
    peers.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report as readable text or a JSON document",
    )
    peers.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the JSON report to PATH (whatever --format says)",
    )
    peers.add_argument("--max-states", type=int, default=20_000)
    peers.add_argument("--max-seconds", type=float, default=10.0)
    peers.add_argument(
        "--verdict-store", metavar="DIR", default=None,
        help="shared verdict store backing every sweep worker's query "
        "engine (fleet-wide compute-once; see docs/SERVING.md)",
    )
    _add_observability_flags(peers)

    serve = sub.add_parser(
        "serve",
        help="run the analysis-as-a-service control plane "
        "(see docs/SERVING.md)",
    )
    serve.add_argument(
        "--store", required=True, metavar="DIR",
        help="shared verdict store directory (created if missing); every "
        "verdict the fleet computes is published here exactly once",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="TCP port; 0 (the default) picks a free one — read it back "
        "with --port-file",
    )
    serve.add_argument(
        "--port-file", metavar="PATH", default=None,
        help="write the bound host:port to PATH once listening (for "
        "scripts starting the server with --port 0)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard each request's distinct cold searches over N process-"
        "pool workers (default 1: serial per request; concurrency across "
        "requests is always on)",
    )

    for table in ("table3", "table5"):
        table_parser = sub.add_parser(table, help=f"regenerate the paper's {table}")
        table_parser.add_argument(
            "--format", choices=("table", "markdown", "csv"), default="table"
        )
        _add_observability_flags(table_parser)
        _add_engine_flags(table_parser)

    return parser


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger", metavar="DIR", default=None,
        help="capture this run as a versioned artifact directory (manifest, "
        "spans, metrics, audit trail, exposure table, verdicts) for "
        "`privanalyzer diff`",
    )


def _telemetry_from_args(args) -> Optional[Telemetry]:
    """Build the telemetry bundle the flags ask for, or ``None``."""
    want_ledger = getattr(args, "ledger", None) is not None
    want_trace = bool(
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "profile", False)
        or getattr(args, "perfetto_out", None)
        or getattr(args, "metrics_out", None)
        or getattr(args, "prometheus_out", None)
        or want_ledger
    )
    want_audit = getattr(args, "audit_out", None) is not None or want_ledger
    if not want_trace and not want_audit:
        return None
    return Telemetry.enabled(audit=want_audit)


def _progress_from_args(args):
    """The stderr progress callback ``--progress`` asks for, or ``None``."""
    if not getattr(args, "progress", False):
        return None

    def emit(sample) -> None:
        print(render_progress(sample, label="rosa"), file=sys.stderr)

    return emit


def _progress_interval_from_args(args) -> int:
    from repro.rewriting import PROGRESS_INTERVAL

    interval = getattr(args, "progress_interval", None)
    return interval if interval and interval > 0 else PROGRESS_INTERVAL


def _profiler_from_args(args):
    """A live :class:`~repro.telemetry.Profiler` when ``--profile-out`` asks."""
    if getattr(args, "profile_out", None) is None:
        return None
    from repro.telemetry import Profiler

    return Profiler()


def _export_profile(args, profiler) -> None:
    """Write the profile artifacts ``--profile-out`` asked for."""
    directory = getattr(args, "profile_out", None)
    if directory is None or profiler is None:
        return
    _write_profile_artifacts(directory, profiler)
    print(f"profile written to {directory}", file=sys.stderr)


def _write_profile_artifacts(directory, profiler) -> None:
    """``profile.collapsed`` + ``profile.json`` under ``directory``."""
    target = Path(directory)
    try:
        target.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise SystemExit(
            f"privanalyzer: cannot create {directory}: {error.strerror}"
        )
    collapsed = profiler.to_collapsed()
    _write_or_die(str(target / "profile.collapsed"), collapsed + "\n" if collapsed else "")
    _write_or_die(str(target / "profile.json"), profiler.to_json() + "\n")


def _manifest_args(args) -> dict:
    """The parsed CLI arguments, JSON-safe, for the ledger manifest."""
    safe = {}
    for key, value in sorted(vars(args).items()):
        if value is None or isinstance(value, (bool, int, float, str)):
            safe[key] = value
        elif isinstance(value, list):
            safe[key] = [str(item) for item in value]
    return safe


def _export_telemetry(args, telemetry: Optional[Telemetry]) -> None:
    """Honour --trace-out / --trace / --profile / --audit-out after a command."""
    if telemetry is None:
        return
    if telemetry.audit is not None:
        # kernel.audit.dropped refreshes on append only; republish at
        # export time so the written snapshots carry the final figure.
        telemetry.audit.publish_dropped()
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        jsonl = spans_to_jsonl(telemetry.tracer)
        _write_or_die(trace_out, jsonl + "\n" if jsonl else "")
    elif getattr(args, "trace", False):
        print(render_span_tree(telemetry.tracer), file=sys.stderr)
    if getattr(args, "profile", False):
        print(render_profile(telemetry.tracer), file=sys.stderr)
    perfetto_out = getattr(args, "perfetto_out", None)
    if perfetto_out:
        _write_or_die(
            perfetto_out,
            trace_event_json(telemetry.tracer, telemetry.metrics) + "\n",
        )
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        jsonl = metrics_to_jsonl(telemetry.metrics)
        _write_or_die(metrics_out, jsonl + "\n" if jsonl else "")
    prometheus_out = getattr(args, "prometheus_out", None)
    if prometheus_out:
        _write_or_die(prometheus_out, metrics_to_prometheus(telemetry.metrics))
    audit_out = getattr(args, "audit_out", None)
    if audit_out and telemetry.audit is not None:
        jsonl = telemetry.audit.to_jsonl()
        _write_or_die(audit_out, jsonl + "\n" if jsonl else "")


def _write_or_die(path: str, text: str) -> None:
    try:
        Path(path).write_text(text)
    except OSError as error:
        raise SystemExit(f"privanalyzer: cannot write {path}: {error.strerror}")


def _configure_logging(args) -> None:
    """Wire the ``repro`` root logger to stderr per --verbose/--quiet."""
    level = logging.WARNING
    if getattr(args, "verbose", False):
        level = logging.DEBUG
    elif getattr(args, "quiet", False):
        level = logging.ERROR
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    # Re-bind to the *current* stderr on every invocation (tests and
    # embedders may have swapped it since the last run).
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_cli_handler", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(sys.stderr)
    handler._repro_cli_handler = True
    handler.setFormatter(logging.Formatter("%(name)s: %(message)s"))
    logger.addHandler(handler)


def _resolve_spec(args) -> ProgramSpec:
    if args.program in PROGRAM_MODULES:
        return spec_by_name(args.program)
    path = Path(args.program)
    if not path.exists():
        raise SystemExit(
            f"privanalyzer: {args.program!r} is neither a built-in program "
            f"({', '.join(sorted(PROGRAM_MODULES))}) nor a file"
        )
    if args.caps is None:
        raise SystemExit("privanalyzer: --caps is required for .privc files")
    return ProgramSpec(
        name=path.stem,
        description=f"user program from {path}",
        source=path.read_text(),
        permitted=CapabilitySet.parse(args.caps),
        uid=args.uid,
        gid=args.gid,
        argv=tuple(args.argv),
        stdin=tuple(args.stdin),
    )


def _cmd_list(args, out) -> int:
    print(f"{'name':<12} {'permitted set':<60} description", file=out)
    for name in sorted(PROGRAM_MODULES):
        spec = spec_by_name(name)
        print(f"{name:<12} {spec.permitted.describe():<60} {spec.description}", file=out)
    return 0


def _capture_ledger(args, telemetry: Optional[Telemetry], capture) -> None:
    """Write the run ledger ``--ledger`` asked for (``capture(directory)``)."""
    directory = getattr(args, "ledger", None)
    if not directory:
        return
    if telemetry is None:  # pragma: no cover - --ledger implies telemetry
        raise SystemExit("privanalyzer: --ledger needs telemetry enabled")
    try:
        capture(directory)
    except OSError as error:
        raise SystemExit(
            f"privanalyzer: cannot write ledger {directory}: {error.strerror}"
        )
    print(f"run ledger written to {directory}", file=sys.stderr)


def _cmd_analyze(args, out, telemetry: Optional[Telemetry] = None) -> int:
    from repro.core import ledger as ledger_mod

    spec = _resolve_spec(args)
    profiler = _profiler_from_args(args)
    analyzer = PrivAnalyzer(
        indirect_targets_filter=args.callgraph, optimize=args.optimize,
        telemetry=telemetry, progress=_progress_from_args(args),
        progress_interval=getattr(args, "progress_interval", None),
        profiler=profiler,
        **_engine_kwargs(args),
    )
    analysis = analyzer.analyze(spec)
    _export_profile(args, profiler)
    _capture_ledger(
        args, telemetry,
        lambda directory: ledger_mod.capture_analysis(
            directory, analysis, telemetry,
            cache_stats=analyzer.engine.cache_stats(),
            cli_args=_manifest_args(args),
            profiler=profiler,
            fleet=analyzer.engine.fleet_stats() or None,
        ),
    )
    if args.format == "table":
        print(analysis.render_table(), file=out)
        print(file=out)
        print(report_mod.summary_table([analysis]), file=out)
    elif args.format == "markdown":
        print(report_mod.to_markdown(analysis), file=out)
    elif args.format == "json":
        print(report_mod.to_json(analysis), file=out)
    else:
        print(report_mod.to_csv([analysis]), end="", file=out)
    return 0


def _cmd_hints(args, out) -> int:
    spec = spec_by_name(args.program) if args.program in PROGRAM_MODULES else None
    if spec is None:
        raise SystemExit(f"privanalyzer: unknown program {args.program!r}")
    analysis = PrivAnalyzer().analyze(spec)
    hints = report_mod.refactoring_hints(analysis)
    if not hints:
        print(f"{spec.name}: no refactoring hints — privilege use looks tight.", file=out)
    else:
        print(f"Refactoring hints for {spec.name}:", file=out)
        for hint in hints:
            print(f"  - {hint}", file=out)
    if args.blame:
        from repro.core.blame import render_blame

        print(file=out)
        print(render_blame(analysis), file=out)
    return 0


def _cmd_rosa(args, out, telemetry: Optional[Telemetry] = None) -> int:
    from repro.core import ledger as ledger_mod
    from repro.rewriting import SearchBudget
    from repro.rosa import check, explain_witness
    from repro.rosa.dsl import DslQuerySpec, parse_query
    from repro.telemetry.tracing import NULL_TRACER

    jobs = args.jobs or 1
    if jobs > 1 and args.explain:
        raise SystemExit(
            "privanalyzer: --explain needs the serial searcher "
            "(witness states do not cross the pool); drop --jobs"
        )
    parsed = []
    for name in args.files:
        text = Path(name).read_text()
        parsed.append((parse_query(text, name=Path(name).stem), text))
    budget = SearchBudget(max_states=args.max_states, max_seconds=args.max_seconds)
    profiler = _profiler_from_args(args)
    fleet = None
    if jobs > 1:
        from repro.rosa.engine import ParallelPolicy, QueryEngine, QueryRequest

        engine = QueryEngine(
            budget=budget,
            cache=None,
            parallel=ParallelPolicy(mode="process", max_workers=jobs),
            telemetry=telemetry,
            progress=_progress_from_args(args),
            progress_interval=_progress_interval_from_args(args),
            reduction=not args.no_reduction,
            profiler=profiler,
            capsules=not args.no_capsules,
        )
        reports = engine.run_queries(
            [
                QueryRequest(query, spec=DslQuerySpec(text, query.name))
                for query, text in parsed
            ]
        )
        fleet = engine.fleet_stats() or None
    else:
        tracer = telemetry.tracer if telemetry is not None else NULL_TRACER
        reports = [
            check(
                query, budget, track_states=args.explain, tracer=tracer,
                progress=_progress_from_args(args),
                progress_interval=_progress_interval_from_args(args),
                reduction=not args.no_reduction,
                profiler=profiler,
            )
            for query, _ in parsed
        ]
    _export_profile(args, profiler)
    _capture_ledger(
        args, telemetry,
        lambda directory: ledger_mod.capture_rosa(
            directory, reports if len(reports) > 1 else reports[0], telemetry,
            cli_args=_manifest_args(args), profiler=profiler, fleet=fleet,
        ),
    )
    for report in reports:
        print(report.summary(), file=out)
        # ✗ and ⊙ verdicts come with their cost: an unreachable/undecided
        # answer that took the whole budget reads very differently from one
        # that exhausted a tiny state space (paper §VIII).
        print(report.cost_line(), file=out)
        if args.explain and report.vulnerable:
            print(explain_witness(report), file=out)
    return 0 if not any(report.vulnerable for report in reports) else 1


def _cmd_diff(args, out) -> int:
    from repro.core import ledger as ledger_mod

    ledgers = []
    for directory in (args.old, args.new):
        try:
            ledgers.append(ledger_mod.RunLedger.load(directory))
        except FileNotFoundError as error:
            raise SystemExit(f"privanalyzer: {error}")
        except (OSError, ValueError) as error:
            raise SystemExit(f"privanalyzer: unreadable ledger {directory}: {error}")
    diff = ledger_mod.diff_ledgers(
        ledgers[0], ledgers[1],
        tolerance=args.tolerance, perf_tolerance=args.perf_tolerance,
    )
    print(diff.to_json() if args.format == "json" else diff.render(), file=out)
    return diff.exit_code


def _cmd_fuzz(args, out) -> int:
    from repro.testkit.faults import FAULTS
    from repro.testkit.fuzz import replay_repro, run_campaign
    from repro.testkit.oracles import ALL_FAMILIES, DEFAULT_FAMILIES

    if args.inject is not None and args.inject not in FAULTS:
        raise SystemExit(
            f"privanalyzer: unknown fault {args.inject!r} "
            f"(known: {', '.join(sorted(FAULTS))})"
        )
    if args.replay is not None:
        try:
            result = replay_repro(args.replay)
        except FileNotFoundError:
            raise SystemExit(f"privanalyzer: no such repro file: {args.replay}")
        except ValueError as error:
            raise SystemExit(f"privanalyzer: {error}")
        if result.failed:
            print(f"replay: still failing — {result.details}", file=out)
            return 1
        print("replay: the failure no longer reproduces", file=out)
        return 0

    families = list(dict.fromkeys(args.oracle)) or list(DEFAULT_FAMILIES)
    if "all" in families:
        families = list(ALL_FAMILIES)
    unknown = [name for name in families if name not in ALL_FAMILIES]
    if unknown:
        raise SystemExit(
            f"privanalyzer: unknown oracle famil"
            f"{'y' if len(unknown) == 1 else 'ies'} {', '.join(unknown)} "
            f"(known: {', '.join(ALL_FAMILIES)})"
        )
    if args.runs <= 0:
        raise SystemExit("privanalyzer: --runs must be positive")
    result = run_campaign(
        seed=args.seed,
        runs=args.runs,
        max_size=args.max_size,
        families=families,
        artifacts_dir=args.artifacts,
        inject=args.inject,
        log=lambda message: print(message, file=out),
    )
    executed = result.executed
    print(
        f"fuzz: {executed} case(s) across {len(families)} famil"
        f"{'y' if len(families) == 1 else 'ies'}, seed {args.seed}: "
        + (
            "all passed"
            if result.passed
            else f"{len(result.failures)} failure(s)"
        )
        + (f" ({result.skipped} skipped)" if result.skipped else ""),
        file=out,
    )
    for failure in result.failures:
        print(
            f"  {failure.family} run {failure.run}: "
            f"replay with `privanalyzer fuzz --replay {failure.repro_path}`",
            file=out,
        )
    return 0 if result.passed else 1


def _cmd_profile(args, out) -> int:
    from repro.rewriting import SearchBudget
    from repro.telemetry import Profiler

    profiler = Profiler()
    budget = SearchBudget(
        max_states=args.max_states, max_seconds=args.max_seconds
    )
    if args.target in PROGRAM_MODULES:
        analyzer = PrivAnalyzer(
            budget=budget,
            message_repeat=args.repeat,
            reduction=not args.no_reduction,
            profiler=profiler,
        )
        analyzer.analyze(spec_by_name(args.target))
    else:
        path = Path(args.target)
        if not path.exists():
            raise SystemExit(
                f"privanalyzer: {args.target!r} is neither a built-in program "
                f"({', '.join(sorted(PROGRAM_MODULES))}) nor a query file"
            )
        from repro.rosa import check
        from repro.rosa.dsl import parse_query

        query = parse_query(path.read_text(), name=path.stem)
        check(
            query, budget,
            reduction=not args.no_reduction, profiler=profiler,
        )
    print(profiler.render(limit=args.limit), file=out)
    print(file=out)
    roots = profiler.to_report()["roots"]
    for root in sorted(roots):
        info = roots[root]
        print(
            f"{root}: {info['seconds'] * 1000:.1f} ms total, "
            f"{info['attributed_fraction'] * 100:.1f}% attributed to named frames",
            file=out,
        )
    if args.out:
        _write_profile_artifacts(args.out, profiler)
        print(f"profile written to {args.out}", file=sys.stderr)
    return 0


def _cmd_corpus(args, out) -> int:
    from repro.corpus import CorpusSpec, generate_corpus, materialize_corpus
    from repro.testkit.generators import PROGRAM_FAMILIES

    families = (
        tuple(name.strip() for name in args.families.split(",") if name.strip())
        if args.families
        else PROGRAM_FAMILIES
    )
    spec = CorpusSpec(
        seed=args.seed,
        size=args.size,
        families=families,
        violators=args.violators,
        include_exemplars=not args.no_exemplars,
        include_builtins=not args.no_builtins,
    )
    try:
        entries = generate_corpus(spec)
    except ValueError as error:
        raise SystemExit(f"privanalyzer: {error}")
    try:
        materialize_corpus(entries, args.out, spec=spec)
    except OSError as error:
        raise SystemExit(
            f"privanalyzer: cannot write corpus {args.out}: {error.strerror}"
        )
    violators = sum(1 for entry in entries if entry.violator)
    generated = sum(1 for entry in entries if entry.kind == "generated")
    print(
        f"corpus: {len(entries)} programs ({generated} generated, "
        f"{len(entries) - generated} modeled; {violators} planted "
        f"violator(s)) written to {args.out}",
        file=out,
    )
    return 0


def _cmd_peers(args, out, telemetry: Optional[Telemetry] = None) -> int:
    from repro.corpus import ProfileStore, load_corpus, peer_analysis, sweep_corpus
    from repro.rewriting import SearchBudget

    try:
        entries = load_corpus(args.corpus)
    except (FileNotFoundError, ValueError) as error:
        raise SystemExit(f"privanalyzer: {error}")
    store = ProfileStore(args.store) if args.store else None
    jobs = args.jobs or 1
    profiles = sweep_corpus(
        entries,
        store=store,
        jobs=jobs,
        mode="serial" if jobs <= 1 else args.pool,
        budget=SearchBudget(
            max_states=args.max_states, max_seconds=args.max_seconds
        ),
        telemetry=telemetry,
        verdict_store=args.verdict_store,
    )
    report = peer_analysis(
        profiles,
        k=args.clusters,
        seed=args.seed,
        capability=args.cap,
        telemetry=telemetry,
    )
    if args.out:
        _write_or_die(args.out, report.to_json())
    if args.format == "json":
        print(report.to_json(), end="", file=out)
    else:
        print(report.render_text(top=args.top), file=out)
        if store is not None:
            stats = store.stats()
            print(
                f"profile store: {stats['hits']} hit(s), "
                f"{stats['misses']} miss(es)",
                file=sys.stderr,
            )
    return 0


def _cmd_serve(args, out) -> int:
    from repro.serve.server import VerdictServer

    server = VerdictServer(
        args.store, host=args.host, port=args.port, jobs=args.jobs
    )
    try:
        server.run(port_file=args.port_file)
    except KeyboardInterrupt:
        pass
    stats = server.store.stats()
    print(
        f"serve: {stats['hits']} store hit(s), {stats['misses']} miss(es), "
        f"{stats['published']} published, {stats['rejected']} rejected, "
        f"{stats['entries']} entr{'y' if stats['entries'] == 1 else 'ies'} "
        f"on disk",
        file=sys.stderr,
    )
    return 0


def _cmd_table(args, out, names, telemetry: Optional[Telemetry] = None) -> int:
    # One analyzer for the whole table: its query cache carries verdicts
    # across programs that share (privileges, uids, gids, surface) tuples.
    profiler = _profiler_from_args(args)
    analyzer = PrivAnalyzer(
        telemetry=telemetry, progress=_progress_from_args(args),
        progress_interval=getattr(args, "progress_interval", None),
        profiler=profiler,
        **_engine_kwargs(args),
    )
    analyses = [analyzer.analyze(spec_by_name(name)) for name in names]
    _export_profile(args, profiler)
    if args.format == "markdown":
        for analysis in analyses:
            print(report_mod.to_markdown(analysis), file=out)
            print(file=out)
    elif args.format == "csv":
        print(report_mod.to_csv(analyses), end="", file=out)
    else:
        for analysis in analyses:
            print(analysis.render_table(), file=out)
            print(file=out)
        print(report_mod.summary_table(analyses), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    _configure_logging(args)
    telemetry = _telemetry_from_args(args)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "analyze":
            return _cmd_analyze(args, out, telemetry)
        if args.command == "hints":
            return _cmd_hints(args, out)
        if args.command == "rosa":
            return _cmd_rosa(args, out, telemetry)
        if args.command == "diff":
            return _cmd_diff(args, out)
        if args.command == "fuzz":
            return _cmd_fuzz(args, out)
        if args.command == "profile":
            return _cmd_profile(args, out)
        if args.command == "corpus":
            return _cmd_corpus(args, out)
        if args.command == "peers":
            return _cmd_peers(args, out, telemetry)
        if args.command == "serve":
            return _cmd_serve(args, out)
        if args.command == "table3":
            return _cmd_table(
                args, out, ("passwd", "ping", "sshd", "su", "thttpd"), telemetry
            )
        if args.command == "table5":
            return _cmd_table(args, out, ("passwdRef", "suRef"), telemetry)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, Unix style.
        return 0
    finally:
        _export_telemetry(args, telemetry)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
