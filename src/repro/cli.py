"""The ``privanalyzer`` command-line interface.

Subcommands:

* ``list`` — the built-in program models (Table II + refactors);
* ``analyze <program>`` — run the full pipeline on a built-in model or a
  ``.privc`` source file, printing the Table-III-style report (or
  Markdown/JSON/CSV with ``--format``);
* ``hints <program>`` — refactoring guidance modelled on §VII-D/E;
* ``rosa <file>`` — check a Maude-style query file (Figure 2/4 syntax);
* ``table3`` / ``table5`` — regenerate the paper's headline tables.

Examples::

    privanalyzer analyze passwd
    privanalyzer analyze agent.privc --caps CapSetuid,CapDacReadSearch
    privanalyzer rosa examples/queries/figure2.rosa
    privanalyzer table5 --format markdown
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.caps import CapabilitySet
from repro.core import PrivAnalyzer
from repro.core import report as report_mod
from repro.programs import PROGRAM_MODULES, spec_by_name
from repro.programs.common import ProgramSpec


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="privanalyzer",
        description="Measure how effectively a program uses Linux privileges "
        "(PrivAnalyzer, DSN 2019 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the built-in program models")

    analyze = sub.add_parser("analyze", help="run the full pipeline on a program")
    analyze.add_argument("program", help="built-in name or path to a .privc file")
    analyze.add_argument(
        "--caps",
        default=None,
        help="comma-separated permitted capability set (required for .privc files)",
    )
    analyze.add_argument("--arg", action="append", default=[], dest="argv",
                         help="program argument (repeatable)")
    analyze.add_argument("--stdin", action="append", default=[],
                         help="line typed at a prompt (repeatable)")
    analyze.add_argument("--uid", type=int, default=1000)
    analyze.add_argument("--gid", type=int, default=1000)
    analyze.add_argument(
        "--format", choices=("table", "markdown", "json", "csv"), default="table"
    )
    analyze.add_argument("--optimize", action="store_true",
                         help="run IR optimisation before the analyses")
    analyze.add_argument(
        "--callgraph", choices=("address-taken", "type-matched"),
        default="address-taken",
        help="indirect-call resolution for AutoPriv",
    )

    hints = sub.add_parser("hints", help="refactoring guidance (paper §VII-D/E)")
    hints.add_argument("program")
    hints.add_argument(
        "--blame", action="store_true",
        help="also run capability blame analysis per vulnerable phase",
    )

    rosa = sub.add_parser("rosa", help="check a Maude-style ROSA query file")
    rosa.add_argument("file", help="path to a query in Figure 2/4 syntax")
    rosa.add_argument("--max-states", type=int, default=200_000)
    rosa.add_argument("--max-seconds", type=float, default=60.0)
    rosa.add_argument(
        "--explain", action="store_true",
        help="narrate the witness step by step when vulnerable",
    )

    for table in ("table3", "table5"):
        table_parser = sub.add_parser(table, help=f"regenerate the paper's {table}")
        table_parser.add_argument(
            "--format", choices=("table", "markdown", "csv"), default="table"
        )

    return parser


def _resolve_spec(args) -> ProgramSpec:
    if args.program in PROGRAM_MODULES:
        return spec_by_name(args.program)
    path = Path(args.program)
    if not path.exists():
        raise SystemExit(
            f"privanalyzer: {args.program!r} is neither a built-in program "
            f"({', '.join(sorted(PROGRAM_MODULES))}) nor a file"
        )
    if args.caps is None:
        raise SystemExit("privanalyzer: --caps is required for .privc files")
    return ProgramSpec(
        name=path.stem,
        description=f"user program from {path}",
        source=path.read_text(),
        permitted=CapabilitySet.parse(args.caps),
        uid=args.uid,
        gid=args.gid,
        argv=tuple(args.argv),
        stdin=tuple(args.stdin),
    )


def _cmd_list(args, out) -> int:
    print(f"{'name':<12} {'permitted set':<60} description", file=out)
    for name in sorted(PROGRAM_MODULES):
        spec = spec_by_name(name)
        print(f"{name:<12} {spec.permitted.describe():<60} {spec.description}", file=out)
    return 0


def _cmd_analyze(args, out) -> int:
    spec = _resolve_spec(args)
    analyzer = PrivAnalyzer(
        indirect_targets_filter=args.callgraph, optimize=args.optimize
    )
    analysis = analyzer.analyze(spec)
    if args.format == "table":
        print(analysis.render_table(), file=out)
        print(file=out)
        print(report_mod.summary_table([analysis]), file=out)
    elif args.format == "markdown":
        print(report_mod.to_markdown(analysis), file=out)
    elif args.format == "json":
        print(report_mod.to_json(analysis), file=out)
    else:
        print(report_mod.to_csv([analysis]), end="", file=out)
    return 0


def _cmd_hints(args, out) -> int:
    spec = spec_by_name(args.program) if args.program in PROGRAM_MODULES else None
    if spec is None:
        raise SystemExit(f"privanalyzer: unknown program {args.program!r}")
    analysis = PrivAnalyzer().analyze(spec)
    hints = report_mod.refactoring_hints(analysis)
    if not hints:
        print(f"{spec.name}: no refactoring hints — privilege use looks tight.", file=out)
    else:
        print(f"Refactoring hints for {spec.name}:", file=out)
        for hint in hints:
            print(f"  - {hint}", file=out)
    if args.blame:
        from repro.core.blame import render_blame

        print(file=out)
        print(render_blame(analysis), file=out)
    return 0


def _cmd_rosa(args, out) -> int:
    from repro.rewriting import SearchBudget
    from repro.rosa import check, explain_witness
    from repro.rosa.dsl import parse_query

    text = Path(args.file).read_text()
    query = parse_query(text, name=Path(args.file).stem)
    budget = SearchBudget(max_states=args.max_states, max_seconds=args.max_seconds)
    report = check(query, budget, track_states=args.explain)
    print(report.summary(), file=out)
    if args.explain and report.vulnerable:
        print(explain_witness(report), file=out)
    return 0 if not report.vulnerable else 1


def _cmd_table(args, out, names) -> int:
    analyzer = PrivAnalyzer()
    analyses = [analyzer.analyze(spec_by_name(name)) for name in names]
    if args.format == "markdown":
        for analysis in analyses:
            print(report_mod.to_markdown(analysis), file=out)
            print(file=out)
    elif args.format == "csv":
        print(report_mod.to_csv(analyses), end="", file=out)
    else:
        for analysis in analyses:
            print(analysis.render_table(), file=out)
            print(file=out)
        print(report_mod.summary_table(analyses), file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """Entry point; returns the process exit code."""
    out = out or sys.stdout
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args, out)
        if args.command == "analyze":
            return _cmd_analyze(args, out)
        if args.command == "hints":
            return _cmd_hints(args, out)
        if args.command == "rosa":
            return _cmd_rosa(args, out)
        if args.command == "table3":
            return _cmd_table(args, out, ("passwd", "ping", "sshd", "su", "thttpd"))
        if args.command == "table5":
            return _cmd_table(args, out, ("passwdRef", "suRef"))
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, Unix style.
        return 0
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
