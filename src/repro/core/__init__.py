"""PrivAnalyzer: the paper's primary contribution.

Composes AutoPriv (static privilege removal), ChronoPriv (dynamic
privilege-retention measurement) and ROSA (bounded model checking of
privilege-escalation attacks) into the tool of Figure 1, and provides
the four modeled attacks of Table I plus the risk metrics of Tables
III and V.
"""

from repro.core.attacks import (
    ALL_ATTACKS,
    ATTACKS_BY_ID,
    Attack,
    BIND_PRIVILEGED_PORT,
    KILL_SSHD,
    READ_DEV_MEM,
    WRITE_DEV_MEM,
)
from repro.core.extract import INTRINSIC_TO_ROSA, syscalls_used
from repro.core.pipeline import PhaseAnalysis, PrivAnalyzer, ProgramAnalysis
from repro.core import blame, multiprocess, report
from repro.core import ledger
from repro.core.ledger import LedgerDiff, RunLedger, diff_ledgers
from repro.core.multiprocess import (
    DEFAULT_MULTIPROCESS_BUDGET,
    MultiProcessAnalysis,
    analyze_multiprocess,
)

__all__ = [
    "ALL_ATTACKS",
    "ATTACKS_BY_ID",
    "Attack",
    "BIND_PRIVILEGED_PORT",
    "DEFAULT_MULTIPROCESS_BUDGET",
    "INTRINSIC_TO_ROSA",
    "KILL_SSHD",
    "LedgerDiff",
    "PhaseAnalysis",
    "PrivAnalyzer",
    "ProgramAnalysis",
    "READ_DEV_MEM",
    "WRITE_DEV_MEM",
    "MultiProcessAnalysis",
    "RunLedger",
    "analyze_multiprocess",
    "blame",
    "diff_ledgers",
    "ledger",
    "multiprocess",
    "report",
    "syscalls_used",
]
