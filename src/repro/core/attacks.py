"""The four modeled privilege-escalation attacks (Table I).

1. Read ``/dev/mem`` — steal any process's data;
2. Write ``/dev/mem`` — corrupt any process's data;
3. Bind a privileged TCP port — masquerade as a trusted server;
4. SIGKILL the sshd server — deny service.

Each attack knows how to build a ROSA query for one ChronoPriv phase:
the initial configuration holds a process with the phase's credentials,
the objects the attack targets, User/Group objects bounding the wildcard
domains, and one message per system call the program can issue — every
message granted the phase's *entire permitted set*, because the attack
model (§III) lets an exploited program raise anything still permitted.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.caps import CapabilitySet
from repro.rewriting import Configuration, Msg
from repro.rosa import goals, model, syscalls
from repro.rosa.query import RosaQuery

# Object ids within attack configurations.
PID_TARGET = 1  # the (possibly compromised) program under analysis
PID_SSHD = 2  # attack 4's victim server
FID_DEVMEM = 10
DID_DEV = 11
OID_BASE_USERS = 20

# File population constants (match repro.oskernel.setup).
UID_ROOT = 0
GID_KMEM = 15
#: Attack 4's victim: the paper models "a server owned by another user"
#: — a uid distinct from root and from the analysed process, so killing
#: it needs CAP_KILL or a CAP_SETUID identity change.
UID_SSHD_SERVICE = 2000
PRIVILEGED_PORT = 22
UNPRIVILEGED_PORT = 8080

#: Syscall message constructors by name, with wildcard arguments.  The
#: attacker controls arguments (§III), so everything that can be a
#: wildcard is one; chmod uses 0o777 as the paper prescribes (§V-B).
W = syscalls.WILDCARD


def _attack_messages(
    names: Iterable[str], privs: CapabilitySet, repeat: int = 1
) -> List[Msg]:
    """One message per allowed syscall, each usable ``repeat`` times."""
    caps = privs.as_frozenset()
    builders = {
        "open": lambda: syscalls.sys_open(PID_TARGET, W, syscalls.O_RDWR, caps),
        "open_read": lambda: syscalls.sys_open(PID_TARGET, W, syscalls.O_RDONLY, caps),
        "open_write": lambda: syscalls.sys_open(PID_TARGET, W, syscalls.O_WRONLY, caps),
        "setuid": lambda: syscalls.sys_setuid(PID_TARGET, W, caps),
        "seteuid": lambda: syscalls.sys_seteuid(PID_TARGET, W, caps),
        "setresuid": lambda: syscalls.sys_setresuid(PID_TARGET, W, W, W, caps),
        "setgid": lambda: syscalls.sys_setgid(PID_TARGET, W, caps),
        "setegid": lambda: syscalls.sys_setegid(PID_TARGET, W, caps),
        "setresgid": lambda: syscalls.sys_setresgid(PID_TARGET, W, W, W, caps),
        "setgroups": lambda: syscalls.sys_setgroups(PID_TARGET, W, caps),
        "kill": lambda: syscalls.sys_kill(PID_TARGET, W, model.SIGKILL, caps),
        "chmod": lambda: syscalls.sys_chmod(PID_TARGET, W, 0o777, caps),
        "fchmod": lambda: syscalls.sys_fchmod(PID_TARGET, W, 0o777, caps),
        "chown": lambda: syscalls.sys_chown(PID_TARGET, W, W, W, caps),
        "fchown": lambda: syscalls.sys_fchown(PID_TARGET, W, W, W, caps),
        "unlink": lambda: syscalls.sys_unlink(PID_TARGET, W, caps),
        "rename": lambda: syscalls.sys_rename(PID_TARGET, W, "attacker", caps),
        "socket": lambda: syscalls.sys_socket(PID_TARGET, caps),
        "bind": lambda: syscalls.sys_bind(PID_TARGET, W, W, caps),
        "connect": lambda: syscalls.sys_connect(PID_TARGET, W, W, caps),
    }
    messages: List[Msg] = []
    for name in sorted(set(names)):
        builder = builders.get(name)
        if builder is None:
            continue  # syscalls ROSA does not model contribute nothing
        for _ in range(repeat):
            messages.append(builder())
    return messages


def _identity_objects(
    uids: Tuple[int, int, int],
    gids: Tuple[int, int, int],
    extra_uids: Iterable[int] = (),
    extra_gids: Iterable[int] = (),
) -> List:
    """User/Group objects bounding the wildcard uid/gid domains.

    Includes the process's own ids plus the ids relevant to the attack
    (file owners etc.) — the paper constrains ROSA's search space the same
    way (§V-B).
    """
    objects = []
    oid = OID_BASE_USERS
    for uid in sorted(set(uids) | set(extra_uids)):
        objects.append(model.user(oid, uid))
        oid += 1
    for gid in sorted(set(gids) | set(extra_gids)):
        objects.append(model.group(oid, gid))
        oid += 1
    return objects


@dataclasses.dataclass(frozen=True)
class Attack:
    """One modeled attack, buildable into a ROSA query per phase."""

    attack_id: int
    name: str
    description: str
    #: Syscall families relevant to the attack; the query only includes a
    #: program syscall if the attack can use it, mirroring the paper's
    #: observation that attacks 3/4 have small relevant-call sets (§VIII).
    relevant_syscalls: FrozenSet[str]

    def build_query(
        self,
        phase_privileges: CapabilitySet,
        uids: Tuple[int, int, int],
        gids: Tuple[int, int, int],
        program_syscalls: FrozenSet[str],
        repeat: int = 1,
        label: str = "",
        devmem_perms: int = 0o640,
    ) -> RosaQuery:
        """Build the ROSA query for one ChronoPriv phase.

        ``devmem_perms`` exposes the /dev/mem mode for sensitivity
        analysis: Ubuntu ships root:kmem 0o640 (the default); modelling
        it as 0o000 reproduces the paper's Table III verdicts for the
        euid-0 phases exactly (see EXPERIMENTS.md).
        """
        usable = program_syscalls & self.relevant_syscalls
        messages = _attack_messages(usable, phase_privileges, repeat)
        ruid, euid, suid = uids
        rgid, egid, sgid = gids
        target = model.process(
            PID_TARGET,
            euid=euid,
            ruid=ruid,
            suid=suid,
            egid=egid,
            rgid=rgid,
            sgid=sgid,
        )
        objects: List = [target]
        goal = self._goal()
        if self.attack_id in (1, 2):
            objects.append(
                model.file_obj(
                    FID_DEVMEM, name="/dev/mem", owner=UID_ROOT,
                    group=GID_KMEM, perms=devmem_perms,
                )
            )
            objects.append(
                model.dir_entry(
                    DID_DEV, name="/dev", owner=UID_ROOT, group=UID_ROOT,
                    perms=0o755, inode=FID_DEVMEM,
                )
            )
            objects.extend(
                _identity_objects(uids, gids, extra_uids=[UID_ROOT], extra_gids=[GID_KMEM])
            )
        elif self.attack_id == 3:
            objects.append(model.port_obj(OID_BASE_USERS - 2, PRIVILEGED_PORT))
            objects.append(model.port_obj(OID_BASE_USERS - 1, UNPRIVILEGED_PORT))
            objects.extend(_identity_objects(uids, gids))
        elif self.attack_id == 4:
            # The critical server, owned by another user (§VII-A).
            objects.append(
                model.process(
                    PID_SSHD,
                    euid=UID_SSHD_SERVICE, ruid=UID_SSHD_SERVICE,
                    suid=UID_SSHD_SERVICE,
                    egid=UID_SSHD_SERVICE, rgid=UID_SSHD_SERVICE,
                    sgid=UID_SSHD_SERVICE,
                )
            )
            objects.extend(
                _identity_objects(uids, gids, extra_uids=[UID_SSHD_SERVICE])
            )
        initial = Configuration(objects + messages)
        return RosaQuery(
            name=label or f"attack{self.attack_id}",
            initial=initial,
            goal=goal,
            description=self.description,
            # Attack goals are fully determined by the attack id (see
            # _goal), so the cache key need not introspect the closure.
            goal_key=("attack", self.attack_id),
        )

    def query_spec(
        self,
        phase_privileges: CapabilitySet,
        uids: Tuple[int, int, int],
        gids: Tuple[int, int, int],
        program_syscalls: FrozenSet[str],
        repeat: int = 1,
        label: str = "",
        devmem_perms: int = 0o640,
    ) -> "AttackQuerySpec":
        """The picklable counterpart of :meth:`build_query`, for batches."""
        return AttackQuerySpec(
            attack_id=self.attack_id,
            privileges=phase_privileges,
            uids=uids,
            gids=gids,
            syscalls=frozenset(program_syscalls),
            repeat=repeat,
            label=label,
            devmem_perms=devmem_perms,
        )

    def _goal(self):
        if self.attack_id == 1:
            return goals.file_opened_for_read(FID_DEVMEM)
        if self.attack_id == 2:
            return goals.file_opened_for_write(FID_DEVMEM)
        if self.attack_id == 3:
            return goals.socket_bound_to_privileged_port(pid=PID_TARGET)
        if self.attack_id == 4:
            return goals.process_terminated(PID_SSHD)
        raise ValueError(f"unknown attack id {self.attack_id}")


@dataclasses.dataclass(frozen=True)
class AttackQuerySpec:
    """Everything needed to rebuild one attack query, in picklable form.

    ROSA goals are closures and do not pickle, so the query engine's
    process-pool mode ships this spec to workers instead; ``build()``
    reconstructs the exact :class:`~repro.rosa.query.RosaQuery` there.
    """

    attack_id: int
    privileges: CapabilitySet
    uids: Tuple[int, int, int]
    gids: Tuple[int, int, int]
    syscalls: FrozenSet[str]
    repeat: int = 1
    label: str = ""
    devmem_perms: int = 0o640

    def build(self) -> RosaQuery:
        return ATTACKS_BY_ID[self.attack_id].build_query(
            phase_privileges=self.privileges,
            uids=self.uids,
            gids=self.gids,
            program_syscalls=self.syscalls,
            repeat=self.repeat,
            label=self.label,
            devmem_perms=self.devmem_perms,
        )


#: Syscalls that can contribute to file-access attacks (1 and 2).
_FILE_ATTACK_SYSCALLS = frozenset(
    {
        "open", "open_read", "open_write",
        "setuid", "seteuid", "setresuid",
        "setgid", "setegid", "setresgid", "setgroups",
        "chmod", "fchmod", "chown", "fchown",
        "unlink", "rename",
    }
)

READ_DEV_MEM = Attack(
    1,
    "read-devmem",
    "Read from /dev/mem to steal application data",
    _FILE_ATTACK_SYSCALLS,
)
WRITE_DEV_MEM = Attack(
    2,
    "write-devmem",
    "Write to /dev/mem to corrupt application data",
    _FILE_ATTACK_SYSCALLS,
)
BIND_PRIVILEGED_PORT = Attack(
    3,
    "bind-privileged-port",
    "Bind to a privileged port to masquerade as a server",
    frozenset({"socket", "bind", "connect"}),
)
KILL_SSHD = Attack(
    4,
    "kill-sshd",
    "Send a SIGKILL signal to kill the sshd server",
    frozenset({"kill", "setuid", "seteuid", "setresuid"}),
)

#: Table I, in order.
ALL_ATTACKS: Tuple[Attack, ...] = (
    READ_DEV_MEM,
    WRITE_DEV_MEM,
    BIND_PRIVILEGED_PORT,
    KILL_SSHD,
)

ATTACKS_BY_ID: Dict[int, Attack] = {attack.attack_id: attack for attack in ALL_ATTACKS}
