"""Capability blame analysis.

The paper identifies refactoring targets by hand: comparing
passwd_priv3 with passwd_priv4 shows that dropping ``CAP_SETUID`` is
what makes attack 4 infeasible (§VII-D1), and su's "last privilege to
remain live" points where to focus (§VII-D2).  This module automates
that reasoning: for a vulnerable (phase, attack) pair, which
capabilities are *individually necessary* for the attack — i.e. removing
just that capability flips the verdict to invulnerable?

A capability can also be *sufficient-but-redundant* (several independent
routes exist): then no single removal flips the verdict, and the minimal
fix is a set.  :func:`minimal_blocking_sets` enumerates minimal removal
sets up to a configurable size.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.caps import Capability, CapabilitySet
from repro.core.attacks import Attack
from repro.rewriting import SearchBudget
from repro.rosa.query import Verdict, check

DEFAULT_BUDGET = SearchBudget(max_states=100_000, max_seconds=30.0)


def _vulnerable(
    attack: Attack,
    caps: CapabilitySet,
    uids,
    gids,
    surface: FrozenSet[str],
    budget: SearchBudget,
) -> bool:
    query = attack.build_query(caps, uids, gids, surface)
    return check(query, budget).verdict is Verdict.VULNERABLE


def necessary_capabilities(
    attack: Attack,
    caps: CapabilitySet,
    uids,
    gids,
    surface: FrozenSet[str],
    budget: SearchBudget = DEFAULT_BUDGET,
) -> CapabilitySet:
    """Capabilities whose individual removal defeats the attack.

    Empty when the phase is already invulnerable, and also when every
    single removal leaves an alternative route (see
    :func:`minimal_blocking_sets` for those cases).
    """
    if not _vulnerable(attack, caps, uids, gids, surface, budget):
        return CapabilitySet.empty()
    necessary = []
    for cap in caps:
        reduced = caps.remove(cap)
        if not _vulnerable(attack, reduced, uids, gids, surface, budget):
            necessary.append(cap)
    return CapabilitySet(necessary)


def minimal_blocking_sets(
    attack: Attack,
    caps: CapabilitySet,
    uids,
    gids,
    surface: FrozenSet[str],
    max_size: int = 2,
    budget: SearchBudget = DEFAULT_BUDGET,
) -> List[CapabilitySet]:
    """Minimal capability sets whose removal defeats the attack.

    Enumerates subsets by increasing size (up to ``max_size``); a set is
    reported only if no reported subset of it already blocks the attack.
    An empty list means the attack either was not feasible to begin with,
    or survives every removal up to ``max_size`` (e.g. it rests on the
    credentials alone).
    """
    if not _vulnerable(attack, caps, uids, gids, surface, budget):
        return []
    blocking: List[CapabilitySet] = []
    for size in range(1, max_size + 1):
        for combo in itertools.combinations(list(caps), size):
            candidate = CapabilitySet(combo)
            if any(found.issubset(candidate) for found in blocking):
                continue
            reduced = caps - candidate
            if not _vulnerable(attack, reduced, uids, gids, surface, budget):
                blocking.append(candidate)
    return blocking


def blame_phases(analysis, budget: SearchBudget = DEFAULT_BUDGET) -> Dict[str, Dict[int, CapabilitySet]]:
    """Per-phase, per-attack necessary capabilities for a whole analysis.

    Returns ``{phase name: {attack id: necessary caps}}``, covering only
    the vulnerable cells.
    """
    result: Dict[str, Dict[int, CapabilitySet]] = {}
    from repro.core.attacks import ATTACKS_BY_ID

    for phase_analysis in analysis.phases:
        phase = phase_analysis.phase
        row: Dict[int, CapabilitySet] = {}
        for attack_id, report in phase_analysis.verdicts.items():
            if report.verdict is not Verdict.VULNERABLE:
                continue
            row[attack_id] = necessary_capabilities(
                ATTACKS_BY_ID[attack_id],
                phase.privileges,
                phase.uids,
                phase.gids,
                analysis.syscalls,
                budget,
            )
        if row:
            result[phase.name] = row
    return result


def render_blame(analysis, budget: SearchBudget = DEFAULT_BUDGET) -> str:
    """A human-readable blame report for one program analysis."""
    blame = blame_phases(analysis, budget)
    if not blame:
        return f"{analysis.spec.name}: no vulnerable phases — nothing to blame."
    lines = [f"Capability blame for {analysis.spec.name}:"]
    for phase_name, row in blame.items():
        for attack_id, caps in sorted(row.items()):
            if caps:
                lines.append(
                    f"  {phase_name} / attack {attack_id}: removing any of "
                    f"{caps.describe()} defeats the attack"
                )
            else:
                lines.append(
                    f"  {phase_name} / attack {attack_id}: no single capability "
                    "removal helps (multiple routes or credentials suffice)"
                )
    return "\n".join(lines)
