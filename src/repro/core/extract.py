"""Extracting a program's system-call surface from its IR.

The attack model (§III) restricts attackers to the system calls the
original program uses; PrivAnalyzer therefore feeds ROSA exactly the
program's syscall list.  Library helpers expand to the syscalls they
issue internally — ``getspnam`` reads the shadow database through
``open``, so a program using it exposes the ``open`` syscall to an
attacker (who may of course pass any arguments, including opening for
write).
"""

from __future__ import annotations

from typing import FrozenSet

from repro.ir import Call, Module

#: Intrinsic name → the ROSA message kinds its syscalls expose to attacks.
#: ``open`` expands to both modes: the attacker chooses the flags.
INTRINSIC_TO_ROSA = {
    "open": ("open_read", "open_write"),
    "getspnam": ("open_read", "open_write"),
    "setuid": ("setuid",),
    "seteuid": ("seteuid",),
    "setresuid": ("setresuid",),
    "setgid": ("setgid",),
    "setegid": ("setegid",),
    "setresgid": ("setresgid",),
    "setgroups1": ("setgroups",),
    "setgroups0": ("setgroups",),
    "kill": ("kill",),
    "chmod": ("chmod",),
    "fchmod": ("fchmod",),
    "chown": ("chown",),
    "fchown": ("fchown",),
    "unlink": ("unlink",),
    "rename": ("rename",),
    "socket": ("socket",),
    "socket_raw": ("socket",),
    "bind": ("bind",),
    "connect": ("connect",),
}


def syscalls_used(module: Module) -> FrozenSet[str]:
    """The ROSA syscall surface of a program.

    Collects direct calls to intrinsic wrappers in every defined function
    (an indirect call can only reach address-taken functions, which are
    defined in the module, so declarations are never indirect targets).
    """
    used = set()
    for function in module.defined_functions():
        for instruction in function.instructions():
            if not isinstance(instruction, Call):
                continue
            target = instruction.direct_target
            if target is None:
                continue
            used.update(INTRINSIC_TO_ROSA.get(target.name, ()))
    return frozenset(used)
