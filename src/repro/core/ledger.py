"""The run ledger: durable, diffable artifacts of one PrivAnalyzer run.

PR 1 made runs observable *while they execute*; everything still
evaporated at process exit.  A :class:`RunLedger` captures one
``analyze`` or ``rosa`` invocation into a versioned JSON artifact
directory so two runs can be compared mechanically — the layer
peer-group analysis ("Apples and Oranges") and BEACON-style policy
generation both assume:

``manifest.json``
    Schema version, run kind (``analyze``/``rosa``), program name, the
    CLI arguments, and an injected creation timestamp.
``spans.jsonl``
    Every finished span (``repro.telemetry.export.spans_to_jsonl``).
``trace.perfetto.json``
    The same trace as Chrome trace-event JSON, openable in Perfetto.
``metrics.json`` / ``metrics.prom``
    The metrics-registry snapshot, as JSON and as Prometheus text.
``audit.jsonl``
    The simulated kernel's syscall audit trail (when recorded).
``syscalls.json``
    Observed syscall names grouped by the caller's credential tuple,
    plus ring-eviction accounting — the per-phase surface the differ
    compares.
``exposure.json``
    The per-phase exposure table and vulnerability windows
    (``repro.core.report.analysis_to_dict``).
``verdicts.json``
    One record per (phase, attack) ROSA query: verdict, witness chain,
    and search cost.
``cache.json``
    Query-engine cache statistics (hits/misses/hit rate/entries).
``workers.json``
    Fleet telemetry: per-worker capsule accounting from pool runs
    (``--jobs N``) — tasks, execute/queue-wait seconds, states
    explored, spans/samples/audit volume per stable ``worker:N`` id
    (see :meth:`repro.rosa.engine.QueryEngine.fleet_stats`).  The
    differ compares load balance and per-worker execute time.
``profile.json``
    The hot-path profiler's schema-versioned report (per rewrite rule,
    reduction phase, VM opcode, engine worker — see
    :mod:`repro.telemetry.profiler`), written only when the run carried
    a live profiler (``--profile-out``).

:func:`diff_ledgers` is the structural comparator behind
``privanalyzer diff OLD NEW``: verdict flips, exposure-fraction deltas
beyond a tolerance, per-stage duration regressions beyond a perf
tolerance, and syscalls newly observed (or vanished) per credential
phase all surface as findings; any ``regression``-severity finding
makes the CLI exit non-zero, so CI can gate on it.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.pipeline import ProgramAnalysis
from repro.core.report import analysis_to_dict
from repro.rosa.query import RosaReport
from repro.telemetry import (
    Telemetry,
    metrics_to_prometheus,
    spans_to_jsonl,
    trace_event_json,
)

#: Bump when any artifact's layout changes; the differ refuses to
#: compare ledgers written under different schema versions.
LEDGER_SCHEMA_VERSION = 1

MANIFEST_FILE = "manifest.json"
SPANS_FILE = "spans.jsonl"
PERFETTO_FILE = "trace.perfetto.json"
METRICS_FILE = "metrics.json"
PROMETHEUS_FILE = "metrics.prom"
AUDIT_FILE = "audit.jsonl"
SYSCALLS_FILE = "syscalls.json"
EXPOSURE_FILE = "exposure.json"
VERDICTS_FILE = "verdicts.json"
CACHE_FILE = "cache.json"
PROFILE_FILE = "profile.json"
WORKERS_FILE = "workers.json"

#: Stage-duration deltas smaller than this many seconds never count as
#: perf regressions, whatever the ratio — sub-floor stages are noise.
PERF_ABSOLUTE_FLOOR = 0.05


# -- capture ------------------------------------------------------------------


def _dump_json(path: Path, data: Any) -> None:
    path.write_text(json.dumps(data, indent=2, sort_keys=True, default=repr) + "\n")


def _verdict_records(analysis: ProgramAnalysis) -> List[Dict[str, Any]]:
    records = []
    for phase_analysis in analysis.phases:
        for attack_id, report in sorted(phase_analysis.verdicts.items()):
            records.append(_report_record(report, phase_analysis.phase.name, attack_id))
    return records


def _report_record(
    report: RosaReport, phase: str, attack_id: Optional[int]
) -> Dict[str, Any]:
    return {
        "phase": phase,
        "attack": attack_id,
        "verdict": report.verdict.value,
        "witness": list(report.witness),
        "states_explored": report.states_explored,
        "states_seen": report.states_seen,
        "peak_frontier": report.stats.peak_frontier,
        "max_depth": report.stats.max_depth,
        "symmetry_hits": report.stats.symmetry_hits,
        "por_pruned": report.stats.por_pruned,
        "elapsed": report.elapsed,
        "from_cache": report.from_cache,
    }


def _syscalls_by_credential(audit) -> Dict[str, Any]:
    """Observed syscall names grouped by the caller's credential tuple."""
    groups: Dict[str, set] = {}
    for record in audit.records:
        uids = ",".join(map(str, record.uids)) if record.uids else "?"
        gids = ",".join(map(str, record.gids)) if record.gids else "?"
        groups.setdefault(f"uid={uids} gid={gids}", set()).add(record.syscall)
    return {
        "total": audit.total,
        "dropped": audit.dropped,
        "by_credential": {key: sorted(names) for key, names in sorted(groups.items())},
    }


def _write_telemetry(root: Path, telemetry: Telemetry) -> List[str]:
    files = [SPANS_FILE, PERFETTO_FILE, METRICS_FILE, PROMETHEUS_FILE]
    if telemetry.audit is not None:
        # Refresh kernel.audit.dropped before any snapshot-bearing
        # artifact: the gauge otherwise only updates on record append,
        # so a ring cleared or absorbed since would export stale.
        telemetry.audit.publish_dropped()
    jsonl = spans_to_jsonl(telemetry.tracer)
    (root / SPANS_FILE).write_text(jsonl + "\n" if jsonl else "")
    (root / PERFETTO_FILE).write_text(
        trace_event_json(telemetry.tracer, telemetry.metrics) + "\n"
    )
    _dump_json(root / METRICS_FILE, telemetry.metrics.snapshot())
    (root / PROMETHEUS_FILE).write_text(metrics_to_prometheus(telemetry.metrics))
    if telemetry.audit is not None:
        audit_jsonl = telemetry.audit.to_jsonl()
        (root / AUDIT_FILE).write_text(audit_jsonl + "\n" if audit_jsonl else "")
        _dump_json(root / SYSCALLS_FILE, _syscalls_by_credential(telemetry.audit))
        files += [AUDIT_FILE, SYSCALLS_FILE]
    return files


def _capture(
    directory: Union[str, Path],
    kind: str,
    program: str,
    telemetry: Telemetry,
    extra_files,
    cli_args: Optional[Dict[str, Any]],
    timestamp: Optional[float],
) -> "RunLedger":
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    files = _write_telemetry(root, telemetry)
    for name, data in extra_files:
        _dump_json(root / name, data)
        files.append(name)
    manifest = {
        "schema": LEDGER_SCHEMA_VERSION,
        "kind": kind,
        "program": program,
        "tool": "privanalyzer",
        "created_unix": time.time() if timestamp is None else timestamp,
        "cli": cli_args or {},
        "files": sorted(files),
    }
    _dump_json(root / MANIFEST_FILE, manifest)
    return RunLedger.load(root)


def capture_analysis(
    directory: Union[str, Path],
    analysis: ProgramAnalysis,
    telemetry: Telemetry,
    cache_stats: Optional[Dict[str, Any]] = None,
    cli_args: Optional[Dict[str, Any]] = None,
    timestamp: Optional[float] = None,
    profiler=None,
    fleet: Optional[Dict[str, Any]] = None,
) -> "RunLedger":
    """Write one ``analyze`` run's artifacts; returns the loaded ledger.

    ``timestamp`` injects the manifest's creation time (tests pass a
    constant; the CLI passes nothing and gets ``time.time()``).
    ``profiler``, when live, adds its report as ``profile.json``;
    ``fleet`` (the engine's :meth:`~repro.rosa.engine.QueryEngine.
    fleet_stats`), when non-empty, adds ``workers.json``.
    """
    extra = [
        (EXPOSURE_FILE, analysis_to_dict(analysis)),
        (VERDICTS_FILE, _verdict_records(analysis)),
        (CACHE_FILE, cache_stats or {}),
    ]
    extra += _profile_extra(profiler)
    extra += _fleet_extra(fleet)
    return _capture(
        directory, "analyze", analysis.spec.name, telemetry, extra, cli_args, timestamp
    )


def capture_rosa(
    directory: Union[str, Path],
    report: Union[RosaReport, List[RosaReport]],
    telemetry: Telemetry,
    cli_args: Optional[Dict[str, Any]] = None,
    timestamp: Optional[float] = None,
    profiler=None,
    fleet: Optional[Dict[str, Any]] = None,
) -> "RunLedger":
    """Write one ``rosa`` run's artifacts; returns the loaded ledger.

    ``report`` may be a list (one ``privanalyzer rosa`` invocation over
    several query files, e.g. a ``--jobs`` batch); the manifest's
    program is then the comma-joined query names.
    """
    reports = report if isinstance(report, list) else [report]
    extra = [
        (
            VERDICTS_FILE,
            [_report_record(item, item.query.name, None) for item in reports],
        )
    ]
    extra += _profile_extra(profiler)
    extra += _fleet_extra(fleet)
    program = ",".join(item.query.name or "?" for item in reports)
    return _capture(
        directory, "rosa", program, telemetry, extra, cli_args, timestamp
    )


def _profile_extra(profiler) -> List[Tuple[str, Any]]:
    """The optional ``profile.json`` entry for :func:`_capture`."""
    if profiler is None or not getattr(profiler, "enabled", False):
        return []
    return [(PROFILE_FILE, profiler.to_report())]


def _fleet_extra(fleet) -> List[Tuple[str, Any]]:
    """The optional ``workers.json`` entry for :func:`_capture`."""
    if not fleet:
        return []
    return [(WORKERS_FILE, fleet)]


# -- loading ------------------------------------------------------------------


@dataclasses.dataclass
class RunLedger:
    """One run's artifacts, loaded back from a ledger directory."""

    root: Path
    manifest: Dict[str, Any]
    spans: List[Dict[str, Any]]
    metrics: Dict[str, Any]
    verdicts: List[Dict[str, Any]]
    exposure: Optional[Dict[str, Any]] = None
    syscalls: Optional[Dict[str, Any]] = None
    cache: Optional[Dict[str, Any]] = None
    profile: Optional[Dict[str, Any]] = None
    workers: Optional[Dict[str, Any]] = None

    @property
    def schema(self) -> int:
        return int(self.manifest.get("schema", 0))

    @property
    def program(self) -> str:
        return str(self.manifest.get("program", "?"))

    def stage_durations(self) -> Dict[str, float]:
        """Total duration (seconds) per span name — the perf profile."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            totals[span["name"]] = totals.get(span["name"], 0.0) + span["duration"]
        return totals

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "RunLedger":
        root = Path(directory)
        manifest_path = root / MANIFEST_FILE
        if not manifest_path.exists():
            raise FileNotFoundError(f"{root} is not a run ledger (no {MANIFEST_FILE})")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as error:
            raise ValueError(f"corrupt {MANIFEST_FILE}: {error}") from error
        if not isinstance(manifest, dict):
            raise ValueError(
                f"corrupt {MANIFEST_FILE}: expected a JSON object, got "
                f"{type(manifest).__name__}"
            )
        schema = manifest.get("schema")
        if not isinstance(schema, int) or isinstance(schema, bool) or schema < 1:
            raise ValueError(
                f"{MANIFEST_FILE} has invalid schema version {schema!r} "
                f"(this tool writes version {LEDGER_SCHEMA_VERSION})"
            )
        if schema > LEDGER_SCHEMA_VERSION:
            raise ValueError(
                f"ledger schema version {schema} is newer than this tool "
                f"understands (max {LEDGER_SCHEMA_VERSION}) — upgrade the "
                f"tool or recapture the run"
            )
        listed = manifest.get("files", [])
        if not isinstance(listed, list):
            raise ValueError(f"{MANIFEST_FILE} 'files' must be a list, got {listed!r}")
        missing = sorted(
            str(name) for name in listed if not (root / str(name)).exists()
        )
        if missing:
            raise ValueError(
                f"ledger is missing artifact file(s) the manifest lists: "
                f"{', '.join(missing)} — recapture the run with --ledger"
            )

        def optional_json(name: str):
            path = root / name
            return json.loads(path.read_text()) if path.exists() else None

        spans_path = root / SPANS_FILE
        spans = (
            [
                json.loads(line)
                for line in spans_path.read_text().splitlines()
                if line.strip()
            ]
            if spans_path.exists()
            else []
        )
        return cls(
            root=root,
            manifest=manifest,
            spans=spans,
            metrics=optional_json(METRICS_FILE) or {},
            verdicts=optional_json(VERDICTS_FILE) or [],
            exposure=optional_json(EXPOSURE_FILE),
            syscalls=optional_json(SYSCALLS_FILE),
            cache=optional_json(CACHE_FILE),
            profile=optional_json(PROFILE_FILE),
            workers=optional_json(WORKERS_FILE),
        )


# -- diffing ------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DiffFinding:
    """One observed difference between two ledgers.

    ``severity`` is ``"regression"`` (gates CI), ``"change"`` (worth a
    look, does not gate) or ``"info"``.
    """

    severity: str
    kind: str
    message: str

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class LedgerDiff:
    """All findings of one old-vs-new comparison."""

    old: RunLedger
    new: RunLedger
    findings: List[DiffFinding]

    @property
    def regressions(self) -> List[DiffFinding]:
        return [f for f in self.findings if f.severity == "regression"]

    @property
    def clean(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def render(self) -> str:
        lines = [f"ledger diff: {self.old.root} -> {self.new.root}"]
        for finding in self.findings:
            lines.append(
                f"  {finding.severity.upper():<10} [{finding.kind}] {finding.message}"
            )
        changes = sum(1 for f in self.findings if f.severity == "change")
        infos = sum(1 for f in self.findings if f.severity == "info")
        if self.clean and not self.findings:
            lines.append(
                f"  ok: ledgers match ({len(self.new.verdicts)} verdicts, "
                f"{len(self.new.stage_durations())} stages compared)"
            )
        lines.append(
            f"{len(self.regressions)} regression(s), {changes} change(s), "
            f"{infos} info"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "old": str(self.old.root),
                "new": str(self.new.root),
                "findings": [f.to_dict() for f in self.findings],
                "regressions": len(self.regressions),
            },
            indent=2,
            sort_keys=True,
        )


def _diff_verdicts(old: RunLedger, new: RunLedger, findings: List[DiffFinding]) -> None:
    def key(record) -> Tuple:
        return (record["phase"], record["attack"])

    old_map = {key(r): r for r in old.verdicts}
    new_map = {key(r): r for r in new.verdicts}
    for pair in sorted(set(old_map) - set(new_map), key=repr):
        findings.append(
            DiffFinding(
                "regression", "verdict",
                f"phase {pair[0]!r} attack {pair[1]}: verdict vanished "
                f"(was {old_map[pair]['verdict']})",
            )
        )
    for pair in sorted(set(new_map) - set(old_map), key=repr):
        findings.append(
            DiffFinding(
                "regression", "verdict",
                f"phase {pair[0]!r} attack {pair[1]}: new verdict "
                f"{new_map[pair]['verdict']} with no baseline",
            )
        )
    for pair in sorted(set(old_map) & set(new_map), key=repr):
        before, after = old_map[pair], new_map[pair]
        label = f"phase {pair[0]!r} attack {pair[1]}"
        if before["verdict"] != after["verdict"]:
            findings.append(
                DiffFinding(
                    "regression", "verdict",
                    f"{label}: verdict flip {before['verdict']} -> "
                    f"{after['verdict']}",
                )
            )
        elif before["witness"] != after["witness"]:
            findings.append(
                DiffFinding(
                    "change", "verdict",
                    f"{label}: witness changed "
                    f"{' -> '.join(before['witness']) or '(none)'} to "
                    f"{' -> '.join(after['witness']) or '(none)'}",
                )
            )
        else:
            # Reduction-stat drift (e.g. one side ran --no-reduction, or
            # the reduction got stronger/weaker) is worth surfacing but
            # is never a regression: verdict and witness already matched.
            for stat in ("symmetry_hits", "por_pruned"):
                was, now = before.get(stat, 0), after.get(stat, 0)
                if was != now:
                    findings.append(
                        DiffFinding(
                            "info", "verdict",
                            f"{label}: {stat} {was} -> {now} "
                            "(state-space reduction drift)",
                        )
                    )


def _diff_exposure(
    old: RunLedger, new: RunLedger, tolerance: float, findings: List[DiffFinding]
) -> None:
    if old.exposure is None or new.exposure is None:
        if (old.exposure is None) != (new.exposure is None):
            findings.append(
                DiffFinding(
                    "regression", "exposure",
                    "exposure table present in only one ledger",
                )
            )
        return
    old_windows = old.exposure.get("windows", {})
    new_windows = new.exposure.get("windows", {})
    for attack in sorted(set(old_windows) | set(new_windows)):
        before = old_windows.get(attack)
        after = new_windows.get(attack)
        if before is None or after is None:
            findings.append(
                DiffFinding(
                    "regression", "exposure",
                    f"attack {attack}: window present in only one ledger",
                )
            )
            continue
        if abs(after - before) > tolerance:
            findings.append(
                DiffFinding(
                    "regression", "exposure",
                    f"attack {attack}: vulnerability window {before:.4%} -> "
                    f"{after:.4%} (delta {after - before:+.4%}, "
                    f"tolerance {tolerance:.4%})",
                )
            )
    before_inv = old.exposure.get("invulnerable_window", 0.0)
    after_inv = new.exposure.get("invulnerable_window", 0.0)
    if abs(after_inv - before_inv) > tolerance:
        findings.append(
            DiffFinding(
                "regression", "exposure",
                f"invulnerable window {before_inv:.4%} -> {after_inv:.4%} "
                f"(delta {after_inv - before_inv:+.4%})",
            )
        )
    old_phases = {p["name"]: p for p in old.exposure.get("phases", [])}
    new_phases = {p["name"]: p for p in new.exposure.get("phases", [])}
    for name in sorted(set(old_phases) ^ set(new_phases)):
        where = "vanished" if name in old_phases else "appeared"
        findings.append(
            DiffFinding("regression", "exposure", f"phase {name!r} {where}")
        )
    for name in sorted(set(old_phases) & set(new_phases)):
        before, after = old_phases[name], new_phases[name]
        for field in ("privileges", "uids", "gids"):
            if before.get(field) != after.get(field):
                findings.append(
                    DiffFinding(
                        "regression", "exposure",
                        f"phase {name!r}: {field} changed "
                        f"{before.get(field)} -> {after.get(field)}",
                    )
                )
        if abs(after.get("percent", 0.0) - before.get("percent", 0.0)) > tolerance * 100.0:
            findings.append(
                DiffFinding(
                    "regression", "exposure",
                    f"phase {name!r}: share of execution "
                    f"{before.get('percent', 0.0):.2f}% -> "
                    f"{after.get('percent', 0.0):.2f}%",
                )
            )


def _diff_stages(
    old: RunLedger, new: RunLedger, perf_tolerance: float, findings: List[DiffFinding]
) -> None:
    before = old.stage_durations()
    after = new.stage_durations()
    for name in sorted(set(before) ^ set(after)):
        where = "vanished from" if name in before else "appeared in"
        findings.append(
            DiffFinding("change", "perf", f"stage {name!r} {where} the trace")
        )
    for name in sorted(set(before) & set(after)):
        old_total, new_total = before[name], after[name]
        if (
            new_total > old_total * (1.0 + perf_tolerance)
            and new_total - old_total > PERF_ABSOLUTE_FLOOR
        ):
            ratio = new_total / old_total if old_total else float("inf")
            findings.append(
                DiffFinding(
                    "regression", "perf",
                    f"stage {name!r}: {old_total * 1000:.1f} ms -> "
                    f"{new_total * 1000:.1f} ms ({ratio:.1f}x, tolerance "
                    f"{1.0 + perf_tolerance:.1f}x)",
                )
            )


def _diff_profile(
    old: RunLedger, new: RunLedger, perf_tolerance: float, findings: List[DiffFinding]
) -> None:
    """Hot-path profile sections: per-stack wall-time regressions.

    Profiles are optional (only ``--profile-out`` runs carry them), so a
    section present in just one ledger is informational, not a gate.
    """
    if old.profile is None or new.profile is None:
        if (old.profile is None) != (new.profile is None):
            findings.append(
                DiffFinding(
                    "info", "profile",
                    "hot-path profile present in only one ledger "
                    "(capture both with --profile-out to compare)",
                )
            )
        return
    old_schema = old.profile.get("schema")
    new_schema = new.profile.get("schema")
    if old_schema != new_schema:
        findings.append(
            DiffFinding(
                "info", "profile",
                f"profile schema {old_schema!r} vs {new_schema!r} — "
                f"not comparable, recapture the older run",
            )
        )
        return

    def by_stack(profile) -> Dict[str, Dict[str, Any]]:
        return {
            ";".join(record["stack"]): record
            for record in profile.get("records", [])
        }

    before = by_stack(old.profile)
    after = by_stack(new.profile)
    for stack in sorted(set(before) ^ set(after)):
        where = "vanished from" if stack in before else "appeared in"
        findings.append(
            DiffFinding("info", "profile", f"hot path {stack!r} {where} the profile")
        )
    for stack in sorted(set(before) & set(after)):
        old_total = float(before[stack].get("seconds", 0.0))
        new_total = float(after[stack].get("seconds", 0.0))
        if (
            new_total > old_total * (1.0 + perf_tolerance)
            and new_total - old_total > PERF_ABSOLUTE_FLOOR
        ):
            ratio = new_total / old_total if old_total else float("inf")
            findings.append(
                DiffFinding(
                    "regression", "profile",
                    f"hot path {stack!r}: {old_total * 1000:.1f} ms -> "
                    f"{new_total * 1000:.1f} ms ({ratio:.1f}x, tolerance "
                    f"{1.0 + perf_tolerance:.1f}x)",
                )
            )


def _diff_workers(
    old: RunLedger, new: RunLedger, perf_tolerance: float, findings: List[DiffFinding]
) -> None:
    """Fleet sections: per-worker slowdowns and load-imbalance drift.

    Only ``--jobs`` runs carry ``workers.json``, so a section present in
    just one ledger is informational.  Per-worker execute time gates
    like any other perf figure; the worker *set* changing (a different
    ``--jobs``, a renamed pool) and the load balance degrading are
    changes worth a look, not gates — wall-clock regressions already
    surface via stages/profile.
    """
    if old.workers is None or new.workers is None:
        if (old.workers is None) != (new.workers is None):
            findings.append(
                DiffFinding(
                    "info", "workers",
                    "fleet telemetry present in only one ledger "
                    "(capture both from --jobs runs to compare workers)",
                )
            )
        return
    before = old.workers.get("workers", {})
    after = new.workers.get("workers", {})
    for worker in sorted(set(before) ^ set(after)):
        where = "vanished" if worker in before else "appeared"
        findings.append(
            DiffFinding("change", "workers", f"{worker} {where} from the fleet")
        )
    for worker in sorted(set(before) & set(after)):
        old_exec = float(before[worker].get("execute_seconds", 0.0))
        new_exec = float(after[worker].get("execute_seconds", 0.0))
        if (
            new_exec > old_exec * (1.0 + perf_tolerance)
            and new_exec - old_exec > PERF_ABSOLUTE_FLOOR
        ):
            ratio = new_exec / old_exec if old_exec else float("inf")
            findings.append(
                DiffFinding(
                    "regression", "workers",
                    f"{worker}: execute {old_exec * 1000:.1f} ms -> "
                    f"{new_exec * 1000:.1f} ms ({ratio:.1f}x, tolerance "
                    f"{1.0 + perf_tolerance:.1f}x)",
                )
            )
        old_tasks = int(before[worker].get("tasks", 0))
        new_tasks = int(after[worker].get("tasks", 0))
        if old_tasks != new_tasks:
            findings.append(
                DiffFinding(
                    "info", "workers",
                    f"{worker}: tasks {old_tasks} -> {new_tasks}",
                )
            )

    def imbalance(workers: Dict[str, Any]) -> float:
        # max/mean execute time across the fleet: 1.0 is a perfect
        # balance, 4.0 means one worker carried a 4-worker pool.
        times = [
            float(stats.get("execute_seconds", 0.0)) for stats in workers.values()
        ]
        mean = sum(times) / len(times) if times else 0.0
        return (max(times) / mean) if mean > 0.0 else 1.0

    if before and after:
        old_skew = imbalance(before)
        new_skew = imbalance(after)
        if new_skew > old_skew * (1.0 + perf_tolerance) and new_skew - old_skew > 0.5:
            findings.append(
                DiffFinding(
                    "change", "workers",
                    f"load imbalance (max/mean execute) {old_skew:.2f} -> "
                    f"{new_skew:.2f} — the fleet is draining unevenly",
                )
            )


def _diff_syscalls(old: RunLedger, new: RunLedger, findings: List[DiffFinding]) -> None:
    if old.syscalls is None or new.syscalls is None:
        if (old.syscalls is None) != (new.syscalls is None):
            findings.append(
                DiffFinding(
                    "change", "syscalls",
                    "syscall surface recorded in only one ledger",
                )
            )
        return
    before = old.syscalls.get("by_credential", {})
    after = new.syscalls.get("by_credential", {})
    for cred in sorted(set(before) ^ set(after)):
        where = "vanished" if cred in before else "appeared"
        findings.append(
            DiffFinding(
                "regression", "syscalls", f"credential phase {cred} {where}"
            )
        )
    for cred in sorted(set(before) & set(after)):
        added = sorted(set(after[cred]) - set(before[cred]))
        removed = sorted(set(before[cred]) - set(after[cred]))
        if added:
            findings.append(
                DiffFinding(
                    "regression", "syscalls",
                    f"{cred}: newly observed syscalls {', '.join(added)}",
                )
            )
        if removed:
            findings.append(
                DiffFinding(
                    "regression", "syscalls",
                    f"{cred}: syscalls vanished {', '.join(removed)}",
                )
            )
    if new.syscalls.get("dropped", 0) and not old.syscalls.get("dropped", 0):
        findings.append(
            DiffFinding(
                "change", "syscalls",
                f"audit ring started dropping records "
                f"({new.syscalls['dropped']} evicted) — the surface above "
                f"may be incomplete",
            )
        )


def _diff_counters(old: RunLedger, new: RunLedger, findings: List[DiffFinding]) -> None:
    """Deterministic counters (VM instructions, syscall counts) as changes."""
    for name in sorted(set(old.metrics) & set(new.metrics)):
        before, after = old.metrics[name], new.metrics[name]
        if before.get("type") != "counter" or after.get("type") != "counter":
            continue
        if before.get("value") != after.get("value"):
            findings.append(
                DiffFinding(
                    "change", "metrics",
                    f"counter {name}: {before.get('value')} -> "
                    f"{after.get('value')}",
                )
            )


def diff_ledgers(
    old: Union[RunLedger, str, Path],
    new: Union[RunLedger, str, Path],
    tolerance: float = 0.0,
    perf_tolerance: float = 1.0,
) -> LedgerDiff:
    """Structurally compare two ledgers; regressions gate (see CLI).

    ``tolerance`` bounds exposure-fraction drift (0–1 scale);
    ``perf_tolerance`` is the allowed relative slow-down per stage
    (1.0 = may take twice as long), with deltas under
    :data:`PERF_ABSOLUTE_FLOOR` seconds always forgiven.
    """
    if not isinstance(old, RunLedger):
        old = RunLedger.load(old)
    if not isinstance(new, RunLedger):
        new = RunLedger.load(new)
    findings: List[DiffFinding] = []
    if old.schema != new.schema:
        findings.append(
            DiffFinding(
                "regression", "manifest",
                f"schema version {old.schema} vs {new.schema} — regenerate "
                f"the older ledger",
            )
        )
        return LedgerDiff(old=old, new=new, findings=findings)
    if old.manifest.get("kind") != new.manifest.get("kind"):
        findings.append(
            DiffFinding(
                "regression", "manifest",
                f"run kind {old.manifest.get('kind')!r} vs "
                f"{new.manifest.get('kind')!r}",
            )
        )
    if old.program != new.program:
        findings.append(
            DiffFinding(
                "regression", "manifest",
                f"program {old.program!r} vs {new.program!r}",
            )
        )
    _diff_verdicts(old, new, findings)
    _diff_exposure(old, new, tolerance, findings)
    _diff_stages(old, new, perf_tolerance, findings)
    _diff_profile(old, new, perf_tolerance, findings)
    _diff_workers(old, new, perf_tolerance, findings)
    _diff_syscalls(old, new, findings)
    _diff_counters(old, new, findings)
    return LedgerDiff(old=old, new=new, findings=findings)
