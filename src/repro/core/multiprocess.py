"""Multi-process privilege analysis.

The PrivAnalyzer pipeline measures one process; forking programs
(privilege-separated servers) need per-process phase tables and an
aggregate risk metric.  This module runs a spec with a ChronoPriv
recorder attached to the main process *and* to every child spawned via
``spawn_wait``, and computes the instruction-weighted exposure across
all of them.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List

from repro.autopriv import transform_module
from repro.chronopriv import ChronoRecorder, ChronoReport, instrument_module
from repro.core.attacks import ALL_ATTACKS, Attack
from repro.core.extract import syscalls_used
from repro.frontend import compile_source
from repro.ir import Module, verify_module
from repro.oskernel.setup import build_kernel
from repro.programs.common import ProgramSpec
from repro.rewriting import SearchBudget
from repro.rosa.engine import QueryCache, QueryEngine, QueryRequest
from repro.rosa.query import Verdict
from repro.vm import interpreter_class

#: The privsep study's search budget: one place to tighten it uniformly
#: across ``combined_exposure`` and ``exposure_table`` callers.
DEFAULT_MULTIPROCESS_BUDGET = SearchBudget(max_states=100_000, max_seconds=30.0)


@dataclasses.dataclass
class MultiProcessAnalysis:
    """Per-process ChronoPriv reports for one forking program run."""

    spec: ProgramSpec
    module: Module
    #: The main process's report first, then children in spawn order.
    reports: List[ChronoReport]
    stdout: List[str]
    exit_code: int
    #: Shared query engine: privsep phases repeat credential tuples across
    #: processes and attacks, so exposure computations reuse verdicts.
    engine: QueryEngine = dataclasses.field(
        default_factory=lambda: QueryEngine(cache=QueryCache()),
        repr=False,
        compare=False,
    )

    @property
    def total_instructions(self) -> int:
        return sum(report.total for report in self.reports)

    def syscall_surface(self) -> frozenset:
        return syscalls_used(self.module)

    def combined_exposure(
        self,
        attack: Attack,
        budget: SearchBudget = DEFAULT_MULTIPROCESS_BUDGET,
    ) -> float:
        """Fraction of all processes' instructions executed while the
        executing process was vulnerable to ``attack``."""
        surface = self.syscall_surface()
        total = self.total_instructions
        if total == 0:
            return 0.0
        phases = [
            phase for report in self.reports for phase in report.phases
        ]
        requests = [
            QueryRequest(
                attack.build_query(phase.privileges, phase.uids, phase.gids, surface),
                budget=budget,
                spec=attack.query_spec(
                    phase.privileges, phase.uids, phase.gids, surface
                ),
            )
            for phase in phases
        ]
        vulnerable = sum(
            phase.instruction_count
            for phase, report in zip(phases, self.engine.run_queries(requests))
            if report.verdict is Verdict.VULNERABLE
        )
        return vulnerable / total

    def exposure_table(
        self, budget: SearchBudget = DEFAULT_MULTIPROCESS_BUDGET
    ) -> Dict[str, float]:
        """Combined exposure per modeled attack, by attack name."""
        return {
            attack.name: self.combined_exposure(attack, budget)
            for attack in ALL_ATTACKS
        }

    def render(self) -> str:
        chunks = []
        for report in self.reports:
            chunks.append(report.render())
        return "\n\n".join(chunks)


def analyze_multiprocess(
    spec: ProgramSpec, verdict_store=None
) -> MultiProcessAnalysis:
    """Compile, transform, instrument and run ``spec`` with per-process
    ChronoPriv recorders (main process + every ``spawn_wait`` child).

    ``verdict_store`` (a path or an open :class:`repro.rosa.store.
    SharedVerdictStore`) backs the analysis's query engine with the
    fleet-wide L2, so exposure tables across concurrent studies share
    their searches.
    """
    module = compile_source(spec.source, spec.name)
    transform_module(module, spec.permitted)
    instrument_module(module)
    verify_module(module)

    kernel = build_kernel(refactored_ownership=spec.refactored_fs)
    process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
    vm = interpreter_class()(
        module, kernel, process, argv=list(spec.argv), stdin=list(spec.stdin)
    )
    vm.env.update(
        {key: list(value) if isinstance(value, list) else value
         for key, value in spec.env.items()}
    )
    if spec.setup is not None:
        spec.setup(kernel, vm)

    main_recorder = ChronoRecorder(spec.name, process)
    main_recorder.attach(vm, kernel)
    child_recorders: List[ChronoRecorder] = []

    def on_child(child_vm) -> None:
        recorder = ChronoRecorder(
            f"{spec.name}-child{len(child_recorders) + 1}", child_vm.process
        )
        recorder.attach(child_vm, kernel)
        child_recorders.append(recorder)

    vm.child_observers.append(on_child)
    exit_code = vm.run()
    if exit_code != spec.expected_exit:
        raise RuntimeError(
            f"{spec.name}: workload exited with {exit_code}, "
            f"expected {spec.expected_exit}; stdout={vm.stdout!r}"
        )
    reports = [main_recorder.report()] + [
        recorder.report() for recorder in child_recorders
    ]
    analysis = MultiProcessAnalysis(
        spec=spec,
        module=module,
        reports=reports,
        stdout=vm.stdout,
        exit_code=exit_code,
    )
    if verdict_store is not None:
        if isinstance(verdict_store, (str, os.PathLike)):
            from repro.rosa.store import SharedVerdictStore

            verdict_store = SharedVerdictStore(verdict_store)
        analysis.engine.store = verdict_store
    return analysis
