"""The PrivAnalyzer pipeline: AutoPriv → ChronoPriv → ROSA (Figure 1).

:class:`PrivAnalyzer` drives the three stages over one
:class:`~repro.programs.common.ProgramSpec`:

1. compile the PrivC source, run the AutoPriv transform (insert
   ``priv_remove`` at privilege-death points plus the prctl lockdown),
   and add ChronoPriv's counting instrumentation;
2. execute the instrumented program on a fresh simulated machine with
   the paper's workload, recording privilege/credential phases;
3. for every observed phase and every modeled attack, build and check a
   ROSA query, yielding the ✓/✗/⊙ verdict grid of Tables III and V.
"""

from __future__ import annotations

import dataclasses
import logging
import os
from typing import Dict, List, Optional, Sequence

from repro.autopriv import TransformReport, transform_module
from repro.chronopriv import (
    ChronoPhase,
    ChronoRecorder,
    ChronoReport,
    InstrumentationReport,
    instrument_module,
)
from repro.core.attacks import ALL_ATTACKS, Attack
from repro.core.extract import syscalls_used
from repro.frontend import compile_source
from repro.ir import Module, verify_module
from repro.oskernel.setup import build_kernel
from repro.programs.common import ProgramSpec
from repro.rewriting import SearchBudget
from repro.rosa.engine import ParallelPolicy, QueryCache, QueryEngine, QueryRequest
from repro.rosa.query import RosaReport, Verdict
from repro.telemetry import Telemetry
from repro.vm import Interpreter, interpreter_class

logger = logging.getLogger("repro.pipeline")


@dataclasses.dataclass
class PhaseAnalysis:
    """One Table III row: a phase and its per-attack verdicts."""

    phase: ChronoPhase
    verdicts: Dict[int, RosaReport]

    def vulnerable_to(self, attack_id: int) -> bool:
        report = self.verdicts.get(attack_id)
        return report is not None and report.verdict is Verdict.VULNERABLE

    def vulnerable_to_any(self) -> bool:
        return any(self.vulnerable_to(attack_id) for attack_id in self.verdicts)

    def symbols(self) -> str:
        return " ".join(
            self.verdicts[attack_id].verdict.symbol for attack_id in sorted(self.verdicts)
        )


@dataclasses.dataclass
class ProgramAnalysis:
    """Everything PrivAnalyzer learned about one program."""

    spec: ProgramSpec
    module: Module
    transform: TransformReport
    instrumentation: InstrumentationReport
    chrono: ChronoReport
    syscalls: frozenset
    phases: List[PhaseAnalysis]
    exit_code: int
    stdout: List[str]

    # -- the paper's headline metrics -------------------------------------------

    def vulnerability_window(self, attack_id: int, timeout_vulnerable: bool = False) -> float:
        """Fraction (0–1) of dynamic instructions executed while the
        program was vulnerable to ``attack_id``.

        ``timeout_vulnerable`` counts ⊙ phases as vulnerable; the paper
        counts them as invulnerable (§VII-D2), the default here.
        """
        if self.chrono.total == 0:
            return 0.0
        vulnerable = 0
        for phase_analysis in self.phases:
            report = phase_analysis.verdicts.get(attack_id)
            if report is None:
                continue
            hit = report.verdict is Verdict.VULNERABLE or (
                timeout_vulnerable and report.verdict is Verdict.TIMEOUT
            )
            if hit:
                vulnerable += phase_analysis.phase.instruction_count
        return vulnerable / self.chrono.total

    def invulnerable_window(self) -> float:
        """Fraction of instructions in phases invulnerable to *all* attacks."""
        if self.chrono.total == 0:
            return 1.0
        safe = sum(
            phase_analysis.phase.instruction_count
            for phase_analysis in self.phases
            if not phase_analysis.vulnerable_to_any()
        )
        return safe / self.chrono.total

    def render_table(self) -> str:
        """A Table III / Table V style text table."""
        attack_ids = sorted(self.phases[0].verdicts) if self.phases else []
        header = (
            f"{'Name':<20} {'Privileges':<58} {'UID r,e,s':<15} {'GID r,e,s':<15} "
            f"{'Dyn. Instr. Count':>22}  " + " ".join(str(a) for a in attack_ids)
        )
        lines = [header, "-" * len(header)]
        for phase_analysis in self.phases:
            phase = phase_analysis.phase
            lines.append(
                f"{phase.name:<20} {phase.privileges.describe():<58} "
                f"{phase.describe_uids():<15} {phase.describe_gids():<15} "
                f"{phase.instruction_count:>12,} ({phase.percent:5.2f}%)  "
                + phase_analysis.symbols()
            )
        return "\n".join(lines)


class PrivAnalyzer:
    """The tool: measure how effectively one program uses Linux privileges."""

    def __init__(
        self,
        attacks: Sequence[Attack] = ALL_ATTACKS,
        budget: Optional[SearchBudget] = None,
        indirect_targets_filter: str = "address-taken",
        message_repeat: int = 1,
        optimize: bool = False,
        telemetry: Optional[Telemetry] = None,
        engine: Optional[QueryEngine] = None,
        use_query_cache: bool = True,
        query_cache_path: Optional[str] = None,
        parallel: Optional[ParallelPolicy] = None,
        progress=None,
        progress_interval: Optional[int] = None,
        reduction: bool = True,
        profiler=None,
        capsules: bool = True,
        verdict_store=None,
    ) -> None:
        self.attacks = tuple(attacks)
        self.budget = budget or SearchBudget(max_states=200_000, max_seconds=60.0)
        self.indirect_targets_filter = indirect_targets_filter
        self.message_repeat = message_repeat
        self.optimize = optimize
        #: Observability sink: spans per pipeline stage, VM/search metrics,
        #: and (when its ``audit`` is set) a kernel syscall audit trail.
        self.telemetry = telemetry or Telemetry.disabled()
        #: Optional :class:`repro.telemetry.Profiler`.  When live it flows
        #: into the query engine (per-rule / reduction-phase search
        #: attribution) and swaps the dynamic stage onto
        #: :class:`repro.vm.ProfilingInterpreter` for per-opcode cost.
        #: Verdicts and exposure tables are bit-identical either way.
        self.profiler = profiler
        #: The ROSA query engine: dedupes/caches/schedules the phase × attack
        #: queries.  Phases sharing a credential tuple search once, and a
        #: shared engine carries answers across programs/table regenerations.
        #: ``use_query_cache=False`` degrades to plain per-query searches.
        if engine is None:
            cache = (
                QueryCache(path=query_cache_path) if use_query_cache else None
            )
            engine_kwargs = {} if progress_interval is None else {
                "progress_interval": progress_interval
            }
            #: ``verdict_store`` is the fleet-wide L2 (see
            #: :mod:`repro.rosa.store`): a store object, or a directory
            #: path to open one at.  Sibling analyzers — other processes,
            #: sweep workers, ``privanalyzer serve`` handlers — sharing
            #: the directory compute each distinct search exactly once.
            if isinstance(verdict_store, (str, os.PathLike)):
                from repro.rosa.store import SharedVerdictStore

                verdict_store = SharedVerdictStore(verdict_store)
            engine = QueryEngine(
                budget=self.budget,
                cache=cache,
                parallel=parallel,
                telemetry=self.telemetry,
                progress=progress,
                reduction=reduction,
                profiler=profiler,
                capsules=capsules,
                store=verdict_store,
                **engine_kwargs,
            )
        self.engine = engine

    # -- stage 1: compile + AutoPriv + ChronoPriv ---------------------------------

    def compile(self, spec: ProgramSpec) -> tuple:
        """Compile the spec's source and run both compiler stages."""
        from repro.ir.passes import optimize_module

        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        with tracer.span("compile", program=spec.name):
            with tracer.span("frontend.compile"):
                module = compile_source(spec.source, spec.name)
            if self.optimize:
                with tracer.span("ir.optimize"):
                    optimize_module(module)
            with tracer.span("autopriv.transform") as span:
                transform = transform_module(
                    module,
                    spec.permitted,
                    indirect_targets_filter=self.indirect_targets_filter,
                )
                span.set_attribute("insertions", transform.insertion_count)
            for pass_name, seconds in transform.timings.items():
                metrics.histogram(f"autopriv.{pass_name}_seconds").observe(seconds)
            with tracer.span("chronopriv.instrument") as span:
                instrumentation = instrument_module(module)
                span.set_attribute("blocks", instrumentation.blocks_instrumented)
            with tracer.span("ir.verify"):
                verify_module(module)
        logger.debug(
            "%s: compiled (%d priv_remove insertions, %d blocks instrumented)",
            spec.name, transform.insertion_count, instrumentation.blocks_instrumented,
        )
        return module, transform, instrumentation

    # -- stage 2: dynamic analysis --------------------------------------------------

    def run_dynamic(self, spec: ProgramSpec, module: Module) -> tuple:
        """Execute the instrumented program with the spec's workload."""
        with self.telemetry.tracer.span("chronopriv-run", program=spec.name) as span:
            kernel = build_kernel(refactored_ownership=spec.refactored_fs)
            if self.telemetry.audit is not None:
                kernel.enable_audit(self.telemetry.audit)
            process = kernel.spawn(spec.uid, spec.gid, permitted=spec.permitted)
            vm_class = interpreter_class()
            profiling = (
                self.profiler is not None
                and self.profiler.enabled
                and vm_class is Interpreter
            )
            if profiling:
                # Per-opcode attribution, but only over the stock class —
                # a custom interpreter (testkit oracles) wins outright.
                from repro.vm import ProfilingInterpreter

                vm_class = ProfilingInterpreter
            vm = vm_class(
                module, kernel, process, argv=list(spec.argv), stdin=list(spec.stdin),
                metrics=self.telemetry.metrics,
            )
            if profiling:
                vm.attach(self.profiler)
            vm.env.update(spec.env)
            recorder = ChronoRecorder(spec.name, process)
            recorder.attach(vm, kernel)
            if spec.setup is not None:
                spec.setup(kernel, vm)
            if profiling:
                profiler = self.profiler
                measured_before = sum(
                    record.seconds
                    for stack, record in profiler.records.items()
                    if len(stack) == 2 and stack[0] == "vm"
                )
                start = profiler.clock()
                exit_code = vm.run()
                elapsed = profiler.clock() - start
                profiler.account(("vm",), elapsed)
                measured = sum(
                    record.seconds
                    for stack, record in profiler.records.items()
                    if len(stack) == 2 and stack[0] == "vm"
                ) - measured_before
                # Dispatch-loop bookkeeping (block/index checks, budget,
                # handler lookup) sits between the timed handler windows;
                # account the remainder so the vm root is 100% attributed
                # without pretending it was timed (cf. rosa.search.loop).
                remainder = elapsed - measured
                if remainder > 0.0:
                    profiler.account(("vm", "interp.loop"), remainder)
                    profiler.count(("vm", "interp.loop"), "derived")
            else:
                exit_code = vm.run()
            span.set_attribute("instructions", vm.executed_instructions)
            span.set_attribute("exit_code", exit_code)
        logger.debug(
            "%s: workload ran %d instructions, exit %d",
            spec.name, vm.executed_instructions, exit_code,
        )
        return recorder.report(), exit_code, vm.stdout

    # -- stage 3: bounded model checking ----------------------------------------------

    def check_phase(
        self, phase: ChronoPhase, program_syscalls: frozenset
    ) -> PhaseAnalysis:
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        verdicts: Dict[int, RosaReport] = {}
        with tracer.span("rosa.check-phase", phase=phase.name):
            requests = []
            for attack in self.attacks:
                query = attack.build_query(
                    phase.privileges,
                    phase.uids,
                    phase.gids,
                    program_syscalls,
                    repeat=self.message_repeat,
                    label=f"{phase.name}/attack{attack.attack_id}",
                )
                spec = attack.query_spec(
                    phase.privileges,
                    phase.uids,
                    phase.gids,
                    program_syscalls,
                    repeat=self.message_repeat,
                    label=f"{phase.name}/attack{attack.attack_id}",
                )
                requests.append(
                    QueryRequest(query, budget=self.budget, spec=spec)
                )
            reports = self.engine.run_queries(requests)
            for attack, report in zip(self.attacks, reports):
                verdicts[attack.attack_id] = report
                metrics.counter("rosa.queries").inc()
                metrics.counter(f"rosa.verdict.{report.verdict.value}").inc()
                metrics.histogram("rosa.query_seconds").observe(report.elapsed)
                metrics.histogram("rosa.states_seen").observe(report.states_seen)
                metrics.gauge("rosa.peak_frontier").set_max(report.stats.peak_frontier)
        return PhaseAnalysis(phase=phase, verdicts=verdicts)

    # -- the whole pipeline ----------------------------------------------------------------

    def analyze(self, spec: ProgramSpec) -> ProgramAnalysis:
        with self.telemetry.tracer.span("pipeline.analyze", program=spec.name) as span:
            module, transform, instrumentation = self.compile(spec)
            chrono, exit_code, stdout = self.run_dynamic(spec, module)
            if exit_code != spec.expected_exit:
                raise RuntimeError(
                    f"{spec.name}: workload exited with {exit_code}, "
                    f"expected {spec.expected_exit}; stdout={stdout!r}"
                )
            with self.telemetry.tracer.span("extract.syscalls"):
                program_syscalls = syscalls_used(module)
            phases = [
                self.check_phase(phase, program_syscalls) for phase in chrono.phases
            ]
            span.set_attribute("phases", len(phases))
        logger.info(
            "%s: %d phases, %d ROSA queries",
            spec.name, len(phases), len(phases) * len(self.attacks),
        )
        return ProgramAnalysis(
            spec=spec,
            module=module,
            transform=transform,
            instrumentation=instrumentation,
            chrono=chrono,
            syscalls=program_syscalls,
            phases=phases,
            exit_code=exit_code,
            stdout=stdout,
        )
