"""Risk-report aggregation and export.

Developers consume PrivAnalyzer output as tables; CI pipelines want
machine-readable artefacts.  This module renders a
:class:`~repro.core.pipeline.ProgramAnalysis` (or a set of them) as
Markdown, CSV or a plain-Python dictionary (JSON-ready), and computes
the cross-program summary the paper's Tables III/V bottom lines give.
"""

from __future__ import annotations

import io
import json
from typing import Dict, Iterable, List

from repro.caps import POWERFUL_CAPABILITIES
from repro.core.pipeline import ProgramAnalysis


def analysis_to_dict(analysis: ProgramAnalysis) -> Dict:
    """A JSON-ready summary of one program's analysis."""
    phases = []
    for phase_analysis in analysis.phases:
        phase = phase_analysis.phase
        phases.append(
            {
                "name": phase.name,
                "privileges": [str(cap) for cap in phase.privileges],
                "uids": list(phase.uids),
                "gids": list(phase.gids),
                "instructions": phase.instruction_count,
                "percent": round(phase.percent, 4),
                "verdicts": {
                    str(attack_id): report.verdict.value
                    for attack_id, report in sorted(phase_analysis.verdicts.items())
                },
            }
        )
    return {
        "program": analysis.spec.name,
        "description": analysis.spec.description,
        "permitted": [str(cap) for cap in analysis.spec.permitted],
        "syscalls": sorted(analysis.syscalls),
        "total_instructions": analysis.chrono.total,
        "phases": phases,
        "windows": {
            str(attack_id): round(analysis.vulnerability_window(attack_id), 6)
            for attack_id in sorted(analysis.phases[0].verdicts)
        }
        if analysis.phases
        else {},
        "invulnerable_window": round(analysis.invulnerable_window(), 6),
    }


def to_json(analysis: ProgramAnalysis, indent: int = 2) -> str:
    """Serialise one analysis to JSON text."""
    return json.dumps(analysis_to_dict(analysis), indent=indent, sort_keys=True)


def to_markdown(analysis: ProgramAnalysis) -> str:
    """A GitHub-flavoured Markdown table for one program."""
    attack_ids = sorted(analysis.phases[0].verdicts) if analysis.phases else []
    lines = [
        f"### {analysis.spec.name}",
        "",
        analysis.spec.description,
        "",
        "| Phase | Privileges | UID (r,e,s) | GID (r,e,s) | Instructions | "
        + " | ".join(f"A{attack_id}" for attack_id in attack_ids)
        + " |",
        "|" + "---|" * (5 + len(attack_ids)),
    ]
    for phase_analysis in analysis.phases:
        phase = phase_analysis.phase
        verdicts = " | ".join(
            phase_analysis.verdicts[attack_id].verdict.symbol for attack_id in attack_ids
        )
        lines.append(
            f"| {phase.name} | {phase.privileges.describe()} "
            f"| {phase.describe_uids()} | {phase.describe_gids()} "
            f"| {phase.instruction_count:,} ({phase.percent:.2f}%) | {verdicts} |"
        )
    lines.append("")
    lines.append(
        f"Invulnerable to all modeled attacks for "
        f"**{analysis.invulnerable_window():.1%}** of execution."
    )
    return "\n".join(lines)


def to_csv(analyses: Iterable[ProgramAnalysis]) -> str:
    """One CSV row per (program, phase), ready for spreadsheets."""
    import csv

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "program", "phase", "privileges", "ruid", "euid", "suid",
            "rgid", "egid", "sgid", "instructions", "percent",
            "attack1", "attack2", "attack3", "attack4",
        ]
    )
    for analysis in analyses:
        for phase_analysis in analysis.phases:
            phase = phase_analysis.phase
            verdicts = [
                phase_analysis.verdicts[attack_id].verdict.value
                if attack_id in phase_analysis.verdicts
                else ""
                for attack_id in (1, 2, 3, 4)
            ]
            writer.writerow(
                [
                    analysis.spec.name,
                    phase.name,
                    phase.privileges.describe(),
                    *phase.uids,
                    *phase.gids,
                    phase.instruction_count,
                    f"{phase.percent:.4f}",
                    *verdicts,
                ]
            )
    return buffer.getvalue()


def refactoring_hints(analysis: ProgramAnalysis) -> List[str]:
    """Actionable observations, modelled on the paper's §VII-D guidance.

    Highlights powerful capabilities with long live ranges and phases
    whose credentials alone (no capability) keep attacks possible.
    """
    hints: List[str] = []
    if not analysis.phases:
        return hints
    total = analysis.chrono.total or 1

    # Long-lived powerful capabilities.
    held: Dict = {}
    for phase_analysis in analysis.phases:
        for cap in phase_analysis.phase.privileges:
            held[cap] = held.get(cap, 0) + phase_analysis.phase.instruction_count
    for cap, instructions in sorted(held.items(), key=lambda item: -item[1]):
        share = instructions / total
        if cap in POWERFUL_CAPABILITIES and share > 0.25:
            hints.append(
                f"{cap} stays permitted for {share:.0%} of execution — "
                "consider changing credentials early (§VII-E a) so it can "
                "be removed sooner."
            )

    # Vulnerable phases with no capability at all: ownership problem.
    for phase_analysis in analysis.phases:
        phase = phase_analysis.phase
        if not phase.privileges and phase_analysis.vulnerable_to_any():
            hints.append(
                f"{phase.name} is vulnerable with an empty permitted set: "
                "the process credentials alone grant access — create a "
                "special user for the files involved (§VII-E b)."
            )

    # The last capability standing is the refactoring target the paper
    # points at (e.g. CAP_SETUID for su).
    privileged_phases = [p for p in analysis.phases if p.phase.privileges]
    if privileged_phases:
        last = privileged_phases[-1].phase
        hints.append(
            f"Last privilege(s) to die: {last.privileges.describe()} — "
            "shrinking their live range yields the largest window reduction."
        )
    return hints


def summary_table(analyses: Iterable[ProgramAnalysis]) -> str:
    """The cross-program bottom line: one row per program."""
    rows = [
        f"{'program':<12} {'attack1':>8} {'attack2':>8} {'attack3':>8} "
        f"{'attack4':>8} {'all-clear':>10}"
    ]
    for analysis in analyses:
        rows.append(
            f"{analysis.spec.name:<12} "
            + " ".join(
                f"{analysis.vulnerability_window(attack_id):>8.1%}"
                for attack_id in (1, 2, 3, 4)
            )
            + f" {analysis.invulnerable_window():>10.1%}"
        )
    return "\n".join(rows)
