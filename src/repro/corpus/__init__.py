"""Scenario corpus + peer-group least-privilege analysis.

The paper evaluates five hand-picked programs; this package scales the
same pipeline to hundreds.  Three layers (see docs/CORPUS.md):

:mod:`repro.corpus.build`
    Seeded, reproducible corpus generation — family-conditioned
    generated programs (``testkit.generators.gen_corpus_program_case``)
    plus the hand-modeled exemplars and the paper's built-in programs —
    materialized to a manifest + ``.privc`` sources by
    ``privanalyzer corpus build``.
:mod:`repro.corpus.profile`
    The :class:`PrivilegeProfile` extractor: one pipeline run (or its
    run ledger — the two paths agree bit-identically) condensed into a
    feature vector of exposure windows, capability hold-times,
    credential shape and syscall surfaces.
:mod:`repro.corpus.peers`
    Deterministic seeded k-medoids over a documented profile distance,
    outlier scoring, and per-capability "holds X longer than its peers"
    findings — the ``privanalyzer peers`` report.

:mod:`repro.corpus.store` caches profiles content-addressed so a
200-program sweep (:mod:`repro.corpus.sweep`) is incremental: a warm
rerun profiles nothing.
"""

from repro.corpus.build import (
    CorpusEntry,
    CorpusSpec,
    generate_corpus,
    load_corpus,
    materialize_corpus,
)
from repro.corpus.peers import PeerReport, peer_analysis, profile_distance
from repro.corpus.profile import (
    PROFILE_SCHEMA_VERSION,
    PrivilegeProfile,
    profile_from_analysis,
    profile_from_ledger,
    profile_key,
)
from repro.corpus.store import ProfileStore
from repro.corpus.sweep import sweep_corpus

__all__ = [
    "CorpusEntry",
    "CorpusSpec",
    "PeerReport",
    "PrivilegeProfile",
    "PROFILE_SCHEMA_VERSION",
    "ProfileStore",
    "generate_corpus",
    "load_corpus",
    "materialize_corpus",
    "peer_analysis",
    "profile_distance",
    "profile_from_analysis",
    "profile_from_ledger",
    "profile_key",
    "sweep_corpus",
]
