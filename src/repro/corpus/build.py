"""Seeded corpus generation and materialization.

A corpus is a list of :class:`CorpusEntry` — the paper's built-in
programs, the hand-modeled exemplars, and family-conditioned generated
programs — that is a pure function of a :class:`CorpusSpec`: same spec,
same corpus, byte for byte, on any machine and under any
``PYTHONHASHSEED`` (the generators canonicalize every unordered pool
before sampling).

``materialize_corpus`` writes the corpus to disk as
``manifest.json`` + one ``programs/<name>.privc`` source (and, for
generated entries, the ``<name>.json`` case that rebuilds it); the
manifest round-trips through :func:`load_corpus` so sweeps and the
peers CLI work from a directory without regenerating anything.
"""

from __future__ import annotations

import dataclasses
import json
import random
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.programs import EXEMPLAR_NAMES, PROGRAM_MODULES, spec_by_name
from repro.programs.common import ProgramSpec
from repro.testkit.generators import (
    PROGRAM_FAMILIES,
    build_program_spec,
    gen_corpus_program_case,
    render_program,
)

#: Bump when the manifest layout changes.
CORPUS_SCHEMA_VERSION = 1

#: Peer-group family of each built-in (paper) program.  ping, passwd
#: and su are setuid binaries; the sshd variants and thttpd are
#: long-running daemons.
BUILTIN_FAMILIES = {
    "passwd": "setuid-helper",
    "passwdRef": "setuid-helper",
    "ping": "setuid-helper",
    "sshd": "daemon",
    "sshdPrivsep": "daemon",
    "su": "setuid-helper",
    "suRef": "setuid-helper",
    "thttpd": "daemon",
}

#: The paper's pre-refactor programs are the hand-planted violators the
#: peers report must flag (§VII-C: passwd holds its DAC caps for ~99 %
#: of execution; su stays CAP_SETUID for the whole session).
BUILTIN_VIOLATORS = frozenset({"passwd", "su"})


@dataclasses.dataclass(frozen=True)
class CorpusSpec:
    """Everything that determines a corpus, hashably."""

    seed: int = 0
    #: Number of *generated* programs (built-ins/exemplars ride on top).
    size: int = 200
    families: Tuple[str, ...] = PROGRAM_FAMILIES
    #: Number of generated least-privilege violators to plant, spread
    #: evenly over the corpus (each hoards its family's VIOLATOR_CAP).
    violators: int = 5
    include_exemplars: bool = True
    include_builtins: bool = True


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One corpus member: a name, its peer family, and how to build it."""

    name: str
    family: str
    #: ``builtin`` / ``exemplar`` (both rebuilt via ``spec_by_name``) or
    #: ``generated`` (rebuilt from ``case``).
    kind: str
    violator: bool = False
    case: Optional[Dict[str, Any]] = None

    def spec(self) -> ProgramSpec:
        if self.kind == "generated":
            if self.case is None:
                raise ValueError(f"generated entry {self.name} has no case")
            return build_program_spec(self.case, name=self.name)
        return spec_by_name(self.name)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "name": self.name,
            "family": self.family,
            "kind": self.kind,
            "violator": self.violator,
        }
        if self.case is not None:
            record["case"] = self.case
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "CorpusEntry":
        return cls(
            name=str(record["name"]),
            family=str(record["family"]),
            kind=str(record["kind"]),
            violator=bool(record.get("violator", False)),
            case=record.get("case"),
        )


def generate_corpus(spec: CorpusSpec) -> List[CorpusEntry]:
    """The corpus of ``spec``, deterministically.

    Generated entries cycle through the families; the ``violators``
    planted ones are spread evenly across the generated range so every
    corpus slice of meaningful size contains at least one.  Entry names
    encode family, seed and index, so two corpora never collide in a
    shared profile store.
    """
    entries: List[CorpusEntry] = []
    if spec.include_builtins:
        for name in sorted(BUILTIN_FAMILIES):
            if name in PROGRAM_MODULES:
                entries.append(
                    CorpusEntry(
                        name=name,
                        family=BUILTIN_FAMILIES[name],
                        kind="builtin",
                        violator=name in BUILTIN_VIOLATORS,
                    )
                )
    if spec.include_exemplars:
        for name in sorted(EXEMPLAR_NAMES):
            module = PROGRAM_MODULES[name]
            entries.append(
                CorpusEntry(
                    name=name,
                    family=module.FAMILY,
                    kind="exemplar",
                    violator=bool(getattr(module, "VIOLATOR", False)),
                )
            )

    if not spec.families:
        raise ValueError("corpus spec needs at least one family")
    unknown = sorted(set(spec.families) - set(PROGRAM_FAMILIES))
    if unknown:
        raise ValueError(
            f"unknown families {unknown}; known: {', '.join(PROGRAM_FAMILIES)}"
        )
    violator_indices = set()
    if spec.violators > 0 and spec.size > 0:
        stride = max(1, spec.size // spec.violators)
        violator_indices = {
            index * stride for index in range(spec.violators) if index * stride < spec.size
        }
    for index in range(spec.size):
        family = spec.families[index % len(spec.families)]
        violator = index in violator_indices
        rng = random.Random(f"{spec.seed}:corpus:{family}:{index}:{violator}")
        case = gen_corpus_program_case(rng, family=family, violator=violator)
        entries.append(
            CorpusEntry(
                name=f"{family}-{spec.seed:08x}-{index:03d}",
                family=family,
                kind="generated",
                violator=violator,
                case=case,
            )
        )
    return entries


# -- on-disk form --------------------------------------------------------------


def materialize_corpus(
    entries: Sequence[CorpusEntry],
    out_dir: Union[str, Path],
    spec: Optional[CorpusSpec] = None,
) -> Path:
    """Write ``manifest.json`` + ``programs/*.privc`` under ``out_dir``.

    Every byte written is a pure function of the entries (sorted keys,
    fixed separators, rendered sources) — the PYTHONHASHSEED regression
    test diffs two independently-built trees byte for byte.
    """
    root = Path(out_dir)
    programs = root / "programs"
    programs.mkdir(parents=True, exist_ok=True)
    for entry in entries:
        program_spec = entry.spec()
        (programs / f"{entry.name}.privc").write_text(program_spec.source)
        if entry.case is not None:
            (programs / f"{entry.name}.json").write_text(
                json.dumps(entry.case, indent=2, sort_keys=True) + "\n"
            )
    manifest = {
        "schema": CORPUS_SCHEMA_VERSION,
        "spec": dataclasses.asdict(spec) if spec else None,
        "entries": [entry.to_dict() for entry in entries],
    }
    (root / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return root


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    """The entries of a materialized corpus directory."""
    root = Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(
            f"{root} is not a corpus directory (no manifest.json)"
        )
    manifest = json.loads(manifest_path.read_text())
    schema = manifest.get("schema")
    if schema != CORPUS_SCHEMA_VERSION:
        raise ValueError(
            f"corpus schema {schema!r} is not supported "
            f"(this tool reads version {CORPUS_SCHEMA_VERSION})"
        )
    return [CorpusEntry.from_dict(record) for record in manifest["entries"]]
