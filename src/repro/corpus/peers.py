"""Peer-group analysis: deterministic clustering + outlier findings.

"Apples and Oranges" observes that software clustered into peer groups
by apparent functionality makes least-privilege violators stand out as
outliers.  Profiles (:mod:`repro.corpus.profile`) are the feature
vectors; this module supplies the documented distance, a seeded
k-medoids, and the report behind ``privanalyzer peers``.

Distance (documented in docs/CORPUS.md, weights are module constants):

* ``W_WINDOWS`` × L1 over the union of per-attack vulnerability windows
* ``W_INVULNERABLE`` × |Δ invulnerable window|
* per-capability hold-time L1 over the union of held capabilities,
  where each :data:`~repro.caps.POWERFUL_CAPABILITIES` member weighs
  ``W_CAP_POWERFUL`` and the rest ``W_CAP_ORDINARY`` — hoarding
  CAP_SYS_ADMIN must move a profile further than hoarding CAP_KILL
* ``W_ROOT`` × |Δ root-euid fraction|
* ``W_SURFACE`` × (1 − Jaccard) for each of the static and dynamic
  syscall surfaces

Everything downstream is deterministic: profiles are sorted by program
name before anything else happens, medoid seeding uses an explicit
``random.Random(seed)``, and every argmin tie breaks toward the lowest
index.  Same seed + same corpus ⇒ bit-identical assignments and outlier
scores, whatever the sweep's ``--jobs`` mode was.
"""

from __future__ import annotations

import dataclasses
import json
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.caps import POWERFUL_CAPABILITIES
from repro.corpus.profile import PrivilegeProfile

W_WINDOWS = 1.0
W_INVULNERABLE = 1.0
W_CAP_POWERFUL = 2.0
W_CAP_ORDINARY = 1.0
W_ROOT = 0.5
W_SURFACE = 1.0

#: Guards the outlier-score denominator in degenerate clusters where
#: the median member sits on the medoid.
EPSILON = 1e-9

#: A member must hold a capability at least this much longer (as a
#: fraction of execution) than the peer median to earn a finding.
HOLD_FINDING_MARGIN = 0.25

_POWERFUL_NAMES = frozenset(str(cap) for cap in POWERFUL_CAPABILITIES)


def _l1(a: Dict[str, float], b: Dict[str, float]) -> float:
    total = 0.0
    for key in sorted(set(a) | set(b)):
        total += abs(a.get(key, 0.0) - b.get(key, 0.0))
    return total


def _cap_hold_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    total = 0.0
    for cap in sorted(set(a) | set(b)):
        weight = W_CAP_POWERFUL if cap in _POWERFUL_NAMES else W_CAP_ORDINARY
        total += weight * abs(a.get(cap, 0.0) - b.get(cap, 0.0))
    return total


def _jaccard_distance(a: Sequence[str], b: Sequence[str]) -> float:
    first, second = set(a), set(b)
    if not first and not second:
        return 0.0
    return 1.0 - len(first & second) / len(first | second)


def profile_distance(a: PrivilegeProfile, b: PrivilegeProfile) -> float:
    """The documented weighted distance between two profiles."""
    return (
        W_WINDOWS * _l1(a.windows, b.windows)
        + W_INVULNERABLE * abs(a.invulnerable_window - b.invulnerable_window)
        + _cap_hold_distance(a.cap_hold, b.cap_hold)
        + W_ROOT * abs(a.root_euid_fraction - b.root_euid_fraction)
        + W_SURFACE * _jaccard_distance(a.static_surface, b.static_surface)
        + W_SURFACE * _jaccard_distance(a.dynamic_surface, b.dynamic_surface)
    )


# -- seeded k-medoids ----------------------------------------------------------


def _assign(
    matrix: List[List[float]], medoids: List[int]
) -> List[int]:
    """Nearest medoid per point; ties break toward the lowest medoid."""
    assignment = []
    for index in range(len(matrix)):
        best = min(medoids, key=lambda m: (matrix[index][m], m))
        assignment.append(best)
    return assignment


def _update_medoid(matrix: List[List[float]], members: List[int]) -> int:
    """The member minimizing total intra-cluster distance (lowest-index tie)."""
    return min(
        members,
        key=lambda candidate: (
            sum(matrix[candidate][other] for other in members),
            candidate,
        ),
    )


def k_medoids(
    matrix: List[List[float]],
    k: int,
    seed: int = 0,
    max_iterations: int = 64,
) -> Tuple[List[int], List[int]]:
    """Seeded k-medoids over a precomputed distance matrix.

    Returns ``(medoids, assignment)`` where ``assignment[i]`` is the
    medoid index point ``i`` belongs to.  Fully deterministic: the
    initial medoids come from ``random.Random(seed)`` and every
    subsequent step is an argmin with an explicit index tie-break.
    """
    count = len(matrix)
    if count == 0:
        return [], []
    k = max(1, min(k, count))
    rng = random.Random(seed)
    medoids = sorted(rng.sample(range(count), k))
    for _ in range(max_iterations):
        assignment = _assign(matrix, medoids)
        updated = []
        for medoid in medoids:
            members = [i for i, owner in enumerate(assignment) if owner == medoid]
            updated.append(_update_medoid(matrix, members) if members else medoid)
        updated = sorted(set(updated))
        if updated == medoids:
            break
        medoids = updated
    return medoids, _assign(matrix, medoids)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    count = len(ordered)
    if count == 0:
        return 0.0
    middle = count // 2
    if count % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


# -- the report ----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PeerFinding:
    """One "holds X longer than its peers" observation."""

    program: str
    capability: str
    hold: float
    peer_median: float

    def describe(self) -> str:
        return (
            f"{self.program} holds {self.capability} for {self.hold:.0%} of "
            f"execution vs a peer median of {self.peer_median:.0%}"
        )


@dataclasses.dataclass
class PeerReport:
    """Clusters, per-program outlier scores, and capability findings."""

    seed: int
    clusters: List[Dict[str, Any]]
    outliers: List[Dict[str, Any]]
    findings: List[PeerFinding]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "seed": self.seed,
            "clusters": self.clusters,
            "outliers": self.outliers,
            "findings": [dataclasses.asdict(finding) for finding in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def render_text(self, top: int = 10) -> str:
        lines = [f"peer groups (seed {self.seed}): {len(self.clusters)} clusters"]
        for cluster in self.clusters:
            members = ", ".join(
                member["program"] for member in cluster["members"]
            )
            lines.append(f"  [{cluster['medoid']}] {members}")
        lines.append("")
        lines.append(f"top outliers (of {len(self.outliers)} programs):")
        width = max(
            (len(entry["program"]) for entry in self.outliers[:top]), default=1
        )
        for entry in self.outliers[:top]:
            lines.append(
                f"  {entry['program']:<{width}}  score {entry['score']:8.3f}  "
                f"peer group [{entry['medoid']}]"
            )
        if self.findings:
            lines.append("")
            lines.append("capability findings:")
            for finding in self.findings:
                lines.append(f"  {finding.describe()}")
        return "\n".join(lines)


def peer_analysis(
    profiles: Sequence[PrivilegeProfile],
    k: Optional[int] = None,
    seed: int = 0,
    capability: Optional[str] = None,
    telemetry=None,
) -> PeerReport:
    """Cluster ``profiles`` and rank least-privilege outliers.

    ``k`` defaults to ``max(2, round(sqrt(n/2)))`` — small corpora get a
    handful of groups, a 200-program corpus about ten.  ``capability``
    restricts the findings section to one capability (the
    "who holds CAP_SYS_ADMIN longer than their peers" query); scores and
    clusters are unaffected.  ``telemetry``, when live, records the
    ``peers.analyze`` span and ``rosa.peers.*`` counters; it never
    influences the result.
    """
    if telemetry is None:
        from repro.telemetry import Telemetry

        telemetry = Telemetry.disabled()
    with telemetry.tracer.span("peers.analyze", profiles=len(profiles), seed=seed):
        report = _peer_analysis(profiles, k=k, seed=seed, capability=capability)
    telemetry.metrics.counter("rosa.peers.programs").inc(len(profiles))
    telemetry.metrics.counter("rosa.peers.clusters").inc(len(report.clusters))
    telemetry.metrics.counter("rosa.peers.findings").inc(len(report.findings))
    return report


def _peer_analysis(
    profiles: Sequence[PrivilegeProfile],
    k: Optional[int],
    seed: int,
    capability: Optional[str],
) -> PeerReport:
    ordered = sorted(profiles, key=lambda profile: profile.program)
    count = len(ordered)
    if count == 0:
        return PeerReport(seed=seed, clusters=[], outliers=[], findings=[])
    if k is None:
        k = max(2, int(round((count / 2) ** 0.5)))

    matrix = [
        [profile_distance(a, b) for b in ordered] for a in ordered
    ]
    medoids, assignment = k_medoids(matrix, k=k, seed=seed)

    clusters: List[Dict[str, Any]] = []
    outliers: List[Dict[str, Any]] = []
    findings: List[PeerFinding] = []
    for medoid in medoids:
        members = [i for i, owner in enumerate(assignment) if owner == medoid]
        distances = [matrix[i][medoid] for i in members]
        scale = _median(distances) + EPSILON
        member_records = []
        for i, distance in zip(members, distances):
            score = round(distance / scale, 6)
            member_records.append(
                {"program": ordered[i].program, "score": score}
            )
            outliers.append(
                {
                    "program": ordered[i].program,
                    "score": score,
                    "distance": round(distance, 6),
                    "medoid": ordered[medoid].program,
                }
            )
        clusters.append(
            {
                "medoid": ordered[medoid].program,
                "members": member_records,
            }
        )
        findings.extend(
            _cap_findings([ordered[i] for i in members], capability)
        )

    outliers.sort(key=lambda entry: (-entry["score"], entry["program"]))
    findings.sort(key=lambda f: (-(f.hold - f.peer_median), f.program, f.capability))
    return PeerReport(
        seed=seed, clusters=clusters, outliers=outliers, findings=findings
    )


def _cap_findings(
    members: List[PrivilegeProfile], capability: Optional[str]
) -> List[PeerFinding]:
    """Per-capability hold-time excesses within one cluster."""
    if len(members) < 2:
        return []
    caps = sorted({cap for profile in members for cap in profile.cap_hold})
    if capability is not None:
        caps = [cap for cap in caps if cap == capability]
    findings = []
    for cap in caps:
        holds = [profile.cap_hold.get(cap, 0.0) for profile in members]
        median = _median(holds)
        for profile, hold in zip(members, holds):
            if hold > median + HOLD_FINDING_MARGIN:
                findings.append(
                    PeerFinding(
                        program=profile.program,
                        capability=cap,
                        hold=round(hold, 6),
                        peer_median=round(median, 6),
                    )
                )
    return findings
