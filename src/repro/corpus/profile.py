"""The PrivilegeProfile extractor: one run condensed to a feature vector.

A profile is built from exactly the two JSON structures a run ledger
already persists — ``exposure.json`` (:func:`repro.core.report.
analysis_to_dict`) and ``syscalls.json`` (the audit trail grouped by
credential tuple).  The live path serialises the in-memory analysis
through the *same* structures, so ``profile_from_analysis`` and
``profile_from_ledger`` agree bit-identically by construction: there is
no second extraction code path to drift (the 7th fuzz-oracle family in
``testkit.oracles`` holds this invariant under generated programs).

Feature vector (schema v1):

``windows``
    Per-attack vulnerability window (fraction of dynamic instructions),
    straight from the exposure table.
``invulnerable_window``
    Fraction of execution invulnerable to every modeled attack.
``cap_hold``
    Per-capability hold time: the fraction of dynamic instructions
    during which the capability stayed *permitted* (AutoPriv's live
    range, ChronoPriv's phase weighting) — the paper's Table III
    columns as a vector.  This is the peers CLI's headline feature:
    "holds CAP_SYS_ADMIN longer than its peers" is a ``cap_hold``
    comparison.
``root_euid_fraction``
    Fraction of instructions executed with effective uid 0.
``cred_tuples``
    Number of distinct (uids, gids) credential tuples across phases.
``static_surface``
    The compiler's reachable-syscall over-approximation (every syscall
    intrinsic in the program text).
``dynamic_surface``
    Syscalls actually observed by the kernel audit trail, all
    credential phases merged (empty when the run carried no audit).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional

from repro.core.ledger import _syscalls_by_credential
from repro.core.pipeline import ProgramAnalysis
from repro.core.report import analysis_to_dict
from repro.programs.common import ProgramSpec
from repro.rewriting import SearchBudget

#: Bump when the feature vector's layout changes; cached profiles with
#: another schema are recomputed, never reinterpreted.
PROFILE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class PrivilegeProfile:
    """One program's privilege feature vector (schema v1)."""

    program: str
    schema: int
    total_instructions: int
    phase_count: int
    windows: Dict[str, float]
    invulnerable_window: float
    cap_hold: Dict[str, float]
    root_euid_fraction: float
    cred_tuples: int
    static_surface: List[str]
    dynamic_surface: List[str]

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON form (sorted keys, plain types)."""
        return {
            "program": self.program,
            "schema": self.schema,
            "total_instructions": self.total_instructions,
            "phase_count": self.phase_count,
            "windows": dict(sorted(self.windows.items())),
            "invulnerable_window": self.invulnerable_window,
            "cap_hold": dict(sorted(self.cap_hold.items())),
            "root_euid_fraction": self.root_euid_fraction,
            "cred_tuples": self.cred_tuples,
            "static_surface": list(self.static_surface),
            "dynamic_surface": list(self.dynamic_surface),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PrivilegeProfile":
        return cls(
            program=str(data["program"]),
            schema=int(data["schema"]),
            total_instructions=int(data["total_instructions"]),
            phase_count=int(data["phase_count"]),
            windows={str(k): float(v) for k, v in data["windows"].items()},
            invulnerable_window=float(data["invulnerable_window"]),
            cap_hold={str(k): float(v) for k, v in data["cap_hold"].items()},
            root_euid_fraction=float(data["root_euid_fraction"]),
            cred_tuples=int(data["cred_tuples"]),
            static_surface=[str(s) for s in data["static_surface"]],
            dynamic_surface=[str(s) for s in data["dynamic_surface"]],
        )


def profile_from_exposure(
    exposure: Dict[str, Any], syscalls: Optional[Dict[str, Any]] = None
) -> PrivilegeProfile:
    """The profile of one run, from its exposure (+ optional audit) dicts.

    This is the *single* extraction routine; both public entry points
    delegate here with the same structures, which is what makes the
    live and ledger paths bit-identical.
    """
    phases = exposure.get("phases", [])
    total = int(exposure.get("total_instructions", 0))
    weight_base = total if total > 0 else 1

    cap_instructions: Dict[str, int] = {}
    root_instructions = 0
    creds = set()
    for phase in phases:
        instructions = int(phase["instructions"])
        for cap in phase["privileges"]:
            cap_instructions[cap] = cap_instructions.get(cap, 0) + instructions
        uids = list(phase["uids"])
        gids = list(phase["gids"])
        if len(uids) > 1 and int(uids[1]) == 0:
            root_instructions += instructions
        creds.add((tuple(uids), tuple(gids)))

    dynamic: set = set()
    if syscalls:
        for names in syscalls.get("by_credential", {}).values():
            dynamic.update(names)

    return PrivilegeProfile(
        program=str(exposure.get("program", "?")),
        schema=PROFILE_SCHEMA_VERSION,
        total_instructions=total,
        phase_count=len(phases),
        windows={
            str(attack): round(float(window), 6)
            for attack, window in exposure.get("windows", {}).items()
        },
        invulnerable_window=round(float(exposure.get("invulnerable_window", 0.0)), 6),
        cap_hold={
            cap: round(instructions / weight_base, 6)
            for cap, instructions in sorted(cap_instructions.items())
        },
        root_euid_fraction=round(root_instructions / weight_base, 6),
        cred_tuples=len(creds),
        static_surface=sorted(exposure.get("syscalls", [])),
        dynamic_surface=sorted(dynamic),
    )


def profile_from_analysis(
    analysis: ProgramAnalysis, audit=None
) -> PrivilegeProfile:
    """The profile of a live pipeline run.

    Serialises through ``analysis_to_dict`` / ``_syscalls_by_credential``
    — the exact structures the ledger persists — then extracts.  The
    JSON round-trip the ledger adds on top is exact for every type
    involved, so the result matches :func:`profile_from_ledger` on the
    same run bit for bit.
    """
    exposure = analysis_to_dict(analysis)
    syscalls = _syscalls_by_credential(audit) if audit is not None else None
    return profile_from_exposure(exposure, syscalls)


def profile_from_ledger(ledger) -> PrivilegeProfile:
    """The profile of a captured run (:class:`repro.core.ledger.RunLedger`)."""
    if ledger.exposure is None:
        raise ValueError(
            f"ledger {ledger.root} has no exposure.json — profiles need an "
            "analyze-kind ledger"
        )
    return profile_from_exposure(ledger.exposure, ledger.syscalls)


# -- content addressing --------------------------------------------------------


def profile_key(spec: ProgramSpec, budget: Optional[SearchBudget] = None) -> str:
    """The content address of a (program, analysis configuration) pair.

    Everything that can change the profile goes into the hash: the
    source text, launch credentials and workload, the filesystem
    variant, the setup hook's identity, the search budget, and the
    profile schema itself.  Two sweeps over an unchanged corpus
    therefore hit the store for every program; editing one program's
    source invalidates exactly that entry.
    """
    setup = spec.setup
    payload = {
        "schema": PROFILE_SCHEMA_VERSION,
        "name": spec.name,
        "source": spec.source,
        "permitted": sorted(str(cap) for cap in spec.permitted),
        "uid": spec.uid,
        "gid": spec.gid,
        "argv": list(spec.argv),
        "stdin": list(spec.stdin),
        "env": {str(k): spec.env[k] for k in sorted(spec.env)},
        "refactored_fs": spec.refactored_fs,
        "setup": f"{setup.__module__}.{setup.__qualname__}" if setup else None,
        "budget": {
            "max_states": budget.max_states if budget else None,
            "max_seconds": budget.max_seconds if budget else None,
        },
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
