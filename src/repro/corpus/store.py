"""Content-addressed profile cache backing incremental corpus sweeps.

One JSON file per profile, named by :func:`repro.corpus.profile.
profile_key` — the sha256 of everything that can change the result.  A
warm sweep over an unchanged corpus therefore reads every profile from
disk and runs the pipeline zero times; editing one program invalidates
exactly its entry.  Writes are atomic (tempfile + ``os.replace``),
mirroring the query cache's persistence discipline, so a crashed sweep
never leaves a torn profile behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.corpus.profile import PROFILE_SCHEMA_VERSION, PrivilegeProfile


class ProfileStore:
    """A directory of content-addressed ``<key>.json`` profiles."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[PrivilegeProfile]:
        """The cached profile under ``key``, or None (counts a miss)."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("schema") != PROFILE_SCHEMA_VERSION:
            # A stale layout is a miss, not an error: the sweep simply
            # recomputes and overwrites it.
            self.misses += 1
            return None
        self.hits += 1
        return PrivilegeProfile.from_dict(data)

    def put(self, key: str, profile: PrivilegeProfile) -> None:
        data = json.dumps(profile.to_dict(), indent=2, sort_keys=True) + "\n"
        handle, temp_path = tempfile.mkstemp(
            dir=str(self.root), prefix=".profile-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w") as stream:
                stream.write(data)
            os.replace(temp_path, self._path(key))
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    def stats(self) -> Dict[str, Any]:
        total = self.hits + self.misses
        return {
            "entries": len(list(self.root.glob("*.json"))),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
        }
