"""The corpus sweep: profile every entry, incrementally, optionally pooled.

Per entry: compute the content address (:func:`repro.corpus.profile.
profile_key`), consult the :class:`~repro.corpus.store.ProfileStore`,
and only on a miss run the full pipeline — with a *private* audited
telemetry bundle so the dynamic syscall surface lands in the profile —
then cache the result.  A warm rerun over an unchanged corpus therefore
profiles nothing.

``--jobs N`` fans cache misses over a thread or process pool.  Process
workers receive only picklable payloads: generated entries ship their
case dict, built-ins and exemplars ship just their *name* and are
rebuilt via ``spec_by_name`` inside the worker (specs carry setup
callables that don't pickle).  Results are keyed back by name, so the
sweep's output order — and every downstream cluster — is independent of
pool scheduling.

Telemetry: ``rosa.corpus.programs`` / ``rosa.corpus.cache_hits`` /
``rosa.corpus.profiled`` counters and a ``corpus.sweep`` span (one
``corpus.profile`` child per miss in serial mode) on the caller's
bundle.
"""

from __future__ import annotations

import concurrent.futures
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import PrivAnalyzer
from repro.corpus.build import CorpusEntry
from repro.corpus.profile import (
    PrivilegeProfile,
    profile_from_analysis,
    profile_key,
)
from repro.corpus.store import ProfileStore
from repro.programs import spec_by_name
from repro.rewriting import SearchBudget
from repro.telemetry import Telemetry

#: The sweep's default per-program search budget — matches the fuzz
#: harness's: generous for these small programs, bounded for CI.
DEFAULT_SWEEP_BUDGET = SearchBudget(max_states=20_000, max_seconds=10.0)


def _entry_payload(
    entry: CorpusEntry,
    budget: SearchBudget,
    verdict_store: Optional[str] = None,
) -> Dict[str, Any]:
    """A picklable description a pool worker can rebuild the task from."""
    return {
        "name": entry.name,
        "kind": entry.kind,
        "case": entry.case,
        "max_states": budget.max_states,
        "max_seconds": budget.max_seconds,
        "verdict_store": verdict_store,
    }


def _profile_task(payload: Dict[str, Any]) -> Tuple[str, Dict[str, Any]]:
    """Analyze one program and extract its profile (pool worker body).

    Module-level and payload-driven so it pickles into process workers;
    each call builds its own analyzer and audited telemetry, so pooled
    tasks never share mutable state.  A ``verdict_store`` path in the
    payload opens the fleet-wide shared store in the worker: distinct
    ROSA searches across all sweep workers (and any concurrent server)
    run exactly once fleet-wide.
    """
    if payload["kind"] == "generated":
        from repro.testkit.generators import build_program_spec

        spec = build_program_spec(payload["case"], name=payload["name"])
    else:
        spec = spec_by_name(payload["name"])
    budget = SearchBudget(
        max_states=payload["max_states"], max_seconds=payload["max_seconds"]
    )
    telemetry = Telemetry.enabled(audit=True)
    analyzer = PrivAnalyzer(
        budget=budget,
        telemetry=telemetry,
        verdict_store=payload.get("verdict_store"),
    )
    analysis = analyzer.analyze(spec)
    profile = profile_from_analysis(analysis, audit=telemetry.audit)
    return payload["name"], profile.to_dict()


def sweep_corpus(
    entries: Sequence[CorpusEntry],
    store: Optional[ProfileStore] = None,
    jobs: int = 1,
    mode: str = "thread",
    budget: SearchBudget = DEFAULT_SWEEP_BUDGET,
    telemetry: Optional[Telemetry] = None,
    verdict_store: Optional[str] = None,
) -> List[PrivilegeProfile]:
    """Profiles for every corpus entry, in entry order.

    ``store=None`` disables caching (every entry is profiled live).
    ``jobs`` > 1 pools the cache misses; ``mode`` picks ``thread`` or
    ``process`` workers (``serial`` ignores ``jobs``).
    ``verdict_store`` (a directory path) additionally backs every
    worker's query engine with the fleet-wide shared verdict store —
    profile-cache misses still rerun the pipeline, but their ROSA
    searches are served for every (phase × attack) pair the fleet has
    already answered.
    """
    if mode not in ("serial", "thread", "process"):
        raise ValueError(f"unknown sweep mode {mode!r}")
    telemetry = telemetry or Telemetry.disabled()
    programs = telemetry.metrics.counter("rosa.corpus.programs")
    cache_hits = telemetry.metrics.counter("rosa.corpus.cache_hits")
    profiled = telemetry.metrics.counter("rosa.corpus.profiled")

    with telemetry.tracer.span("corpus.sweep", entries=len(entries), mode=mode):
        results: Dict[str, PrivilegeProfile] = {}
        keys: Dict[str, str] = {}
        misses: List[CorpusEntry] = []
        for entry in entries:
            programs.inc()
            if store is not None:
                key = profile_key(entry.spec(), budget=budget)
                keys[entry.name] = key
                cached = store.get(key)
                if cached is not None:
                    cache_hits.inc()
                    results[entry.name] = cached
                    continue
            misses.append(entry)

        if misses:
            if jobs <= 1 or mode == "serial":
                produced = []
                for entry in misses:
                    with telemetry.tracer.span("corpus.profile", program=entry.name):
                        produced.append(_profile_task(_entry_payload(entry, budget, verdict_store)))
            else:
                executor_type = (
                    concurrent.futures.ThreadPoolExecutor
                    if mode == "thread"
                    else concurrent.futures.ProcessPoolExecutor
                )
                payloads = [
                    _entry_payload(entry, budget, verdict_store)
                    for entry in misses
                ]
                with telemetry.tracer.span(
                    "corpus.profile.pool", tasks=len(payloads), workers=jobs
                ):
                    with executor_type(max_workers=jobs) as pool:
                        produced = list(pool.map(_profile_task, payloads))
            for name, data in produced:
                profiled.inc()
                profile = PrivilegeProfile.from_dict(data)
                results[name] = profile
                if store is not None:
                    store.put(keys[name], profile)

    return [results[entry.name] for entry in entries]
