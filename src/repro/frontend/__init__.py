"""PrivC: the mini-C frontend the test programs are written in.

``compile_source`` runs the whole pipeline: lexer → parser → semantic
analysis → IR lowering → verification.
"""

from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.lower import LowerError, compile_source
from repro.frontend.parser import ParseError, parse
from repro.frontend.sema import SemaError, analyze, builtin_constants

__all__ = [
    "LexError",
    "LowerError",
    "ParseError",
    "SemaError",
    "Token",
    "analyze",
    "builtin_constants",
    "compile_source",
    "parse",
    "tokenize",
]
