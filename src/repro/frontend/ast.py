"""Abstract syntax of PrivC, the mini-C frontend language.

PrivC is the C subset the paper's test programs are modelled in: global
variables, functions, integer/string/function-pointer values, full
control flow and calls (direct and through function pointers).  Types are
``int`` (i64), ``str`` (an opaque string handle) and ``fnptr``.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

# -- positions -----------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Pos:
    """Line/column of a token, for diagnostics."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


# -- expressions ----------------------------------------------------------------


@dataclasses.dataclass
class Expr:
    pos: Pos


@dataclasses.dataclass
class IntLit(Expr):
    value: int


@dataclasses.dataclass
class StrLit(Expr):
    value: str


@dataclasses.dataclass
class Ident(Expr):
    name: str


@dataclasses.dataclass
class AddrOf(Expr):
    """``&f`` — take the address of function ``f``."""

    name: str


@dataclasses.dataclass
class Unary(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclasses.dataclass
class Binary(Expr):
    op: str
    lhs: Expr
    rhs: Expr


@dataclasses.dataclass
class CallExpr(Expr):
    """A call; ``callee`` is an expression (an Ident names a function or a
    fnptr variable — sema decides which)."""

    callee: Expr
    args: List[Expr]


# -- statements -------------------------------------------------------------------


@dataclasses.dataclass
class Stmt:
    pos: Pos


@dataclasses.dataclass
class Block(Stmt):
    statements: List[Stmt]


@dataclasses.dataclass
class VarDecl(Stmt):
    type_name: str
    name: str
    init: Optional[Expr]


@dataclasses.dataclass
class Assign(Stmt):
    name: str
    value: Expr


@dataclasses.dataclass
class If(Stmt):
    cond: Expr
    then_body: Block
    else_body: Optional[Block]


@dataclasses.dataclass
class While(Stmt):
    cond: Expr
    body: Block


@dataclasses.dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    step: Optional[Stmt]
    body: Block


@dataclasses.dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclasses.dataclass
class Break(Stmt):
    pass


@dataclasses.dataclass
class Continue(Stmt):
    pass


@dataclasses.dataclass
class ExprStmt(Stmt):
    expr: Expr


# -- declarations ------------------------------------------------------------------


@dataclasses.dataclass
class GlobalDecl:
    pos: Pos
    name: str
    init: int


@dataclasses.dataclass
class FuncDecl:
    pos: Pos
    return_type: str  # "int", "str", "fnptr" or "void"
    name: str
    params: List[Tuple[str, str]]  # (type_name, name)
    body: Optional[Block]  # None for extern declarations


@dataclasses.dataclass
class Program:
    globals: List[GlobalDecl]
    functions: List[FuncDecl]
