"""The PrivC lexer."""

from __future__ import annotations

import dataclasses
from typing import Iterator, List

from repro.frontend.ast import Pos

KEYWORDS = frozenset(
    {
        "int",
        "str",
        "fnptr",
        "void",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "extern",
    }
)

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "&&",
    "||",
    "==",
    "!=",
    "<=",
    ">=",
    "<<",
    ">>",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
]


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str  # "int", "string", "ident", "keyword", "op", "eof"
    text: str
    value: int = 0
    pos: Pos = Pos(0, 0)

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r} @{self.pos})"


class LexError(SyntaxError):
    def __init__(self, message: str, pos: Pos) -> None:
        super().__init__(f"{pos}: {message}")
        self.pos = pos


def tokenize(source: str) -> List[Token]:
    """Turn PrivC source into a token list ending with an EOF token."""
    tokens: List[Token] = []
    line, column = 1, 1
    index = 0
    length = len(source)

    def pos() -> Pos:
        return Pos(line, column)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        # whitespace
        if char in " \t\r\n":
            advance()
            continue
        # comments: // and /* */
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                advance()
            continue
        if source.startswith("/*", index):
            start = pos()
            advance(2)
            while index < length and not source.startswith("*/", index):
                advance()
            if index >= length:
                raise LexError("unterminated block comment", start)
            advance(2)
            continue
        # string literal
        if char == '"':
            start = pos()
            advance()
            chars: List[str] = []
            while index < length and source[index] != '"':
                if source[index] == "\\":
                    advance()
                    if index >= length:
                        break
                    escape = source[index]
                    chars.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(escape, escape))
                    advance()
                else:
                    chars.append(source[index])
                    advance()
            if index >= length:
                raise LexError("unterminated string literal", start)
            advance()  # closing quote
            tokens.append(Token("string", "".join(chars), pos=start))
            continue
        # number (decimal, hex 0x, octal 0o — file modes read naturally)
        if char.isdigit():
            start = pos()
            begin = index
            if source.startswith("0x", index) or source.startswith("0X", index):
                advance(2)
                while index < length and source[index] in "0123456789abcdefABCDEF":
                    advance()
                text = source[begin:index]
                value = int(text, 16)
            elif source.startswith("0o", index) or source.startswith("0O", index):
                advance(2)
                while index < length and source[index] in "01234567":
                    advance()
                text = source[begin:index]
                value = int(text[2:], 8)
            else:
                while index < length and source[index].isdigit():
                    advance()
                text = source[begin:index]
                value = int(text)
            tokens.append(Token("int", text, value, start))
            continue
        # identifier / keyword
        if char.isalpha() or char == "_":
            start = pos()
            begin = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance()
            text = source[begin:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, pos=start))
            continue
        # operator
        for op in OPERATORS:
            if source.startswith(op, index):
                start = pos()
                advance(len(op))
                tokens.append(Token("op", op, pos=start))
                break
        else:
            raise LexError(f"unexpected character {char!r}", pos())
    tokens.append(Token("eof", "", pos=pos()))
    return tokens
