"""Lowering: PrivC AST → IR.

Local variables become ``alloca`` slots with loads/stores (no SSA
construction needed, as in clang -O0); short-circuit ``&&``/``||`` lower
to control flow through a result slot; comparisons produce ``i1`` values
that are materialised to ``i64`` 0/1 with ``select`` when used as
integers.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.frontend import ast
from repro.frontend.parser import parse
from repro.frontend.sema import SemaResult, analyze
from repro.ir import (
    BOOL,
    BasicBlock,
    Function,
    FunctionRef,
    I64,
    IRBuilder,
    Module,
    PTR,
    VOID,
    Value,
    verify_module,
)

_TYPE_MAP = {"int": I64, "str": PTR, "fnptr": PTR, "void": VOID}


class LowerError(ValueError):
    pass


class _FunctionLowering:
    def __init__(self, lowering: "_ModuleLowering", func: ast.FuncDecl) -> None:
        self.module_lowering = lowering
        self.func = func
        self.function = lowering.module.get_function(func.name)
        self.builder = IRBuilder()
        #: Scope stack: name -> alloca slot.
        self.scopes: List[Dict[str, Value]] = []
        #: (break target, continue target) stack.
        self.loop_targets: List = []
        self._terminated = False

    # -- scope ------------------------------------------------------------------

    def lookup_slot(self, name: str) -> Optional[Value]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return self.module_lowering.module.globals.get(name)

    # -- entry ------------------------------------------------------------------

    def lower(self) -> None:
        entry = self.function.add_block("entry")
        self.builder.position_at_end(entry)
        self.scopes.append({})
        for argument, (_, name) in zip(self.function.arguments, self.func.params):
            slot = self.builder.alloca(name)
            self.builder.store(argument, slot)
            self.scopes[-1][name] = slot
        self._terminated = False
        self.lower_block(self.func.body, new_scope=False)
        if not self._terminated:
            if self.function.return_type is VOID:
                self.builder.ret()
            else:
                self.builder.ret(0)
        self.scopes.pop()

    def _start_block(self, block: BasicBlock) -> None:
        self.builder.position_at_end(block)
        self._terminated = False

    def _terminate_with_jump(self, target: BasicBlock) -> None:
        if not self._terminated:
            self.builder.jmp(target)
        self._terminated = True

    # -- statements -----------------------------------------------------------------

    def lower_block(self, block: ast.Block, new_scope: bool = True) -> None:
        if new_scope:
            self.scopes.append({})
        for statement in block.statements:
            if self._terminated:
                # Unreachable source after return/break: drop it (clang
                # similarly emits nothing reachable).
                break
            self.lower_statement(statement)
        if new_scope:
            self.scopes.pop()

    def lower_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self.lower_block(statement)
        elif isinstance(statement, ast.VarDecl):
            slot = self.builder.alloca(statement.name)
            init_value = (
                self.lower_expr(statement.init) if statement.init is not None else 0
            )
            self.builder.store(init_value, slot)
            self.scopes[-1][statement.name] = slot
        elif isinstance(statement, ast.Assign):
            slot = self.lookup_slot(statement.name)
            if slot is None:
                raise LowerError(f"{statement.pos}: no slot for {statement.name!r}")
            self.builder.store(self.lower_expr(statement.value), slot)
        elif isinstance(statement, ast.If):
            self.lower_if(statement)
        elif isinstance(statement, ast.While):
            self.lower_while(statement)
        elif isinstance(statement, ast.For):
            self.lower_for(statement)
        elif isinstance(statement, ast.Return):
            if statement.value is not None:
                self.builder.ret(self.lower_expr(statement.value))
            else:
                self.builder.ret()
            self._terminated = True
        elif isinstance(statement, ast.Break):
            break_target, _ = self.loop_targets[-1]
            self.builder.jmp(break_target)
            self._terminated = True
        elif isinstance(statement, ast.Continue):
            _, continue_target = self.loop_targets[-1]
            self.builder.jmp(continue_target)
            self._terminated = True
        elif isinstance(statement, ast.ExprStmt):
            self.lower_expr(statement.expr, want_value=False)
        else:  # pragma: no cover
            raise LowerError(f"unknown statement {type(statement).__name__}")

    def lower_if(self, statement: ast.If) -> None:
        cond = self.lower_condition(statement.cond)
        then_block = self.function.add_block("if.then")
        merge_block = self.function.add_block("if.end")
        else_block = (
            self.function.add_block("if.else") if statement.else_body else merge_block
        )
        self.builder.br(cond, then_block, else_block)
        self._start_block(then_block)
        self.lower_block(statement.then_body)
        self._terminate_with_jump(merge_block)
        if statement.else_body is not None:
            self._start_block(else_block)
            self.lower_block(statement.else_body)
            self._terminate_with_jump(merge_block)
        self._start_block(merge_block)

    def lower_while(self, statement: ast.While) -> None:
        cond_block = self.function.add_block("while.cond")
        body_block = self.function.add_block("while.body")
        end_block = self.function.add_block("while.end")
        self._terminate_with_jump(cond_block)
        self._start_block(cond_block)
        cond = self.lower_condition(statement.cond)
        self.builder.br(cond, body_block, end_block)
        self._start_block(body_block)
        self.loop_targets.append((end_block, cond_block))
        self.lower_block(statement.body)
        self.loop_targets.pop()
        self._terminate_with_jump(cond_block)
        self._start_block(end_block)

    def lower_for(self, statement: ast.For) -> None:
        self.scopes.append({})
        if statement.init is not None:
            self.lower_statement(statement.init)
        cond_block = self.function.add_block("for.cond")
        body_block = self.function.add_block("for.body")
        step_block = self.function.add_block("for.step")
        end_block = self.function.add_block("for.end")
        self._terminate_with_jump(cond_block)
        self._start_block(cond_block)
        if statement.cond is not None:
            cond = self.lower_condition(statement.cond)
            self.builder.br(cond, body_block, end_block)
        else:
            self.builder.jmp(body_block)
        self._start_block(body_block)
        self.loop_targets.append((end_block, step_block))
        self.lower_block(statement.body)
        self.loop_targets.pop()
        self._terminate_with_jump(step_block)
        self._start_block(step_block)
        if statement.step is not None:
            self.lower_statement(statement.step)
        self._terminate_with_jump(cond_block)
        self._start_block(end_block)
        self.scopes.pop()

    # -- expressions -----------------------------------------------------------------

    def _to_int(self, value: Value) -> Value:
        """Materialise an i1 into an i64 0/1."""
        if value.type is BOOL:
            return self.builder.select(value, 1, 0)
        return value

    def _to_bool(self, value: Value) -> Value:
        """Turn an i64 (or i1) into an i1 condition."""
        if value.type is BOOL:
            return value
        return self.builder.icmp("ne", value, 0)

    def lower_condition(self, expr: ast.Expr) -> Value:
        """Lower an expression used as a branch condition (yields i1)."""
        return self._to_bool(self.lower_expr(expr, as_condition=True))

    def lower_expr(self, expr: ast.Expr, want_value: bool = True, as_condition: bool = False) -> Value:
        builder = self.builder
        if isinstance(expr, ast.IntLit):
            return builder.value(expr.value)
        if isinstance(expr, ast.StrLit):
            return builder.value(expr.value)
        if isinstance(expr, ast.Ident):
            constants = self.module_lowering.sema.constants
            if expr.name in constants and self.lookup_slot(expr.name) is None:
                return builder.value(constants[expr.name])
            slot = self.lookup_slot(expr.name)
            if slot is not None:
                return builder.load(slot, name=expr.name)
            # A bare function name evaluates to its address.
            function = self.module_lowering.module.functions.get(expr.name)
            if function is not None:
                return function.ref()
            raise LowerError(f"{expr.pos}: unresolved identifier {expr.name!r}")
        if isinstance(expr, ast.AddrOf):
            return self.module_lowering.module.get_function(expr.name).ref()
        if isinstance(expr, ast.Unary):
            operand = self.lower_expr(expr.operand)
            if expr.op == "-":
                return builder.sub(0, self._to_int(operand))
            if expr.op == "!":
                result = builder.icmp("eq", self._to_int(operand), 0)
                return result if as_condition else self._to_int(result)
            raise LowerError(f"{expr.pos}: unknown unary {expr.op}")
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr, as_condition)
        if isinstance(expr, ast.CallExpr):
            return self.lower_call(expr)
        raise LowerError(f"{expr.pos}: unknown expression {type(expr).__name__}")

    _CMP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge"}
    _ARITH = {
        "+": "add",
        "-": "sub",
        "*": "mul",
        "/": "sdiv",
        "%": "srem",
        "&": "and",
        "|": "or",
        "^": "xor",
        "<<": "shl",
        ">>": "lshr",
    }

    def lower_binary(self, expr: ast.Binary, as_condition: bool) -> Value:
        builder = self.builder
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr, as_condition)
        lhs = self._to_int(self.lower_expr(expr.lhs))
        rhs = self._to_int(self.lower_expr(expr.rhs))
        if expr.op in self._CMP:
            result = builder.icmp(self._CMP[expr.op], lhs, rhs)
            return result if as_condition else self._to_int(result)
        if expr.op in self._ARITH:
            return builder.binop(self._ARITH[expr.op], lhs, rhs)
        raise LowerError(f"{expr.pos}: unknown binary {expr.op}")

    def lower_short_circuit(self, expr: ast.Binary, as_condition: bool) -> Value:
        builder = self.builder
        result_slot = builder.alloca("sc.result")
        rhs_block = self.function.add_block("sc.rhs")
        short_block = self.function.add_block("sc.short")
        merge_block = self.function.add_block("sc.end")

        lhs_cond = self.lower_condition(expr.lhs)
        if expr.op == "&&":
            builder.br(lhs_cond, rhs_block, short_block)
            short_value = 0
        else:  # "||"
            builder.br(lhs_cond, short_block, rhs_block)
            short_value = 1
        self._start_block(rhs_block)
        rhs_cond = self.lower_condition(expr.rhs)
        builder.store(self._to_int(rhs_cond), result_slot)
        builder.jmp(merge_block)
        self._start_block(short_block)
        builder.store(short_value, result_slot)
        builder.jmp(merge_block)
        self._start_block(merge_block)
        loaded = builder.load(result_slot)
        return self._to_bool(loaded) if as_condition else loaded

    def lower_call(self, call: ast.CallExpr) -> Value:
        builder = self.builder
        args = [self._to_int(self.lower_expr(arg)) for arg in call.args]
        callee = call.callee
        if isinstance(callee, ast.Ident) and self.lookup_slot(callee.name) is None:
            function = self.module_lowering.module.functions.get(callee.name)
            if function is None:
                raise LowerError(f"{call.pos}: unknown function {callee.name!r}")
            return builder.call(function, args)
        # Indirect call through a fnptr expression.
        target = self.lower_expr(callee)
        return builder.call(target, args)


class _ModuleLowering:
    def __init__(self, sema: SemaResult, name: str) -> None:
        self.sema = sema
        self.module = Module(name)

    def lower(self) -> Module:
        for decl in self.sema.program.globals:
            self.module.add_global(decl.name, decl.init)
        # Declare every known function first so forward references resolve.
        defined = {}
        for func in self.sema.program.functions:
            info = self.sema.functions[func.name]
            if func.body is None:
                self._declare(info)
            else:
                ret = _TYPE_MAP[func.return_type]
                params = [_TYPE_MAP[ptype] for ptype, _ in func.params]
                names = [pname for _, pname in func.params]
                defined[func.name] = self.module.add_function(
                    func.name, ret, params, names
                )
        # Implicit externs discovered by sema (calls to intrinsics).
        for info in self.sema.functions.values():
            if info.is_extern and info.name not in self.module.functions:
                self._declare(info)
        for func in self.sema.program.functions:
            if func.body is not None:
                _FunctionLowering(self, func).lower()
        verify_module(self.module)
        return self.module

    def _declare(self, info) -> None:
        ret = _TYPE_MAP.get(info.return_type, I64)
        params = [_TYPE_MAP.get(ptype, I64) for ptype in info.param_types]
        self.module.declare(info.name, ret, params, vararg=getattr(info, "vararg", False))


def compile_source(source: str, name: str = "privc") -> Module:
    """The full pipeline: parse → analyze → lower → verify."""
    program = parse(source)
    sema = analyze(program)
    return _ModuleLowering(sema, name).lower()
