"""The PrivC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import ast
from repro.frontend.lexer import Token, tokenize

TYPE_NAMES = ("int", "str", "fnptr", "void")

#: Binary operator precedence (higher binds tighter), C-like.
PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    "<=": 7,
    ">": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}


class ParseError(SyntaxError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{token.pos}: {message} (got {token.kind} {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.index += 1
        return token

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        if self.at(kind, text):
            return self.advance()
        raise ParseError(f"expected {text or kind}", self.current)

    # -- toplevel -------------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        globals_: List[ast.GlobalDecl] = []
        functions: List[ast.FuncDecl] = []
        while not self.at("eof"):
            if self.accept("keyword", "extern"):
                functions.append(self._parse_extern())
                continue
            type_token = self.expect("keyword")
            if type_token.text not in TYPE_NAMES:
                raise ParseError("expected a type", type_token)
            name_token = self.expect("ident")
            if self.at("op", "("):
                functions.append(self._parse_function(type_token.text, name_token))
            else:
                globals_.append(self._parse_global(name_token))
        return ast.Program(globals_, functions)

    def _parse_extern(self) -> ast.FuncDecl:
        """``extern int open(str path, str flags);`` — explicit declaration."""
        type_token = self.expect("keyword")
        if type_token.text not in TYPE_NAMES:
            raise ParseError("expected a return type", type_token)
        name_token = self.expect("ident")
        params = self._parse_params()
        self.expect("op", ";")
        return ast.FuncDecl(name_token.pos, type_token.text, name_token.text, params, None)

    def _parse_global(self, name_token: Token) -> ast.GlobalDecl:
        init = 0
        if self.accept("op", "="):
            negative = self.accept("op", "-") is not None
            value_token = self.expect("int")
            init = -value_token.value if negative else value_token.value
        self.expect("op", ";")
        return ast.GlobalDecl(name_token.pos, name_token.text, init)

    def _parse_function(self, return_type: str, name_token: Token) -> ast.FuncDecl:
        params = self._parse_params()
        body = self._parse_block()
        return ast.FuncDecl(name_token.pos, return_type, name_token.text, params, body)

    def _parse_params(self) -> List[Tuple[str, str]]:
        self.expect("op", "(")
        params: List[Tuple[str, str]] = []
        if not self.at("op", ")"):
            while True:
                type_token = self.expect("keyword")
                if type_token.text not in TYPE_NAMES or type_token.text == "void":
                    raise ParseError("expected a parameter type", type_token)
                param_name = self.expect("ident")
                params.append((type_token.text, param_name.text))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params

    # -- statements --------------------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        open_token = self.expect("op", "{")
        statements: List[ast.Stmt] = []
        while not self.at("op", "}"):
            statements.append(self._parse_statement())
        self.expect("op", "}")
        return ast.Block(open_token.pos, statements)

    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "op" and token.text == "{":
            return self._parse_block()
        if token.kind == "keyword":
            if token.text in ("int", "str", "fnptr"):
                return self._parse_vardecl()
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            if token.text == "for":
                return self._parse_for()
            if token.text == "return":
                self.advance()
                value = None if self.at("op", ";") else self._parse_expr()
                self.expect("op", ";")
                return ast.Return(token.pos, value)
            if token.text == "break":
                self.advance()
                self.expect("op", ";")
                return ast.Break(token.pos)
            if token.text == "continue":
                self.advance()
                self.expect("op", ";")
                return ast.Continue(token.pos)
            raise ParseError("unexpected keyword", token)
        return self._parse_simple_statement(expect_semicolon=True)

    def _parse_vardecl(self) -> ast.VarDecl:
        type_token = self.advance()
        name_token = self.expect("ident")
        init = None
        if self.accept("op", "="):
            init = self._parse_expr()
        self.expect("op", ";")
        return ast.VarDecl(type_token.pos, type_token.text, name_token.text, init)

    def _parse_if(self) -> ast.If:
        token = self.expect("keyword", "if")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        then_body = self._parse_block()
        else_body: Optional[ast.Block] = None
        if self.accept("keyword", "else"):
            if self.at("keyword", "if"):
                # else-if chains: wrap the nested if in a synthetic block.
                nested = self._parse_if()
                else_body = ast.Block(nested.pos, [nested])
            else:
                else_body = self._parse_block()
        return ast.If(token.pos, cond, then_body, else_body)

    def _parse_while(self) -> ast.While:
        token = self.expect("keyword", "while")
        self.expect("op", "(")
        cond = self._parse_expr()
        self.expect("op", ")")
        return ast.While(token.pos, cond, self._parse_block())

    def _parse_for(self) -> ast.For:
        token = self.expect("keyword", "for")
        self.expect("op", "(")
        init: Optional[ast.Stmt] = None
        if not self.at("op", ";"):
            if self.at("keyword", "int") or self.at("keyword", "str") or self.at("keyword", "fnptr"):
                init = self._parse_vardecl()  # consumes the ';'
            else:
                init = self._parse_simple_statement(expect_semicolon=True)
        else:
            self.expect("op", ";")
        cond = None if self.at("op", ";") else self._parse_expr()
        self.expect("op", ";")
        step = None if self.at("op", ")") else self._parse_simple_statement(expect_semicolon=False)
        self.expect("op", ")")
        return ast.For(token.pos, init, cond, step, self._parse_block())

    def _parse_simple_statement(self, expect_semicolon: bool) -> ast.Stmt:
        """Assignment or expression statement."""
        token = self.current
        if token.kind == "ident" and self.tokens[self.index + 1].text == "=" and self.tokens[self.index + 1].kind == "op":
            # Plain assignment `name = expr` (== is a distinct token).
            name_token = self.advance()
            self.expect("op", "=")
            value = self._parse_expr()
            if expect_semicolon:
                self.expect("op", ";")
            return ast.Assign(name_token.pos, name_token.text, value)
        expr = self._parse_expr()
        if expect_semicolon:
            self.expect("op", ";")
        return ast.ExprStmt(token.pos, expr)

    # -- expressions (precedence climbing) ---------------------------------------------

    def _parse_expr(self, min_precedence: int = 1) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "op" or token.text not in PRECEDENCE:
                break
            precedence = PRECEDENCE[token.text]
            if precedence < min_precedence:
                break
            self.advance()
            rhs = self._parse_expr(precedence + 1)
            lhs = ast.Binary(token.pos, token.text, lhs, rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!"):
            self.advance()
            return ast.Unary(token.pos, token.text, self._parse_unary())
        if token.kind == "op" and token.text == "&":
            self.advance()
            name_token = self.expect("ident")
            return ast.AddrOf(token.pos, name_token.text)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self.at("op", "("):
            open_token = self.advance()
            args: List[ast.Expr] = []
            if not self.at("op", ")"):
                while True:
                    args.append(self._parse_expr())
                    if not self.accept("op", ","):
                        break
            self.expect("op", ")")
            expr = ast.CallExpr(open_token.pos, expr, args)
        return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int":
            self.advance()
            return ast.IntLit(token.pos, token.value)
        if token.kind == "string":
            self.advance()
            return ast.StrLit(token.pos, token.text)
        if token.kind == "ident":
            self.advance()
            return ast.Ident(token.pos, token.text)
        if token.kind == "op" and token.text == "(":
            self.advance()
            expr = self._parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError("expected an expression", token)


def parse(source: str) -> ast.Program:
    """Parse PrivC source into an AST."""
    return Parser(source).parse_program()
