"""Semantic analysis of PrivC programs.

Resolves names, checks calls and control flow, and exposes the builtin
constant vocabulary: ``CAP_*`` single-bit capability masks (so programs
write ``priv_raise(CAP_SETUID | CAP_CHOWN)``), signal numbers and the
``KEEP`` sentinel for ``setres[ug]id``.

Functions that are called but neither defined nor declared ``extern``
are implicitly declared external with the arity of the first call —
matching how the programs link against the VM's intrinsics table.  All
errors in a program are collected and reported together.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.caps import Capability
from repro.frontend import ast
from repro.oskernel import signals


def builtin_constants() -> Dict[str, int]:
    """The constant names every PrivC program sees."""
    constants: Dict[str, int] = {}
    for cap in Capability:
        constants[cap.name] = 1 << int(cap)
    for name in (
        "SIGHUP",
        "SIGINT",
        "SIGQUIT",
        "SIGKILL",
        "SIGUSR1",
        "SIGUSR2",
        "SIGPIPE",
        "SIGALRM",
        "SIGTERM",
        "SIGCHLD",
        "SIGTSTP",
    ):
        constants[name] = getattr(signals, name)
    constants["KEEP"] = -1
    return constants


class SemaError(ValueError):
    """All semantic errors found in a program, reported together."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__(
            "semantic errors:\n" + "\n".join(f"  - {problem}" for problem in problems)
        )
        self.problems = problems


@dataclasses.dataclass
class FunctionInfo:
    name: str
    return_type: str
    param_types: Tuple[str, ...]
    is_extern: bool
    #: Implicitly declared externs accept any argument count (like a
    #: C call through an empty () prototype).
    vararg: bool = False


@dataclasses.dataclass
class SemaResult:
    program: ast.Program
    functions: Dict[str, FunctionInfo]
    globals: Set[str]
    constants: Dict[str, int]


def analyze(program: ast.Program) -> SemaResult:
    """Check ``program``; returns the resolved tables or raises SemaError."""
    problems: List[str] = []
    constants = builtin_constants()
    globals_: Set[str] = set()
    functions: Dict[str, FunctionInfo] = {}

    for decl in program.globals:
        if decl.name in globals_:
            problems.append(f"{decl.pos}: duplicate global {decl.name!r}")
        if decl.name in constants:
            problems.append(f"{decl.pos}: global {decl.name!r} shadows a builtin constant")
        globals_.add(decl.name)

    for func in program.functions:
        if func.name in functions and not functions[func.name].is_extern:
            problems.append(f"{func.pos}: duplicate function {func.name!r}")
        functions[func.name] = FunctionInfo(
            func.name,
            func.return_type,
            tuple(ptype for ptype, _ in func.params),
            is_extern=func.body is None,
        )

    checker = _Checker(functions, globals_, constants, problems)
    for func in program.functions:
        if func.body is not None:
            checker.check_function(func)

    if problems:
        raise SemaError(problems)
    return SemaResult(program, functions, globals_, constants)


class _Checker:
    def __init__(
        self,
        functions: Dict[str, FunctionInfo],
        globals_: Set[str],
        constants: Dict[str, int],
        problems: List[str],
    ) -> None:
        self.functions = functions
        self.globals = globals_
        self.constants = constants
        self.problems = problems
        self.locals: List[Set[str]] = []
        self.loop_depth = 0
        self.current: Optional[ast.FuncDecl] = None

    # -- scope helpers ---------------------------------------------------------

    def _declared(self, name: str) -> bool:
        return (
            any(name in scope for scope in self.locals)
            or name in self.globals
            or name in self.constants
        )

    def _is_variable(self, name: str) -> bool:
        return any(name in scope for scope in self.locals) or name in self.globals

    def problem(self, pos: ast.Pos, message: str) -> None:
        self.problems.append(f"{pos}: {message}")

    # -- function / statements -----------------------------------------------------

    def check_function(self, func: ast.FuncDecl) -> None:
        self.current = func
        self.locals = [set()]
        seen_params: Set[str] = set()
        for _, name in func.params:
            if name in seen_params:
                self.problem(func.pos, f"duplicate parameter {name!r}")
            seen_params.add(name)
            self.locals[0].add(name)
        self.check_block(func.body)
        self.locals = []
        self.current = None

    def check_block(self, block: ast.Block) -> None:
        self.locals.append(set())
        for statement in block.statements:
            self.check_statement(statement)
        self.locals.pop()

    def check_statement(self, statement: ast.Stmt) -> None:
        if isinstance(statement, ast.Block):
            self.check_block(statement)
        elif isinstance(statement, ast.VarDecl):
            if statement.init is not None:
                self.check_expr(statement.init)
            if statement.name in self.locals[-1]:
                self.problem(statement.pos, f"redeclaration of {statement.name!r}")
            if statement.name in self.constants:
                self.problem(
                    statement.pos, f"{statement.name!r} shadows a builtin constant"
                )
            self.locals[-1].add(statement.name)
        elif isinstance(statement, ast.Assign):
            if not self._is_variable(statement.name):
                if statement.name in self.constants:
                    self.problem(statement.pos, f"cannot assign to constant {statement.name!r}")
                else:
                    self.problem(statement.pos, f"assignment to undeclared {statement.name!r}")
            self.check_expr(statement.value)
        elif isinstance(statement, ast.If):
            self.check_expr(statement.cond)
            self.check_block(statement.then_body)
            if statement.else_body is not None:
                self.check_block(statement.else_body)
        elif isinstance(statement, ast.While):
            self.check_expr(statement.cond)
            self.loop_depth += 1
            self.check_block(statement.body)
            self.loop_depth -= 1
        elif isinstance(statement, ast.For):
            self.locals.append(set())
            if statement.init is not None:
                self.check_statement(statement.init)
            if statement.cond is not None:
                self.check_expr(statement.cond)
            if statement.step is not None:
                self.check_statement(statement.step)
            self.loop_depth += 1
            self.check_block(statement.body)
            self.loop_depth -= 1
            self.locals.pop()
        elif isinstance(statement, ast.Return):
            returns_value = statement.value is not None
            wants_value = self.current is not None and self.current.return_type != "void"
            if returns_value and not wants_value:
                self.problem(statement.pos, "void function returns a value")
            if not returns_value and wants_value:
                self.problem(statement.pos, "non-void function returns nothing")
            if statement.value is not None:
                self.check_expr(statement.value)
        elif isinstance(statement, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                keyword = "break" if isinstance(statement, ast.Break) else "continue"
                self.problem(statement.pos, f"{keyword} outside a loop")
        elif isinstance(statement, ast.ExprStmt):
            self.check_expr(statement.expr)
        else:  # pragma: no cover
            self.problem(statement.pos, f"unknown statement {type(statement).__name__}")

    # -- expressions ---------------------------------------------------------------------

    def check_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, (ast.IntLit, ast.StrLit)):
            return
        if isinstance(expr, ast.Ident):
            if not self._declared(expr.name) and expr.name not in self.functions:
                self.problem(expr.pos, f"use of undeclared {expr.name!r}")
            return
        if isinstance(expr, ast.AddrOf):
            if expr.name not in self.functions:
                self.problem(expr.pos, f"&{expr.name}: no such function")
            elif self.functions[expr.name].is_extern:
                self.problem(expr.pos, f"&{expr.name}: cannot take address of extern")
            return
        if isinstance(expr, ast.Unary):
            self.check_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.check_expr(expr.lhs)
            self.check_expr(expr.rhs)
            return
        if isinstance(expr, ast.CallExpr):
            self.check_call(expr)
            return
        self.problem(expr.pos, f"unknown expression {type(expr).__name__}")  # pragma: no cover

    def check_call(self, call: ast.CallExpr) -> None:
        for arg in call.args:
            self.check_expr(arg)
        callee = call.callee
        if isinstance(callee, ast.Ident) and not self._is_variable(callee.name):
            name = callee.name
            info = self.functions.get(name)
            if info is None:
                # Implicit extern: linked against the VM intrinsics table.
                self.functions[name] = FunctionInfo(
                    name, "int", tuple("int" for _ in call.args),
                    is_extern=True, vararg=True,
                )
                return
            if not info.vararg and len(info.param_types) != len(call.args):
                self.problem(
                    call.pos,
                    f"call to {name!r} passes {len(call.args)} args, "
                    f"declared with {len(info.param_types)}",
                )
            return
        # Indirect call through an expression (fnptr variable): any arity.
        self.check_expr(callee)
