"""An LLVM-flavoured intermediate representation.

The substrate under AutoPriv and ChronoPriv: modules of functions made of
basic blocks of instructions, plus the analyses the paper's passes need —
CFG utilities, dominators, a call graph with conservative indirect-call
resolution, and a generic data-flow framework.
"""

from repro.ir.builder import IRBuilder
from repro.ir.callgraph import CallGraph
from repro.ir.cfg import (
    dominators,
    immediate_dominators,
    postorder,
    predecessors,
    reachable_blocks,
    reverse_postorder,
)
from repro.ir.dataflow import DataflowResult, SetDataflowProblem, solve
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICmp,
    Instruction,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import Module
from repro.ir.passes import (
    PassReport,
    fold_constants,
    optimize_function,
    optimize_module,
    remove_unreachable_blocks,
    simplify_branches,
)
from repro.ir.printer import print_function, print_module
from repro.ir.types import BOOL, FunctionType, I8, I32, I64, IntType, PTR, PointerType, Type, VOID, VoidType
from repro.ir.values import (
    Argument,
    ConstantInt,
    ConstantString,
    FunctionRef,
    GlobalVariable,
    UndefValue,
    Value,
    const_int,
)
from repro.ir.verifier import VerificationError, verify_module

__all__ = [
    "Alloca",
    "Argument",
    "BOOL",
    "BasicBlock",
    "BinOp",
    "Branch",
    "Call",
    "CallGraph",
    "ConstantInt",
    "ConstantString",
    "DataflowResult",
    "Function",
    "FunctionRef",
    "FunctionType",
    "GlobalVariable",
    "I32",
    "I64",
    "I8",
    "ICmp",
    "IRBuilder",
    "Instruction",
    "IntType",
    "Jump",
    "Load",
    "Module",
    "PTR",
    "PassReport",
    "Phi",
    "PointerType",
    "Ret",
    "Select",
    "SetDataflowProblem",
    "Store",
    "Type",
    "UndefValue",
    "Unreachable",
    "VOID",
    "Value",
    "VerificationError",
    "VoidType",
    "const_int",
    "dominators",
    "fold_constants",
    "immediate_dominators",
    "optimize_function",
    "optimize_module",
    "remove_unreachable_blocks",
    "simplify_branches",
    "postorder",
    "predecessors",
    "print_function",
    "print_module",
    "reachable_blocks",
    "reverse_postorder",
    "solve",
    "verify_module",
]
