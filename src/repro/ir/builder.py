"""IRBuilder: ergonomic construction of IR, LLVM-style.

The builder tracks an insertion block and provides one method per
instruction, coercing plain Python ints and strings into constants.  The
PrivC lowering (:mod:`repro.frontend.lower`) and the hand-written tests
both build IR through this class.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICmp,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.types import I64, IntType, Type, VOID
from repro.ir.values import ConstantInt, ConstantString, Value

Operand = Union[Value, int, str]


class IRBuilder:
    """Appends instructions to a current basic block."""

    def __init__(self, block: Optional[BasicBlock] = None) -> None:
        self.block = block

    def position_at_end(self, block: BasicBlock) -> "IRBuilder":
        self.block = block
        return self

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion point")
        return self.block.parent

    # -- coercion ---------------------------------------------------------------

    @staticmethod
    def value(operand: Operand, vtype: IntType = I64) -> Value:
        """Coerce ints to :class:`ConstantInt` and strs to :class:`ConstantString`."""
        if isinstance(operand, Value):
            return operand
        if isinstance(operand, bool):
            from repro.ir.types import BOOL

            return ConstantInt(BOOL, int(operand))
        if isinstance(operand, int):
            return ConstantInt(vtype, operand)
        if isinstance(operand, str):
            return ConstantString(operand)
        raise TypeError(f"cannot coerce to IR value: {operand!r}")

    def _append(self, instruction):
        if self.block is None:
            raise ValueError("builder has no insertion point")
        return self.block.append(instruction)

    # -- memory -----------------------------------------------------------------

    def alloca(self, name: str = "") -> Alloca:
        return self._append(Alloca(name))

    def load(self, pointer: Value, vtype: Type = I64, name: str = "") -> Load:
        return self._append(Load(pointer, vtype, name))

    def store(self, value: Operand, pointer: Value) -> Store:
        return self._append(Store(self.value(value), pointer))

    # -- arithmetic ---------------------------------------------------------------

    def binop(self, op: str, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self._append(BinOp(op, self.value(lhs), self.value(rhs), name))

    def add(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("sdiv", lhs, rhs, name)

    def srem(self, lhs: Operand, rhs: Operand, name: str = "") -> BinOp:
        return self.binop("srem", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Operand, rhs: Operand, name: str = "") -> ICmp:
        return self._append(ICmp(predicate, self.value(lhs), self.value(rhs), name))

    def select(self, cond: Value, if_true: Operand, if_false: Operand, name: str = "") -> Select:
        return self._append(Select(cond, self.value(if_true), self.value(if_false), name))

    def phi(self, vtype: Type = I64, name: str = "") -> Phi:
        return self._append(Phi(vtype, name))

    # -- calls ----------------------------------------------------------------------

    def call(self, callee: Union[Function, Value], args: Sequence[Operand] = (), name: str = "") -> Call:
        """Call a function (pass a :class:`Function` for a direct call)."""
        if isinstance(callee, Function):
            vtype = callee.return_type
            callee_value: Value = callee.ref()
        else:
            callee_value = callee
            vtype = I64 if callee.type is not VOID else VOID
        return self._append(
            Call(callee_value, [self.value(arg) for arg in args], vtype, name)
        )

    # -- control flow ------------------------------------------------------------------

    def br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Branch:
        return self._append(Branch(cond, if_true, if_false))

    def jmp(self, target: BasicBlock) -> Jump:
        return self._append(Jump(target))

    def ret(self, value: Optional[Operand] = None) -> Ret:
        return self._append(Ret(self.value(value) if value is not None else None))

    def unreachable(self) -> Unreachable:
        return self._append(Unreachable())
