"""The call graph, with conservative indirect-call resolution.

AutoPriv propagates privilege-use information along a *conservatively
correct* call graph (§VII-C): a direct call has one target, while an
indirect call (through a function pointer) may target *any
address-taken function whose type matches the call*.  The paper blames
exactly this over-approximation for sshd retaining privileges through its
client-handling loop — an indirect call inside the loop is presumed able
to reach every privilege-raising function.

We implement both the conservative resolver and a type-signature-filtered
variant so the A2 ablation can quantify how much precision the call graph
costs AutoPriv.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.module import Module


class CallGraph:
    """Callees per function, with SCC-free transitive closure helpers."""

    def __init__(self, module: Module, indirect_targets_filter: str = "address-taken") -> None:
        """Build the call graph.

        ``indirect_targets_filter`` selects the indirect-call resolver:

        * ``"address-taken"`` — every address-taken function is a possible
          target (the paper's conservative behaviour);
        * ``"type-matched"`` — address-taken functions whose parameter
          count matches the call site (the more precise variant studied in
          the A2 ablation).
        """
        if indirect_targets_filter not in ("address-taken", "type-matched"):
            raise ValueError(f"unknown filter: {indirect_targets_filter!r}")
        self.module = module
        self.filter = indirect_targets_filter
        module.mark_address_taken()
        self._address_taken = [
            function
            for function in module.functions.values()
            if function.address_taken
        ]
        self.callees: Dict[Function, Set[Function]] = {}
        self.has_indirect_call: Dict[Function, bool] = {}
        for function in module.functions.values():
            self.callees[function] = set()
            self.has_indirect_call[function] = False
        for function in module.defined_functions():
            for instruction in function.instructions():
                if not isinstance(instruction, Call):
                    continue
                target = instruction.direct_target
                if target is not None:
                    self.callees[function].add(target)
                    # An external (declaration-only) callee may invoke any
                    # function pointer it receives — qsort/pthread_create/
                    # spawn_wait-style callbacks.  Conservatively add edges
                    # to those arguments.
                    if target.is_declaration:
                        for callback in self._callback_arguments(instruction):
                            self.callees[function].add(callback)
                else:
                    self.has_indirect_call[function] = True
                    for candidate in self._indirect_targets(instruction):
                        self.callees[function].add(candidate)

    def _indirect_targets(self, call: Call) -> Iterable[Function]:
        if self.filter == "address-taken":
            return self._address_taken
        arity = len(call.args)
        return [
            function
            for function in self._address_taken
            if len(function.type.param_types) == arity
        ]

    def callers(self) -> Dict[Function, Set[Function]]:
        """The inverted graph."""
        callers: Dict[Function, Set[Function]] = {
            function: set() for function in self.callees
        }
        for caller, callees in self.callees.items():
            for callee in callees:
                callers[callee].add(caller)
        return callers

    def transitive_callees(self, root: Function) -> Set[Function]:
        """All functions reachable from ``root`` through calls (excluding root
        unless it is recursive)."""
        seen: Set[Function] = set()
        stack: List[Function] = list(self.callees.get(root, ()))
        while stack:
            function = stack.pop()
            if function in seen:
                continue
            seen.add(function)
            stack.extend(self.callees.get(function, ()))
        return seen

    @staticmethod
    def _callback_arguments(call: Call) -> List[Function]:
        from repro.ir.values import FunctionRef

        return [
            arg.function for arg in call.args if isinstance(arg, FunctionRef)
        ]

    def resolve_call(self, call: Call) -> List[Function]:
        """The possible targets of one call site.

        A direct call to an external function also (conservatively)
        targets any function whose address is passed in — the callee may
        invoke the callback before returning.
        """
        target = call.direct_target
        if target is not None:
            if target.is_declaration:
                return [target] + self._callback_arguments(call)
            return [target]
        return list(self._indirect_targets(call))

    def __repr__(self) -> str:
        edges = sum(len(callees) for callees in self.callees.values())
        return f"<CallGraph {self.module.name!r}: {len(self.callees)} nodes, {edges} edges>"
