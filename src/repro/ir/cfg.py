"""Control-flow graph utilities: predecessors, orderings, dominators."""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.function import BasicBlock, Function


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map each block to the blocks that branch to it."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            preds[successor].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """Blocks reachable from the entry block."""
    if function.is_declaration:
        return set()
    seen = {function.entry}
    stack = [function.entry]
    while stack:
        block = stack.pop()
        for successor in block.successors():
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return seen


def postorder(function: Function) -> List[BasicBlock]:
    """Blocks in postorder from the entry (unreachable blocks omitted)."""
    order: List[BasicBlock] = []
    seen: Set[BasicBlock] = set()

    def visit(block: BasicBlock) -> None:
        seen.add(block)
        for successor in block.successors():
            if successor not in seen:
                visit(successor)
        order.append(block)

    if not function.is_declaration:
        visit(function.entry)
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """The canonical iteration order for forward data-flow analyses."""
    return list(reversed(postorder(function)))


def dominators(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """The classic iterative dominator computation.

    ``dom[b]`` is the set of blocks that dominate ``b`` (including ``b``).
    Only reachable blocks appear in the result.
    """
    if function.is_declaration:
        return {}
    order = reverse_postorder(function)
    preds = predecessors(function)
    entry = function.entry
    universe = set(order)
    dom: Dict[BasicBlock, Set[BasicBlock]] = {block: set(universe) for block in order}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in order:
            if block is entry:
                continue
            reachable_preds = [pred for pred in preds[block] if pred in universe]
            if reachable_preds:
                new = set.intersection(*(dom[pred] for pred in reachable_preds))
            else:
                new = set()
            new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def immediate_dominators(function: Function) -> Dict[BasicBlock, BasicBlock]:
    """Map each reachable block (except the entry) to its immediate dominator."""
    dom = dominators(function)
    idom: Dict[BasicBlock, BasicBlock] = {}
    for block, dominating in dom.items():
        strict = dominating - {block}
        if not strict:
            continue
        # The immediate dominator is the strict dominator dominated by all
        # other strict dominators.
        for candidate in strict:
            if all(candidate in dom[other] for other in strict):
                idom[block] = candidate
                break
    return idom
