"""A generic iterative data-flow framework over basic blocks.

AutoPriv's privilege-liveness analysis (§V) is a backward may-analysis:
a privilege is *live* at a point if some path from that point reaches a
use of the privilege.  Rather than hard-coding that one analysis, we
provide the standard worklist framework for set-based (powerset lattice)
problems; :mod:`repro.autopriv.liveness` instantiates it.

The framework works at basic-block granularity with gen/kill transfer
functions and exposes the in/out sets per block; analyses needing
instruction-level results refine within a block themselves.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, FrozenSet, TypeVar

from repro.ir.cfg import postorder, predecessors, reverse_postorder
from repro.ir.function import BasicBlock, Function

Fact = TypeVar("Fact")
BlockSets = Dict[BasicBlock, FrozenSet]


@dataclasses.dataclass
class DataflowResult:
    """Per-block in/out sets of one analysis run."""

    block_in: BlockSets
    block_out: BlockSets


class SetDataflowProblem:
    """A forward or backward union/intersection data-flow problem.

    Subclasses (or instances) provide:

    * ``direction`` — ``"forward"`` or ``"backward"``;
    * ``meet`` — ``"union"`` (may) or ``"intersection"`` (must);
    * :meth:`gen` and :meth:`kill` — per-block transfer sets;
    * :meth:`boundary` — the fact at the entry (forward) / exits (backward);
    * :meth:`initial` — the optimistic initial value for interior blocks.
    """

    direction = "forward"
    meet = "union"

    def gen(self, block: BasicBlock) -> FrozenSet:
        raise NotImplementedError

    def kill(self, block: BasicBlock) -> FrozenSet:
        raise NotImplementedError

    def boundary(self) -> FrozenSet:
        return frozenset()

    def initial(self) -> FrozenSet:
        return frozenset()

    def transfer(self, block: BasicBlock, incoming: FrozenSet) -> FrozenSet:
        """``gen ∪ (incoming − kill)`` — override for non-gen/kill problems."""
        return self.gen(block) | (incoming - self.kill(block))


def solve(problem: SetDataflowProblem, function: Function) -> DataflowResult:
    """Run the iterative worklist algorithm to a fixpoint."""
    if function.is_declaration:
        return DataflowResult({}, {})
    forward = problem.direction == "forward"
    order = reverse_postorder(function) if forward else postorder(function)
    preds = predecessors(function)

    def neighbours_in(block: BasicBlock):
        """The blocks whose facts flow into ``block``."""
        return preds[block] if forward else list(block.successors())

    def is_boundary(block: BasicBlock) -> bool:
        if forward:
            return block is function.entry
        terminator = block.terminator
        return terminator is None or not block.successors()

    merge: Callable = frozenset.union if problem.meet == "union" else frozenset.intersection
    block_in: BlockSets = {block: problem.initial() for block in order}
    block_out: BlockSets = {block: problem.initial() for block in order}

    changed = True
    while changed:
        changed = False
        for block in order:
            sources = neighbours_in(block)
            if sources:
                facts = [
                    (block_out if forward else block_in)[source] for source in sources
                ]
                incoming = facts[0]
                for fact in facts[1:]:
                    incoming = merge(incoming, fact)
                if is_boundary(block):
                    incoming = merge(incoming, problem.boundary())
            elif is_boundary(block):
                incoming = problem.boundary()
            else:
                incoming = problem.initial()
            outgoing = problem.transfer(block, incoming)
            if forward:
                if incoming != block_in[block] or outgoing != block_out[block]:
                    block_in[block], block_out[block] = incoming, outgoing
                    changed = True
            else:
                if incoming != block_out[block] or outgoing != block_in[block]:
                    block_out[block], block_in[block] = incoming, outgoing
                    changed = True
    return DataflowResult(block_in, block_out)
