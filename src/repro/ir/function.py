"""Functions and basic blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, Type
from repro.ir.values import Argument, FunctionRef


class BasicBlock:
    """A straight-line instruction sequence ending in one terminator."""

    def __init__(self, name: str, parent: Optional["Function"] = None) -> None:
        self.name = name
        self.parent = parent
        self.instructions: List[Instruction] = []

    def append(self, instruction: Instruction) -> Instruction:
        """Append an instruction; refuses to add past a terminator."""
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name} already has terminator "
                f"{self.terminator.opcode}; cannot append {instruction.opcode}"
            )
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        """Insert at ``index`` (used by instrumentation passes)."""
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> Sequence["BasicBlock"]:
        terminator = self.terminator
        return terminator.successors() if terminator is not None else ()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock %{self.name} ({len(self.instructions)} insts)>"


class Function:
    """A function: arguments plus a list of basic blocks.

    A function with no blocks is a *declaration* — an external symbol
    resolved by the VM's intrinsics table (syscall wrappers, libc-ish
    helpers, the AutoPriv ``priv_*`` runtime).
    """

    def __init__(
        self,
        name: str,
        ftype: FunctionType,
        param_names: Optional[Sequence[str]] = None,
    ) -> None:
        self.name = name
        self.type = ftype
        names = list(param_names or [])
        while len(names) < len(ftype.param_types):
            names.append(f"arg{len(names)}")
        self.arguments = [
            Argument(ptype, pname, index)
            for index, (ptype, pname) in enumerate(zip(ftype.param_types, names))
        ]
        self.blocks: List[BasicBlock] = []
        #: Set when any FunctionRef to this function escapes into data flow
        #: (i.e. its address is taken somewhere other than a direct call).
        self.address_taken = False

    @property
    def return_type(self) -> Type:
        return self.type.return_type

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no body")
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        block = BasicBlock(self._unique_block_name(name), self)
        self.blocks.append(block)
        return block

    def _unique_block_name(self, base: str) -> str:
        existing = {block.name for block in self.blocks}
        if base not in existing:
            return base
        counter = 1
        while f"{base}.{counter}" in existing:
            counter += 1
        return f"{base}.{counter}"

    def ref(self) -> FunctionRef:
        """A value holding this function's address."""
        return FunctionRef(self)

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order."""
        for block in self.blocks:
            yield from block.instructions

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"<{kind} @{self.name} : {self.type}>"
