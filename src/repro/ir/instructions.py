"""The IR instruction set.

A compact LLVM-flavoured instruction vocabulary: memory (``alloca`` /
``load`` / ``store``), integer arithmetic, comparisons, control flow
(``br`` / ``jmp`` / ``ret`` / ``unreachable``), ``phi``/``select``, and
``call`` (direct or indirect).  Every instruction is a
:class:`~repro.ir.values.Value` so results feed straight into operand
lists.

ChronoPriv's instruction counting (§VI) counts these IR instructions,
omitting ``unreachable`` exactly as the paper does, since executing an
unreachable instruction terminates the program.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.types import BOOL, IntType, PTR, Type, VOID
from repro.ir.values import FunctionRef, Value


class Instruction(Value):
    """Base class; subclasses define ``opcode`` and their operand lists."""

    opcode = "?"

    def __init__(self, vtype: Type, operands: Sequence[Value], name: str = "") -> None:
        super().__init__(vtype, name)
        self.operands: List[Value] = list(operands)
        #: Back-reference, set when the instruction is appended to a block.
        self.parent = None

    @property
    def is_terminator(self) -> bool:
        return False

    def successors(self) -> Tuple:
        """Successor basic blocks (terminators only)."""
        return ()

    def render(self) -> str:
        """The instruction's textual form (without result assignment)."""
        ops = ", ".join(op.short() for op in self.operands)
        return f"{self.opcode} {ops}".rstrip()


class Alloca(Instruction):
    """Reserve one stack slot; yields a pointer to it."""

    opcode = "alloca"

    def __init__(self, name: str = "") -> None:
        super().__init__(PTR, [], name)


class Load(Instruction):
    """Read through a pointer."""

    opcode = "load"

    def __init__(self, pointer: Value, vtype: Type, name: str = "") -> None:
        super().__init__(vtype, [pointer], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]


class Store(Instruction):
    """Write a value through a pointer.  Produces no result."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value) -> None:
        super().__init__(VOID, [value, pointer])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]


#: Binary integer operations and their Python semantics (applied to
#: already-wrapped operands; results are re-wrapped by the interpreter).
BINARY_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "sdiv": lambda a, b: _signed_div(a, b),
    "srem": lambda a, b: _signed_rem(a, b),
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << b,
    "lshr": lambda a, b: (a % (1 << 64)) >> b,
}


def _signed_div(a: int, b: int) -> int:
    """C-style truncating division (LLVM ``sdiv``)."""
    if b == 0:
        raise ZeroDivisionError("sdiv by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _signed_rem(a: int, b: int) -> int:
    """C-style remainder: sign follows the dividend (LLVM ``srem``)."""
    if b == 0:
        raise ZeroDivisionError("srem by zero")
    return a - _signed_div(a, b) * b


class BinOp(Instruction):
    """An integer arithmetic/logical operation."""

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op: {op}")
        vtype = lhs.type if isinstance(lhs.type, IntType) else rhs.type
        super().__init__(vtype, [lhs, rhs], name)
        self.op = op

    @property
    def opcode(self) -> str:  # type: ignore[override]
        return self.op


#: Signed comparison predicates (LLVM ``icmp``).
ICMP_PREDICATES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "slt": lambda a, b: a < b,
    "sle": lambda a, b: a <= b,
    "sgt": lambda a, b: a > b,
    "sge": lambda a, b: a >= b,
}


class ICmp(Instruction):
    """Integer comparison; yields an ``i1``."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = "") -> None:
        if predicate not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate: {predicate}")
        super().__init__(BOOL, [lhs, rhs], name)
        self.predicate = predicate

    def render(self) -> str:
        lhs, rhs = self.operands
        return f"icmp {self.predicate} {lhs.short()}, {rhs.short()}"


class Select(Instruction):
    """``select cond, a, b`` — a branch-free conditional."""

    opcode = "select"

    def __init__(self, cond: Value, if_true: Value, if_false: Value, name: str = "") -> None:
        super().__init__(if_true.type, [cond, if_true, if_false], name)


class Phi(Instruction):
    """SSA ϕ-node: value depends on the predecessor block just executed."""

    opcode = "phi"

    def __init__(self, vtype: Type, name: str = "") -> None:
        super().__init__(vtype, [], name)
        #: Mapping from predecessor block to incoming value.
        self.incoming: Dict = {}

    def add_incoming(self, value: Value, block) -> None:
        self.incoming[block] = value
        self.operands.append(value)

    def render(self) -> str:
        parts = ", ".join(
            f"[{value.short()}, %{block.name}]" for block, value in self.incoming.items()
        )
        return f"phi {parts}"


class Call(Instruction):
    """A function call, direct (constant callee) or indirect (through a pointer)."""

    opcode = "call"

    def __init__(self, callee: Value, args: Sequence[Value], vtype: Type, name: str = "") -> None:
        super().__init__(vtype, [callee, *args], name)

    @property
    def callee(self) -> Value:
        return self.operands[0]

    @property
    def args(self) -> List[Value]:
        return self.operands[1:]

    @property
    def is_direct(self) -> bool:
        return isinstance(self.callee, FunctionRef)

    @property
    def direct_target(self):
        """The called :class:`~repro.ir.function.Function`, if direct."""
        return self.callee.function if isinstance(self.callee, FunctionRef) else None

    def render(self) -> str:
        args = ", ".join(arg.short() for arg in self.args)
        return f"call {self.callee.short()}({args})"


class Branch(Instruction):
    """Conditional branch on an ``i1``."""

    opcode = "br"

    def __init__(self, cond: Value, if_true, if_false) -> None:
        super().__init__(VOID, [cond])
        self.if_true = if_true
        self.if_false = if_false

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> Tuple:
        return (self.if_true, self.if_false)

    def render(self) -> str:
        return (
            f"br {self.operands[0].short()}, "
            f"label %{self.if_true.name}, label %{self.if_false.name}"
        )


class Jump(Instruction):
    """Unconditional branch."""

    opcode = "jmp"

    def __init__(self, target) -> None:
        super().__init__(VOID, [])
        self.target = target

    @property
    def is_terminator(self) -> bool:
        return True

    def successors(self) -> Tuple:
        return (self.target,)

    def render(self) -> str:
        return f"jmp label %{self.target.name}"


class Ret(Instruction):
    """Return from the current function."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def is_terminator(self) -> bool:
        return True

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    def render(self) -> str:
        return f"ret {self.value.short()}" if self.operands else "ret void"


class Unreachable(Instruction):
    """Marks a point that must never execute.

    ChronoPriv omits unreachable instructions from its dynamic counts
    (§VI); our instrumentation pass does the same.
    """

    opcode = "unreachable"

    def __init__(self) -> None:
        super().__init__(VOID, [])

    @property
    def is_terminator(self) -> bool:
        return True
