"""IR modules: the compilation unit."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence

from repro.ir.function import Function
from repro.ir.instructions import Call
from repro.ir.types import FunctionType, Type
from repro.ir.values import FunctionRef, GlobalVariable


class Module:
    """A translation unit: globals plus functions, by name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.globals: Dict[str, GlobalVariable] = {}

    # -- functions -----------------------------------------------------------

    def add_function(
        self,
        name: str,
        return_type: Type,
        param_types: Sequence[Type] = (),
        param_names: Optional[Sequence[str]] = None,
        vararg: bool = False,
    ) -> Function:
        if name in self.functions:
            raise ValueError(f"duplicate function: {name}")
        ftype = FunctionType(return_type, tuple(param_types), vararg)
        function = Function(name, ftype, param_names)
        self.functions[name] = function
        return function

    def declare(self, name: str, return_type: Type, param_types: Sequence[Type] = (), vararg: bool = False) -> Function:
        """Declare an external function; idempotent when types agree."""
        existing = self.functions.get(name)
        ftype = FunctionType(return_type, tuple(param_types), vararg)
        if existing is not None:
            if existing.type != ftype:
                raise ValueError(
                    f"conflicting declaration for {name}: {existing.type} vs {ftype}"
                )
            return existing
        return self.add_function(name, return_type, param_types, vararg=vararg)

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r} in module {self.name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def defined_functions(self) -> Iterator[Function]:
        # Snapshot: passes commonly declare new externals while iterating.
        for function in list(self.functions.values()):
            if not function.is_declaration:
                yield function

    # -- globals -------------------------------------------------------------

    def add_global(self, name: str, initial: int = 0) -> GlobalVariable:
        if name in self.globals:
            raise ValueError(f"duplicate global: {name}")
        var = GlobalVariable(name, initial)
        self.globals[name] = var
        return var

    # -- analyses helpers ------------------------------------------------------

    def mark_address_taken(self) -> None:
        """Set ``address_taken`` on functions whose address escapes.

        A :class:`FunctionRef` used as a *call callee* is a direct call;
        any other use (stored, passed as an argument, compared) lets the
        address escape, making the function a possible target of indirect
        calls.  AutoPriv's conservative call graph relies on this (§VII-C).
        """
        for function in self.functions.values():
            function.address_taken = False
        for function in self.defined_functions():
            for instruction in function.instructions():
                operands = instruction.operands
                if isinstance(instruction, Call):
                    operands = instruction.args  # the callee slot is a direct use
                for operand in operands:
                    if isinstance(operand, FunctionRef):
                        operand.function.address_taken = True

    def __repr__(self) -> str:
        return (
            f"<Module {self.name!r}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )
