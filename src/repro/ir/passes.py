"""IR optimisation passes.

A small pass pipeline in the LLVM tradition: constant folding, branch
simplification and unreachable-block elimination.  The PrivAnalyzer
pipeline runs these before AutoPriv when optimisation is requested —
folding makes capability-mask expressions literal (helping
:func:`repro.autopriv.privuse.mask_argument`) and removing unreachable
blocks trims both the liveness work list and ChronoPriv's static counts.

Passes are semantics-preserving by construction; the test suite checks
that by differential execution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.ir.cfg import reachable_blocks
from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import (
    BINARY_OPS,
    BinOp,
    Branch,
    Call,
    ICMP_PREDICATES,
    ICmp,
    Instruction,
    Jump,
    Phi,
    Select,
)
from repro.ir.module import Module
from repro.ir.types import BOOL
from repro.ir.values import ConstantInt, Value


@dataclasses.dataclass
class PassReport:
    """What one optimisation run changed."""

    folded_instructions: int = 0
    simplified_branches: int = 0
    removed_blocks: int = 0

    @property
    def changed(self) -> bool:
        return bool(
            self.folded_instructions or self.simplified_branches or self.removed_blocks
        )

    def merge(self, other: "PassReport") -> "PassReport":
        return PassReport(
            self.folded_instructions + other.folded_instructions,
            self.simplified_branches + other.simplified_branches,
            self.removed_blocks + other.removed_blocks,
        )


def _as_constant(value: Value):
    return value if isinstance(value, ConstantInt) else None


def fold_constants(function: Function) -> PassReport:
    """Replace constant-operand arithmetic/compares/selects with literals.

    Folded instructions are substituted into their users and deleted.
    """
    report = PassReport()
    replacements: Dict[Instruction, ConstantInt] = {}
    for block in function.blocks:
        for instruction in block.instructions:
            # Rewrite operands already known to be constant.
            for index, operand in enumerate(instruction.operands):
                if operand in replacements:
                    instruction.operands[index] = replacements[operand]
            if isinstance(instruction, Phi):
                for pred, incoming in list(instruction.incoming.items()):
                    if incoming in replacements:
                        instruction.incoming[pred] = replacements[incoming]
            folded = _try_fold(instruction)
            if folded is not None:
                replacements[instruction] = folded
    if not replacements:
        return report
    for block in function.blocks:
        kept: List[Instruction] = []
        for instruction in block.instructions:
            if instruction in replacements:
                report.folded_instructions += 1
                continue
            kept.append(instruction)
        block.instructions = kept
    # A second operand sweep catches uses later in the same block list.
    for block in function.blocks:
        for instruction in block.instructions:
            for index, operand in enumerate(instruction.operands):
                if operand in replacements:
                    instruction.operands[index] = replacements[operand]
            if isinstance(instruction, Phi):
                for pred, incoming in list(instruction.incoming.items()):
                    if incoming in replacements:
                        instruction.incoming[pred] = replacements[incoming]
    return report


def _try_fold(instruction: Instruction):
    if isinstance(instruction, BinOp):
        lhs = _as_constant(instruction.operands[0])
        rhs = _as_constant(instruction.operands[1])
        if lhs is not None and rhs is not None:
            try:
                raw = BINARY_OPS[instruction.op](lhs.value, rhs.value)
            except ZeroDivisionError:
                return None  # keep the trap at runtime
            return ConstantInt(instruction.type, raw)
    if isinstance(instruction, ICmp):
        lhs = _as_constant(instruction.operands[0])
        rhs = _as_constant(instruction.operands[1])
        if lhs is not None and rhs is not None:
            result = ICMP_PREDICATES[instruction.predicate](lhs.value, rhs.value)
            return ConstantInt(BOOL, int(result))
    if isinstance(instruction, Select):
        cond = _as_constant(instruction.operands[0])
        if cond is not None:
            chosen = instruction.operands[1] if cond.value else instruction.operands[2]
            constant = _as_constant(chosen)
            if constant is not None:
                return constant
    return None


def simplify_branches(function: Function) -> PassReport:
    """Turn ``br`` on a constant condition into an unconditional jump."""
    report = PassReport()
    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, Branch):
            continue
        cond = _as_constant(terminator.operands[0])
        if cond is None:
            continue
        target = terminator.if_true if cond.value else terminator.if_false
        jump = Jump(target)
        jump.parent = block
        block.instructions[-1] = jump
        report.simplified_branches += 1
    return report


def remove_unreachable_blocks(function: Function) -> PassReport:
    """Drop blocks no path from the entry reaches; prune stale phi inputs."""
    report = PassReport()
    reachable = reachable_blocks(function)
    removed = [block for block in function.blocks if block not in reachable]
    if not removed:
        return report
    function.blocks = [block for block in function.blocks if block in reachable]
    report.removed_blocks = len(removed)
    dead = set(removed)
    for block in function.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, Phi):
                for pred in list(instruction.incoming):
                    if pred in dead:
                        del instruction.incoming[pred]
    return report


def optimize_function(function: Function, max_iterations: int = 8) -> PassReport:
    """Run the pipeline to a fixpoint (bounded)."""
    total = PassReport()
    for _ in range(max_iterations):
        round_report = PassReport()
        round_report = round_report.merge(fold_constants(function))
        round_report = round_report.merge(simplify_branches(function))
        round_report = round_report.merge(remove_unreachable_blocks(function))
        total = total.merge(round_report)
        if not round_report.changed:
            break
    return total


def optimize_module(module: Module) -> PassReport:
    """Optimise every defined function in the module."""
    total = PassReport()
    for function in module.defined_functions():
        total = total.merge(optimize_function(function))
    return total
