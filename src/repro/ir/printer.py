"""Textual IR rendering, for debugging and golden tests."""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.ir.types import VOID
from repro.ir.values import Value


def print_function(function: Function) -> str:
    """Render one function in an LLVM-flavoured textual form."""
    header_params = ", ".join(
        f"{arg.type} %{arg.name}" for arg in function.arguments
    )
    if function.is_declaration:
        return f"declare {function.return_type} @{function.name}({header_params})"

    # Assign stable %N names to unnamed instruction results.
    names: Dict[Value, str] = {}
    counter = 0
    for argument in function.arguments:
        names[argument] = argument.name
    for instruction in function.instructions():
        if instruction.type is VOID:
            continue
        if instruction.name:
            names[instruction] = instruction.name
        else:
            names[instruction] = str(counter)
            counter += 1

    def operand_text(value: Value) -> str:
        if value in names:
            return f"%{names[value]}"
        return value.short()

    lines = [f"define {function.return_type} @{function.name}({header_params}) {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for instruction in block.instructions:
            text = _render_with_names(instruction, operand_text)
            if instruction.type is not VOID:
                text = f"%{names[instruction]} = {text}"
            lines.append(f"  {text}")
    lines.append("}")
    return "\n".join(lines)


def _render_with_names(instruction: Instruction, operand_text) -> str:
    from repro.ir.instructions import Branch, Call, ICmp, Jump, Phi, Ret

    if isinstance(instruction, Call):
        args = ", ".join(operand_text(arg) for arg in instruction.args)
        return f"call {operand_text(instruction.callee)}({args})"
    if isinstance(instruction, ICmp):
        lhs, rhs = instruction.operands
        return f"icmp {instruction.predicate} {operand_text(lhs)}, {operand_text(rhs)}"
    if isinstance(instruction, Branch):
        return (
            f"br {operand_text(instruction.operands[0])}, "
            f"label %{instruction.if_true.name}, label %{instruction.if_false.name}"
        )
    if isinstance(instruction, Jump):
        return f"jmp label %{instruction.target.name}"
    if isinstance(instruction, Ret):
        if instruction.value is not None:
            return f"ret {operand_text(instruction.value)}"
        return "ret void"
    if isinstance(instruction, Phi):
        parts = ", ".join(
            f"[{operand_text(value)}, %{block.name}]"
            for block, value in instruction.incoming.items()
        )
        return f"phi {parts}"
    ops = ", ".join(operand_text(op) for op in instruction.operands)
    return f"{instruction.opcode} {ops}".rstrip()


def print_module(module: Module) -> str:
    """Render a whole module."""
    chunks = [f"; module {module.name}"]
    for name, var in sorted(module.globals.items()):
        chunks.append(f"@{name} = global i64 {var.initial}")
    for function in module.functions.values():
        chunks.append(print_function(function))
    return "\n\n".join(chunks)
