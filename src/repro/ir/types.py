"""The IR type system.

A deliberately small, LLVM-flavoured type vocabulary: fixed-width
integers, an untyped pointer (as in modern LLVM's opaque pointers),
``void``, and function types.  Types are interned singletons where
possible so identity comparison works.
"""

from __future__ import annotations

from typing import Optional, Tuple


class Type:
    """Base class of all IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self}>"


class VoidType(Type):
    """The type of functions that return nothing."""

    _instance: Optional["VoidType"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"


class IntType(Type):
    """A fixed-width two's-complement integer type (``i1``, ``i32``, ``i64``)."""

    _cache: dict = {}

    def __new__(cls, bits: int) -> "IntType":
        if bits <= 0:
            raise ValueError(f"integer width must be positive: {bits}")
        if bits not in cls._cache:
            instance = super().__new__(cls)
            instance.bits = bits
            cls._cache[bits] = instance
        return cls._cache[bits]

    def __str__(self) -> str:
        return f"i{self.bits}"

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary integer into this type's two's-complement range."""
        mask = (1 << self.bits) - 1
        value &= mask
        if value > self.max_value:
            value -= 1 << self.bits
        return value


class PointerType(Type):
    """An opaque pointer (we do not track pointee types, like LLVM ≥ 15)."""

    _instance: Optional["PointerType"] = None

    def __new__(cls) -> "PointerType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "ptr"


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, param_types: Tuple[Type, ...], vararg: bool = False) -> None:
        self.return_type = return_type
        self.param_types = tuple(param_types)
        self.vararg = vararg

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type is self.return_type
            and other.param_types == self.param_types
            and other.vararg == self.vararg
        )

    def __hash__(self) -> int:
        return hash((FunctionType, self.return_type, self.param_types, self.vararg))

    def __str__(self) -> str:
        params = ", ".join(str(ptype) for ptype in self.param_types)
        if self.vararg:
            params = params + ", ..." if params else "..."
        return f"{self.return_type} ({params})"


# Shared singletons / common widths.
VOID = VoidType()
BOOL = IntType(1)
I8 = IntType(8)
I32 = IntType(32)
I64 = IntType(64)
PTR = PointerType()
