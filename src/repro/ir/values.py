"""IR values: everything an instruction can use as an operand.

The value hierarchy mirrors LLVM's: constants, globals, function
arguments and instructions are all :class:`Value`.  Values carry a type
and an optional name used by the printer; identity (not name) defines a
value.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.types import IntType, PTR, Type


class Value:
    """Base class of all IR values."""

    def __init__(self, vtype: Type, name: str = "") -> None:
        self.type = vtype
        self.name = name

    def short(self) -> str:
        """Compact operand rendering used inside instruction text."""
        return f"%{self.name}" if self.name else "%?"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class ConstantInt(Value):
    """An integer literal of a given width."""

    def __init__(self, vtype: IntType, value: int) -> None:
        super().__init__(vtype)
        self.value = vtype.wrap(value)

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((ConstantInt, self.type, self.value))


class ConstantString(Value):
    """A string literal; lowered as a pointer to immutable bytes."""

    def __init__(self, value: str) -> None:
        super().__init__(PTR)
        self.value = value

    def short(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantString) and other.value == self.value

    def __hash__(self) -> int:
        return hash((ConstantString, self.value))


class GlobalVariable(Value):
    """A module-level mutable cell, always addressed through a pointer."""

    def __init__(self, name: str, initial: int = 0) -> None:
        super().__init__(PTR, name)
        self.initial = initial

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, vtype: Type, name: str, index: int) -> None:
        super().__init__(vtype, name)
        self.index = index

    def short(self) -> str:
        return f"%{self.name}"


class FunctionRef(Value):
    """The address of a function — what ``&f`` lowers to.

    Calling through a :class:`FunctionRef`-typed value that is not a
    compile-time constant is an *indirect call*; the call graph
    over-approximates its targets (see :mod:`repro.ir.callgraph`).
    """

    def __init__(self, function) -> None:
        super().__init__(PTR, function.name)
        self.function = function

    def short(self) -> str:
        return f"@{self.function.name}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FunctionRef) and other.function is self.function

    def __hash__(self) -> int:
        return hash((FunctionRef, id(self.function)))


class UndefValue(Value):
    """An undefined value (reading uninitialised storage)."""

    def __init__(self, vtype: Type) -> None:
        super().__init__(vtype)

    def short(self) -> str:
        return "undef"


def const_int(value: int, vtype: Optional[IntType] = None) -> ConstantInt:
    """Convenience: an i64 constant unless a width is given."""
    from repro.ir.types import I64

    return ConstantInt(vtype or I64, value)
