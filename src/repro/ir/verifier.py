"""Structural verification of IR modules.

The verifier enforces the invariants the rest of the toolchain relies on,
and reports *all* violations rather than stopping at the first — a
module built by a buggy lowering usually has several related problems.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function
from repro.ir.instructions import Branch, Call, Instruction, Jump, Phi
from repro.ir.module import Module
from repro.ir.values import Argument, ConstantInt, ConstantString, FunctionRef, GlobalVariable, UndefValue


class VerificationError(ValueError):
    """Raised by :func:`verify_module` with every problem found."""

    def __init__(self, problems: List[str]) -> None:
        super().__init__("IR verification failed:\n" + "\n".join(f"  - {p}" for p in problems))
        self.problems = problems


def verify_module(module: Module) -> None:
    """Check every defined function; raise :class:`VerificationError` on problems."""
    problems: List[str] = []
    for function in module.defined_functions():
        problems.extend(_verify_function(module, function))
    if problems:
        raise VerificationError(problems)


def _verify_function(module: Module, function: Function) -> List[str]:
    problems: List[str] = []
    where = f"@{function.name}"
    blocks = set(function.blocks)
    defined_values = set(function.arguments)
    for block in function.blocks:
        defined_values.update(block.instructions)

    if not function.blocks:
        return problems

    for block in function.blocks:
        label = f"{where}:%{block.name}"
        if block.parent is not function:
            problems.append(f"{label}: block parent pointer is wrong")
        if block.terminator is None:
            problems.append(f"{label}: block lacks a terminator")
        for index, instruction in enumerate(block.instructions):
            if instruction.is_terminator and index != len(block.instructions) - 1:
                problems.append(
                    f"{label}: terminator {instruction.opcode} not at block end"
                )
            problems.extend(
                _verify_instruction(module, function, block, instruction, defined_values)
            )
    return problems


def _verify_instruction(module, function, block, instruction: Instruction, defined_values) -> List[str]:
    problems: List[str] = []
    label = f"@{function.name}:%{block.name}: {instruction.opcode}"

    # Branch targets must be blocks of this function.
    for target in instruction.successors():
        if target not in set(function.blocks):
            problems.append(f"{label}: branch target %{target.name} not in function")

    # Operands must be constants, globals, or values defined in this function.
    for operand in instruction.operands:
        if isinstance(
            operand,
            (ConstantInt, ConstantString, FunctionRef, GlobalVariable, UndefValue),
        ):
            continue
        if isinstance(operand, (Argument, Instruction)):
            if operand not in defined_values:
                problems.append(
                    f"{label}: operand {operand.short()} defined in another function"
                )
            continue
        problems.append(f"{label}: unsupported operand kind {type(operand).__name__}")

    # Direct calls must match the callee's arity (varargs excepted).
    if isinstance(instruction, Call):
        target = instruction.direct_target
        if target is not None and not target.type.vararg:
            expected = len(target.type.param_types)
            actual = len(instruction.args)
            if expected != actual:
                problems.append(
                    f"{label}: call to @{target.name} passes {actual} args, "
                    f"expects {expected}"
                )

    # Phi nodes must cover their predecessors (checked loosely: each
    # incoming block must be a block of this function).
    if isinstance(instruction, Phi):
        for incoming_block in instruction.incoming:
            if incoming_block not in set(function.blocks):
                problems.append(f"{label}: phi incoming from foreign block")

    # Conditional branches need an i1 condition.
    if isinstance(instruction, Branch):
        cond = instruction.operands[0]
        from repro.ir.types import BOOL

        if cond.type is not BOOL:
            problems.append(f"{label}: branch condition is {cond.type}, not i1")

    if isinstance(instruction, Jump) and not instruction.successors():
        problems.append(f"{label}: jump without target")

    return problems
