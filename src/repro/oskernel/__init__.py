"""A simulated Linux kernel: the substrate instrumented programs run on.

Processes with full Linux credentials and capability sets, a
permission-checked file system, signals and TCP ports.  Syscall semantics
follow credentials(7), capabilities(7) and path_resolution(7) — the same
rules the ROSA model checker encodes, so dynamic behaviour and model
agree.
"""

from repro.oskernel.errors import (
    EACCES,
    EADDRINUSE,
    EBADF,
    EBUSY,
    EEXIST,
    EINVAL,
    ENOENT,
    EPERM,
    ESRCH,
    SyscallError,
    errno_name,
)
from repro.oskernel.filesystem import CHAR_DEVICE, DIRECTORY, FileSystem, Inode, REGULAR, Stat
from repro.oskernel.kernel import KEEP_ID, Kernel
from repro.oskernel.process import KSocket, OpenFile, Process, RUNNING, ZOMBIE
from repro.oskernel import permissions, setup, signals

__all__ = [
    "CHAR_DEVICE",
    "DIRECTORY",
    "EACCES",
    "EADDRINUSE",
    "EBADF",
    "EBUSY",
    "EEXIST",
    "EINVAL",
    "ENOENT",
    "EPERM",
    "ESRCH",
    "FileSystem",
    "Inode",
    "KEEP_ID",
    "KSocket",
    "Kernel",
    "OpenFile",
    "Process",
    "REGULAR",
    "RUNNING",
    "Stat",
    "SyscallError",
    "ZOMBIE",
    "errno_name",
    "permissions",
    "setup",
    "signals",
]
