"""Errno values and the syscall failure exception."""

from __future__ import annotations

# The errno values our syscall surface can produce (numbers from Linux).
EPERM = 1
ENOENT = 2
ESRCH = 3
EBADF = 9
EACCES = 13
EBUSY = 16
EEXIST = 17
ENOTDIR = 20
EISDIR = 21
EINVAL = 22
EMFILE = 24
EADDRINUSE = 98

_NAMES = {
    EPERM: "EPERM",
    ENOENT: "ENOENT",
    ESRCH: "ESRCH",
    EBADF: "EBADF",
    EACCES: "EACCES",
    EBUSY: "EBUSY",
    EEXIST: "EEXIST",
    ENOTDIR: "ENOTDIR",
    EISDIR: "EISDIR",
    EINVAL: "EINVAL",
    EMFILE: "EMFILE",
    EADDRINUSE: "EADDRINUSE",
}


def errno_name(errno: int) -> str:
    """The symbolic name of an errno value."""
    return _NAMES.get(errno, f"E#{errno}")


class SyscallError(OSError):
    """A failed system call: carries the errno.

    Kernel methods raise this; the VM's intrinsic wrappers translate it
    into the C convention (a negative return value) for the program.
    """

    def __init__(self, errno: int, message: str = "") -> None:
        text = errno_name(errno)
        if message:
            text += f": {message}"
        super().__init__(errno, text)
        self.errno_value = errno

    def __repr__(self) -> str:
        return f"SyscallError({errno_name(self.errno_value)})"
