"""A small permission-checked file system.

Hierarchical paths, inodes with owner/group/mode, regular files,
directories and character devices.  Permission checks live in
:mod:`repro.oskernel.permissions`; this module only stores state and
resolves paths.

The file population mirrors the parts of Ubuntu 16.04 the paper's
evaluation touches: ``/etc/passwd``, ``/etc/shadow`` (root-owned by
default — the refactoring re-owns it to the special ``etc`` user),
``/dev/mem``, lock files, logs and home directories.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.oskernel.errors import (
    EEXIST,
    EISDIR,
    ENOENT,
    ENOTDIR,
    SyscallError,
)

# Inode kinds.
REGULAR = "regular"
DIRECTORY = "directory"
CHAR_DEVICE = "chardev"


@dataclasses.dataclass
class Inode:
    """One file-system object."""

    ino: int
    kind: str
    owner: int
    group: int
    mode: int
    #: Regular files: textual content.  Devices ignore this.
    content: str = ""
    #: Directories: name -> child inode number.
    entries: Optional[Dict[str, int]] = None

    @property
    def is_dir(self) -> bool:
        return self.kind == DIRECTORY

    @property
    def is_device(self) -> bool:
        return self.kind == CHAR_DEVICE


@dataclasses.dataclass(frozen=True)
class Stat:
    """The result of ``stat()`` — the fields the paper's programs consult."""

    ino: int
    kind: str
    owner: int
    group: int
    mode: int
    size: int


def split_path(path: str) -> List[str]:
    """Normalise an absolute path into components.

    :raises SyscallError: ENOENT for relative or empty paths (we do not
        model working directories; the programs under study use absolute
        paths).
    """
    if not path.startswith("/"):
        raise SyscallError(ENOENT, f"relative path not supported: {path!r}")
    return [part for part in path.split("/") if part]


class FileSystem:
    """The inode table plus path resolution."""

    def __init__(self) -> None:
        self._inodes: Dict[int, Inode] = {}
        self._next_ino = 1
        self.root_ino = self._new_inode(DIRECTORY, 0, 0, 0o755, entries={}).ino

    def _new_inode(
        self,
        kind: str,
        owner: int,
        group: int,
        mode: int,
        content: str = "",
        entries: Optional[Dict[str, int]] = None,
    ) -> Inode:
        inode = Inode(self._next_ino, kind, owner, group, mode, content, entries)
        self._inodes[inode.ino] = inode
        self._next_ino += 1
        return inode

    def inode(self, ino: int) -> Inode:
        try:
            return self._inodes[ino]
        except KeyError:
            raise SyscallError(ENOENT, f"stale inode {ino}") from None

    # -- path resolution -------------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Resolve a path to its inode (no permission checks here)."""
        inode = self.inode(self.root_ino)
        for part in split_path(path):
            if not inode.is_dir:
                raise SyscallError(ENOTDIR, path)
            child_ino = (inode.entries or {}).get(part)
            if child_ino is None:
                raise SyscallError(ENOENT, path)
            inode = self.inode(child_ino)
        return inode

    def resolve_parent(self, path: str) -> Tuple[Inode, str]:
        """Resolve to ``(parent directory inode, final component)``."""
        parts = split_path(path)
        if not parts:
            raise SyscallError(ENOENT, "cannot take parent of /")
        parent = self.inode(self.root_ino)
        for part in parts[:-1]:
            if not parent.is_dir:
                raise SyscallError(ENOTDIR, path)
            child_ino = (parent.entries or {}).get(part)
            if child_ino is None:
                raise SyscallError(ENOENT, path)
            parent = self.inode(child_ino)
        if not parent.is_dir:
            raise SyscallError(ENOTDIR, path)
        return parent, parts[-1]

    def lookup_directories(self, path: str) -> List[Inode]:
        """Every directory traversed when resolving ``path`` (for search checks)."""
        directories = [self.inode(self.root_ino)]
        inode = directories[0]
        parts = split_path(path)
        for part in parts[:-1] if parts else []:
            child_ino = (inode.entries or {}).get(part)
            if child_ino is None:
                raise SyscallError(ENOENT, path)
            inode = self.inode(child_ino)
            if not inode.is_dir:
                raise SyscallError(ENOTDIR, path)
            directories.append(inode)
        return directories

    def exists(self, path: str) -> bool:
        try:
            self.resolve(path)
            return True
        except SyscallError:
            return False

    # -- structural mutation (no permission checks; the kernel layers those) -----

    def mkdir(self, path: str, owner: int, group: int, mode: int) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in (parent.entries or {}):
            raise SyscallError(EEXIST, path)
        child = self._new_inode(DIRECTORY, owner, group, mode, entries={})
        parent.entries[name] = child.ino
        return child

    def create_file(
        self, path: str, owner: int, group: int, mode: int, content: str = "",
        kind: str = REGULAR,
    ) -> Inode:
        parent, name = self.resolve_parent(path)
        if name in (parent.entries or {}):
            raise SyscallError(EEXIST, path)
        child = self._new_inode(kind, owner, group, mode, content=content)
        parent.entries[name] = child.ino
        return child

    def unlink(self, path: str) -> None:
        parent, name = self.resolve_parent(path)
        child_ino = (parent.entries or {}).get(name)
        if child_ino is None:
            raise SyscallError(ENOENT, path)
        if self.inode(child_ino).is_dir:
            raise SyscallError(EISDIR, path)
        del parent.entries[name]

    def rename(self, old_path: str, new_path: str) -> None:
        old_parent, old_name = self.resolve_parent(old_path)
        child_ino = (old_parent.entries or {}).get(old_name)
        if child_ino is None:
            raise SyscallError(ENOENT, old_path)
        new_parent, new_name = self.resolve_parent(new_path)
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = child_ino

    def stat(self, path: str) -> Stat:
        inode = self.resolve(path)
        return Stat(
            ino=inode.ino,
            kind=inode.kind,
            owner=inode.owner,
            group=inode.group,
            mode=inode.mode,
            size=len(inode.content),
        )
