"""The simulated Linux kernel: processes, syscalls, access control.

This is the environment the instrumented programs execute in.  Every
syscall enforces the same DAC + capability rules that ROSA models, so a
program's dynamic behaviour (which privileged operations succeed, which
credential transitions happen) matches what the model checker reasons
about.

Conventions:

* every syscall method takes the calling ``pid`` first;
* failures raise :class:`~repro.oskernel.errors.SyscallError`; the VM's
  intrinsics translate that into C-style negative returns;
* credential or capability changes notify registered observers — the
  hook ChronoPriv's runtime uses to detect phase transitions.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.caps import Capability, CapabilitySet, CapabilityState, Credentials
from repro.oskernel import permissions, signals
from repro.oskernel.errors import (
    EACCES,
    EADDRINUSE,
    EBADF,
    EINVAL,
    EPERM,
    ESRCH,
    SyscallError,
)
from repro.oskernel.filesystem import CHAR_DEVICE, FileSystem, REGULAR, Stat
from repro.oskernel.process import KSocket, OpenFile, Process, RUNNING, ZOMBIE

#: setres[ug]id's "leave unchanged" argument.
KEEP_ID = -1


class Kernel:
    """One simulated machine."""

    def __init__(self) -> None:
        self.fs = FileSystem()
        self.processes: Dict[int, Process] = {}
        self._next_pid = 100
        #: TCP port -> owning pid.
        self.bound_ports: Dict[int, int] = {}
        #: Contents of physical memory as exposed by /dev/mem; attacks that
        #: read or write the device observably touch this.
        self.physical_memory = "<<physical memory: secrets of every process>>"
        self.devmem_reads: List[int] = []
        self.devmem_writes: List[Tuple[int, str]] = []
        #: Observers called with the process after any credential or
        #: capability change (ChronoPriv's phase hook).
        self.cred_observers: List[Callable[[Process], None]] = []
        #: Optional syscall audit trail
        #: (:class:`repro.telemetry.audit.SyscallAuditTrail`); ``None``
        #: keeps every ``sys_*`` method on its unaudited fast path.
        self.audit = None

    # -- syscall auditing --------------------------------------------------------

    def enable_audit(self, trail=None, capacity: int = 4096):
        """Attach a syscall audit trail and return it.

        Every subsequent ``sys_*`` call is recorded with the caller's
        credentials and capability sets at call time, the arguments, and
        the result or errno — the raw material for seccomp-style policy
        extraction (see ``docs/OBSERVABILITY.md``).
        """
        if trail is None:
            from repro.telemetry.audit import SyscallAuditTrail

            trail = SyscallAuditTrail(capacity=capacity)
        self.audit = trail
        return trail

    def _audit_creds(self, pid: int):
        """(uids, gids, effective, permitted) of ``pid``, if it exists."""
        process = self.processes.get(pid)
        if process is None:
            return None, None, None, None
        return (
            process.creds.uid_triple,
            process.creds.gid_triple,
            process.caps.effective.describe(),
            process.caps.permitted.describe(),
        )

    # -- process management ----------------------------------------------------

    def spawn(
        self,
        uid: int,
        gid: int,
        permitted: CapabilitySet = CapabilitySet.empty(),
        supplementary: Tuple[int, ...] = (),
        pid: Optional[int] = None,
    ) -> Process:
        """Create a process the way the paper's experiments start programs:

        owned by ``uid``/``gid`` with ``permitted`` available but nothing
        raised in the effective set (§VII-B: installed "so that they start
        up with the correct permitted set instead of ... setuid root").
        """
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
        if pid in self.processes:
            raise ValueError(f"pid {pid} already exists")
        creds = Credentials.for_user(uid, gid, supplementary)
        process = Process(pid, creds, CapabilityState.with_permitted(permitted))
        self.processes[pid] = process
        return process

    def sys_fork(self, pid: int) -> Process:
        """fork(2): clone credentials, capability sets and dispositions.

        Descriptors are *not* duplicated (our VM model gives the child a
        fresh table); capability sets are inherited unchanged, exactly as
        fork(2) does — which is why privilege separation must drop them
        explicitly in the child.
        """
        parent = self.process(pid)
        child_pid = self._next_pid
        self._next_pid += 1
        child = Process(child_pid, parent.creds, parent.caps)
        child.no_setuid_fixup = parent.no_setuid_fixup
        child.handlers = dict(parent.handlers)
        self.processes[child_pid] = child
        return child

    def process(self, pid: int) -> Process:
        try:
            return self.processes[pid]
        except KeyError:
            raise SyscallError(ESRCH, f"no process {pid}") from None

    def _notify(self, process: Process) -> None:
        for observer in self.cred_observers:
            observer(process)

    # -- credential syscalls -----------------------------------------------------

    def sys_getuid(self, pid: int) -> int:
        return self.process(pid).creds.ruid

    def sys_geteuid(self, pid: int) -> int:
        return self.process(pid).creds.euid

    def sys_getgid(self, pid: int) -> int:
        return self.process(pid).creds.rgid

    def sys_getegid(self, pid: int) -> int:
        return self.process(pid).creds.egid

    def sys_getresuid(self, pid: int) -> Tuple[int, int, int]:
        return self.process(pid).creds.uid_triple

    def sys_getresgid(self, pid: int) -> Tuple[int, int, int]:
        return self.process(pid).creds.gid_triple

    def _set_creds(self, process: Process, new: Credentials) -> None:
        old = process.creds
        if new == old:
            process.creds = new
            return
        process.creds = new
        self._apply_uid_fixup(process, old, new)
        self._notify(process)

    def _apply_uid_fixup(self, process: Process, old: Credentials, new: Credentials) -> None:
        """The kernel's root-uid capability coupling (cap_emulate_setxuid).

        Unless the process opted out via prctl (SECBIT_NO_SETUID_FIXUP),
        uid transitions involving root adjust capability sets:

        * leaving root entirely (some old id 0, no new id 0) clears the
          permitted and effective sets;
        * euid leaving 0 clears the effective set;
        * euid entering 0 copies permitted into effective.
        """
        if process.no_setuid_fixup:
            return
        caps = process.caps
        old_has_root = 0 in (old.ruid, old.euid, old.suid)
        new_has_root = 0 in (new.ruid, new.euid, new.suid)
        if old_has_root and not new_has_root:
            process.caps = CapabilityState(
                CapabilitySet.empty(), CapabilitySet.empty(), caps.inheritable
            )
            return
        if old.euid != 0 and new.euid == 0:
            process.caps = CapabilityState(caps.permitted, caps.permitted, caps.inheritable)
        elif old.euid == 0 and new.euid != 0:
            process.caps = CapabilityState(CapabilitySet.empty(), caps.permitted, caps.inheritable)

    def sys_setuid(self, pid: int, uid: int) -> int:
        """setuid(2): privileged form sets all three uids."""
        process = self.process(pid)
        creds = process.creds
        if Capability.CAP_SETUID in process.caps.effective:
            self._set_creds(process, creds.with_all_uids(uid))
        elif uid in (creds.ruid, creds.suid):
            self._set_creds(process, creds.replace(euid=uid))
        else:
            raise SyscallError(EPERM, f"setuid({uid})")
        return 0

    def sys_seteuid(self, pid: int, uid: int) -> int:
        process = self.process(pid)
        creds = process.creds
        if Capability.CAP_SETUID in process.caps.effective or uid in (creds.ruid, creds.suid):
            self._set_creds(process, creds.replace(euid=uid))
            return 0
        raise SyscallError(EPERM, f"seteuid({uid})")

    def sys_setresuid(self, pid: int, ruid: int, euid: int, suid: int) -> int:
        """setresuid(2): each id settable to any current id, or anything with CAP_SETUID."""
        process = self.process(pid)
        creds = process.creds
        privileged = Capability.CAP_SETUID in process.caps.effective
        current = (creds.ruid, creds.euid, creds.suid)
        changes = {}
        for field, value in (("ruid", ruid), ("euid", euid), ("suid", suid)):
            if value == KEEP_ID:
                continue
            if not privileged and value not in current:
                raise SyscallError(EPERM, f"setresuid {field}={value}")
            changes[field] = value
        if changes:
            self._set_creds(process, creds.replace(**changes))
        return 0

    def sys_setgid(self, pid: int, gid: int) -> int:
        process = self.process(pid)
        creds = process.creds
        if Capability.CAP_SETGID in process.caps.effective:
            self._set_creds(process, creds.with_all_gids(gid))
        elif gid in (creds.rgid, creds.sgid):
            self._set_creds(process, creds.replace(egid=gid))
        else:
            raise SyscallError(EPERM, f"setgid({gid})")
        return 0

    def sys_setegid(self, pid: int, gid: int) -> int:
        process = self.process(pid)
        creds = process.creds
        if Capability.CAP_SETGID in process.caps.effective or gid in (creds.rgid, creds.sgid):
            self._set_creds(process, creds.replace(egid=gid))
            return 0
        raise SyscallError(EPERM, f"setegid({gid})")

    def sys_setresgid(self, pid: int, rgid: int, egid: int, sgid: int) -> int:
        process = self.process(pid)
        creds = process.creds
        privileged = Capability.CAP_SETGID in process.caps.effective
        current = (creds.rgid, creds.egid, creds.sgid)
        changes = {}
        for field, value in (("rgid", rgid), ("egid", egid), ("sgid", sgid)):
            if value == KEEP_ID:
                continue
            if not privileged and value not in current:
                raise SyscallError(EPERM, f"setresgid {field}={value}")
            changes[field] = value
        if changes:
            self._set_creds(process, creds.replace(**changes))
        return 0

    def sys_setgroups(self, pid: int, groups: Tuple[int, ...]) -> int:
        """setgroups(2): requires CAP_SETGID."""
        process = self.process(pid)
        if Capability.CAP_SETGID not in process.caps.effective:
            raise SyscallError(EPERM, "setgroups")
        self._set_creds(process, process.creds.replace(supplementary=frozenset(groups)))
        return 0

    # -- capability syscalls (the AutoPriv runtime wrappers call these) -----------

    def sys_priv_raise(self, pid: int, caps: CapabilitySet) -> int:
        process = self.process(pid)
        try:
            process.caps = process.caps.raise_caps(caps)
        except PermissionError as exc:
            raise SyscallError(EPERM, str(exc)) from None
        self._notify(process)
        return 0

    def sys_priv_lower(self, pid: int, caps: CapabilitySet) -> int:
        process = self.process(pid)
        process.caps = process.caps.lower_caps(caps)
        self._notify(process)
        return 0

    def sys_priv_remove(self, pid: int, caps: CapabilitySet) -> int:
        process = self.process(pid)
        process.caps = process.caps.remove_caps(caps)
        self._notify(process)
        return 0

    def sys_prctl_lockdown(self, pid: int) -> int:
        """prctl(): disable the kernel's root-uid capability fixups.

        The PrivAnalyzer compiler inserts this at program start (§VII-B) so
        that uid changes never silently re-enable privileges.
        """
        self.process(pid).no_setuid_fixup = True
        return 0

    # -- file syscalls --------------------------------------------------------------

    def _check_lookup(self, process: Process, path: str) -> None:
        for directory in self.fs.lookup_directories(path):
            if not permissions.may_search(directory, process.creds, process.caps.effective):
                raise SyscallError(EACCES, f"search {path}")

    def sys_open(self, pid: int, path: str, flags: str, mode: int = 0o600) -> int:
        """open(2).  ``flags``: "r", "w", "rw", optionally with "c" (O_CREAT)."""
        process = self.process(pid)
        want_read = "r" in flags
        want_write = "w" in flags
        create = "c" in flags
        if not (want_read or want_write):
            raise SyscallError(EINVAL, f"open flags {flags!r}")
        self._check_lookup(process, path)
        if create and not self.fs.exists(path):
            parent, _ = self.fs.resolve_parent(path)
            if not permissions.may_write(parent, process.creds, process.caps.effective):
                raise SyscallError(EACCES, f"create {path}")
            inode = self.fs.create_file(
                path, process.creds.euid, process.creds.egid, mode
            )
        else:
            inode = self.fs.resolve(path)
            if want_read and not permissions.may_read(inode, process.creds, process.caps.effective):
                raise SyscallError(EACCES, f"read {path}")
            if want_write and not permissions.may_write(inode, process.creds, process.caps.effective):
                raise SyscallError(EACCES, f"write {path}")
        fd = process.allocate_fd()
        process.fds[fd] = OpenFile(inode.ino, want_read, want_write, path=path)
        return fd

    def _open_file(self, process: Process, fd: int) -> OpenFile:
        open_file = process.fds.get(fd)
        if open_file is None:
            raise SyscallError(EBADF, f"fd {fd}")
        return open_file

    def sys_read(self, pid: int, fd: int) -> str:
        """read(2), simplified to whole-content reads."""
        process = self.process(pid)
        open_file = self._open_file(process, fd)
        if not open_file.readable:
            raise SyscallError(EBADF, f"fd {fd} not readable")
        inode = self.fs.inode(open_file.ino)
        if inode.kind == CHAR_DEVICE and open_file.path.endswith("/mem"):
            self.devmem_reads.append(pid)
            return self.physical_memory
        return inode.content

    def sys_write(self, pid: int, fd: int, data: str) -> int:
        """write(2), simplified to appends."""
        process = self.process(pid)
        open_file = self._open_file(process, fd)
        if not open_file.writable:
            raise SyscallError(EBADF, f"fd {fd} not writable")
        inode = self.fs.inode(open_file.ino)
        if inode.kind == CHAR_DEVICE and open_file.path.endswith("/mem"):
            self.devmem_writes.append((pid, data))
            self.physical_memory = data
            return len(data)
        inode.content += data
        return len(data)

    def sys_truncate_fd(self, pid: int, fd: int) -> int:
        """ftruncate(2) to zero length."""
        process = self.process(pid)
        open_file = self._open_file(process, fd)
        if not open_file.writable:
            raise SyscallError(EBADF, f"fd {fd} not writable")
        self.fs.inode(open_file.ino).content = ""
        return 0

    def sys_close(self, pid: int, fd: int) -> int:
        process = self.process(pid)
        if fd in process.fds:
            del process.fds[fd]
            return 0
        if fd in process.sockets:
            sock = process.sockets.pop(fd)
            if sock.port and self.bound_ports.get(sock.port) == pid:
                del self.bound_ports[sock.port]
            return 0
        raise SyscallError(EBADF, f"fd {fd}")

    def sys_stat(self, pid: int, path: str) -> Stat:
        process = self.process(pid)
        self._check_lookup(process, path)
        return self.fs.stat(path)

    def sys_chmod(self, pid: int, path: str, mode: int) -> int:
        process = self.process(pid)
        self._check_lookup(process, path)
        inode = self.fs.resolve(path)
        if not permissions.may_chmod(inode, process.creds, process.caps.effective):
            raise SyscallError(EPERM, f"chmod {path}")
        inode.mode = mode
        return 0

    def sys_fchmod(self, pid: int, fd: int, mode: int) -> int:
        process = self.process(pid)
        inode = self.fs.inode(self._open_file(process, fd).ino)
        if not permissions.may_chmod(inode, process.creds, process.caps.effective):
            raise SyscallError(EPERM, f"fchmod fd {fd}")
        inode.mode = mode
        return 0

    def sys_chown(self, pid: int, path: str, owner: int, group: int) -> int:
        process = self.process(pid)
        self._check_lookup(process, path)
        inode = self.fs.resolve(path)
        new_owner = inode.owner if owner == KEEP_ID else owner
        new_group = inode.group if group == KEEP_ID else group
        if not permissions.may_chown(
            inode, new_owner, new_group, process.creds, process.caps.effective
        ):
            raise SyscallError(EPERM, f"chown {path}")
        inode.owner, inode.group = new_owner, new_group
        return 0

    def sys_fchown(self, pid: int, fd: int, owner: int, group: int) -> int:
        process = self.process(pid)
        inode = self.fs.inode(self._open_file(process, fd).ino)
        new_owner = inode.owner if owner == KEEP_ID else owner
        new_group = inode.group if group == KEEP_ID else group
        if not permissions.may_chown(
            inode, new_owner, new_group, process.creds, process.caps.effective
        ):
            raise SyscallError(EPERM, f"fchown fd {fd}")
        inode.owner, inode.group = new_owner, new_group
        return 0

    def _check_sticky_removal(self, process: Process, path: str) -> None:
        """unlink(2)'s restricted-deletion rule for sticky directories."""
        parent, name = self.fs.resolve_parent(path)
        if not parent.mode & 0o1000:
            return
        if Capability.CAP_FOWNER in process.caps.effective:
            return
        euid = process.creds.euid
        if euid == parent.owner:
            return
        child_ino = (parent.entries or {}).get(name)
        if child_ino is not None and self.fs.inode(child_ino).owner == euid:
            return
        raise SyscallError(EPERM, f"sticky directory forbids removing {path}")

    def sys_unlink(self, pid: int, path: str) -> int:
        process = self.process(pid)
        self._check_lookup(process, path)
        parent, _ = self.fs.resolve_parent(path)
        if not permissions.may_write(parent, process.creds, process.caps.effective):
            raise SyscallError(EACCES, f"unlink {path}")
        self._check_sticky_removal(process, path)
        self.fs.unlink(path)
        return 0

    def sys_rename(self, pid: int, old_path: str, new_path: str) -> int:
        process = self.process(pid)
        self._check_lookup(process, old_path)
        self._check_lookup(process, new_path)
        for target in (old_path, new_path):
            parent, _ = self.fs.resolve_parent(target)
            if not permissions.may_write(parent, process.creds, process.caps.effective):
                raise SyscallError(EACCES, f"rename {target}")
        self._check_sticky_removal(process, old_path)
        self.fs.rename(old_path, new_path)
        return 0

    def sys_access(self, pid: int, path: str, want: str) -> int:
        """access(2) against *real* ids, as Linux defines it."""
        process = self.process(pid)
        real_creds = process.creds.replace(
            euid=process.creds.ruid, egid=process.creds.rgid
        )
        self._check_lookup(process, path)
        inode = self.fs.resolve(path)
        caps = process.caps.effective
        if "r" in want and not permissions.may_read(inode, real_creds, caps):
            raise SyscallError(EACCES, f"access r {path}")
        if "w" in want and not permissions.may_write(inode, real_creds, caps):
            raise SyscallError(EACCES, f"access w {path}")
        return 0

    def sys_chroot(self, pid: int, path: str) -> int:
        """chroot(2): requires CAP_SYS_CHROOT; we record the new root only."""
        process = self.process(pid)
        if Capability.CAP_SYS_CHROOT not in process.caps.effective:
            raise SyscallError(EPERM, f"chroot {path}")
        self._check_lookup(process, path + "/.")
        inode = self.fs.resolve(path)
        if not inode.is_dir:
            raise SyscallError(EINVAL, f"chroot {path} is not a directory")
        process.chroot_path = path
        return 0

    # -- sockets -----------------------------------------------------------------------

    def sys_socket(self, pid: int, raw: bool = False) -> int:
        """socket(2); a raw socket (ping's ICMP socket) needs CAP_NET_RAW."""
        process = self.process(pid)
        if raw and Capability.CAP_NET_RAW not in process.caps.effective:
            raise SyscallError(EPERM, "raw socket")
        fd = process.allocate_fd()
        process.sockets[fd] = KSocket()
        return fd

    def sys_setsockopt(self, pid: int, fd: int, option: str) -> int:
        """setsockopt(2): SO_DEBUG / SO_MARK need CAP_NET_ADMIN."""
        process = self.process(pid)
        self._socket(process, fd)
        if option in ("debug", "mark"):
            if Capability.CAP_NET_ADMIN not in process.caps.effective:
                raise SyscallError(EPERM, f"setsockopt {option}")
        return 0

    def _socket(self, process: Process, fd: int) -> KSocket:
        sock = process.sockets.get(fd)
        if sock is None:
            raise SyscallError(EBADF, f"socket fd {fd}")
        return sock

    def sys_bind(self, pid: int, fd: int, port: int) -> int:
        process = self.process(pid)
        sock = self._socket(process, fd)
        if sock.port:
            raise SyscallError(EINVAL, "socket already bound")
        if port in self.bound_ports:
            raise SyscallError(EADDRINUSE, f"port {port}")
        if not permissions.may_bind(port, process.caps.effective):
            raise SyscallError(EACCES, f"bind {port}")
        sock.port = port
        self.bound_ports[port] = pid
        return 0

    def sys_listen(self, pid: int, fd: int) -> int:
        sock = self._socket(self.process(pid), fd)
        if not sock.port:
            raise SyscallError(EINVAL, "listen on unbound socket")
        sock.listening = True
        return 0

    def sys_connect(self, pid: int, fd: int, port: int) -> int:
        sock = self._socket(self.process(pid), fd)
        sock.connected_to = port
        return 0

    # -- signals -----------------------------------------------------------------------

    def sys_signal(self, pid: int, signum: int, handler: str) -> int:
        """signal(2): register a handler function name, SIG_IGN or SIG_DFL."""
        if signum in signals.UNCATCHABLE and handler != signals.SIG_DFL:
            raise SyscallError(EINVAL, f"signal {signum} uncatchable")
        self.process(pid).handlers[signum] = handler
        return 0

    def sys_kill(self, pid: int, target_pid: int, signum: int) -> int:
        sender = self.process(pid)
        victim = self.processes.get(target_pid)
        if victim is None or not victim.alive:
            raise SyscallError(ESRCH, f"kill {target_pid}")
        if not permissions.may_signal(sender.creds, victim.creds, sender.caps.effective):
            raise SyscallError(EPERM, f"kill {target_pid}")
        if signum == 0:
            return 0  # existence/permission probe, no delivery
        self._deliver_signal(victim, signum)
        return 0

    def _deliver_signal(self, victim: Process, signum: int) -> None:
        disposition = victim.handlers.get(signum, signals.SIG_DFL)
        if signum not in signals.UNCATCHABLE and disposition == signals.SIG_IGN:
            return
        if signum not in signals.UNCATCHABLE and disposition != signals.SIG_DFL:
            victim.pending_signals.append((signum, disposition))
            return
        if signum in signals.FATAL_BY_DEFAULT:
            victim.state = ZOMBIE
            victim.exit_signal = signum

    def sys_exit(self, pid: int) -> None:
        process = self.process(pid)
        process.state = ZOMBIE


# -- syscall audit wrapping ----------------------------------------------------
#
# Every ``sys_*`` method is wrapped once, at import time, with a recorder
# that is a single attribute load + ``is None`` test when auditing is off.
# Wrapping here (rather than inside each method) keeps the syscall bodies
# focused on semantics and guarantees new syscalls are audited by default.


def _audit_value(value: Any) -> Any:
    """Render one syscall result for the audit record."""
    if isinstance(value, Process):
        return f"<process pid={value.pid}>"
    if isinstance(value, Stat):
        return f"<stat owner={value.owner} group={value.group} mode={value.mode:o}>"
    return value


def _audited(syscall_name: str, method: Callable) -> Callable:
    @functools.wraps(method)
    def wrapper(self, pid: int, *args, **kwargs):
        trail = self.audit
        if trail is None:
            return method(self, pid, *args, **kwargs)
        uids, gids, effective, permitted = self._audit_creds(pid)
        recorded_args = args + tuple(kwargs.values())
        try:
            result = method(self, pid, *args, **kwargs)
        except SyscallError as error:
            trail.record(
                syscall_name, pid, recorded_args,
                errno=error.errno_value, error=str(error),
                uids=uids, gids=gids,
                caps_effective=effective, caps_permitted=permitted,
            )
            raise
        trail.record(
            syscall_name, pid, recorded_args,
            result=_audit_value(result),
            uids=uids, gids=gids,
            caps_effective=effective, caps_permitted=permitted,
        )
        return result

    return wrapper


for _name in [name for name in vars(Kernel) if name.startswith("sys_")]:
    setattr(Kernel, _name, _audited(_name[len("sys_"):], getattr(Kernel, _name)))
del _name
