"""Kernel-side permission checks: DAC with capability overrides.

The same Linux rules that :mod:`repro.rosa.permissions` encodes for the
model checker, expressed here over live kernel objects (inodes and
processes).  Keeping the two implementations separate is deliberate:
ROSA is the specification the paper's analysis trusts, while the kernel
is the environment programs run in — a divergence between them is a bug
class our integration tests check for explicitly.
"""

from __future__ import annotations

from repro.caps import Capability, CapabilitySet, Credentials
from repro.oskernel.filesystem import Inode

READ_BIT = 0o4
WRITE_BIT = 0o2
EXEC_BIT = 0o1


def class_bits(inode: Inode, creds: Credentials) -> int:
    """The rwx class applying to these credentials (owner XOR group XOR other)."""
    if creds.euid == inode.owner:
        return (inode.mode >> 6) & 0o7
    if inode.group in creds.groups():
        return (inode.mode >> 3) & 0o7
    return inode.mode & 0o7


def may_read(inode: Inode, creds: Credentials, caps: CapabilitySet) -> bool:
    if Capability.CAP_DAC_OVERRIDE in caps or Capability.CAP_DAC_READ_SEARCH in caps:
        return True
    return bool(class_bits(inode, creds) & READ_BIT)


def may_write(inode: Inode, creds: Credentials, caps: CapabilitySet) -> bool:
    if Capability.CAP_DAC_OVERRIDE in caps:
        return True
    return bool(class_bits(inode, creds) & WRITE_BIT)


def may_search(directory: Inode, creds: Credentials, caps: CapabilitySet) -> bool:
    if Capability.CAP_DAC_OVERRIDE in caps or Capability.CAP_DAC_READ_SEARCH in caps:
        return True
    return bool(class_bits(directory, creds) & EXEC_BIT)


def may_chmod(inode: Inode, creds: Credentials, caps: CapabilitySet) -> bool:
    return Capability.CAP_FOWNER in caps or creds.euid == inode.owner


def may_chown(
    inode: Inode,
    new_owner: int,
    new_group: int,
    creds: Credentials,
    caps: CapabilitySet,
) -> bool:
    if Capability.CAP_CHOWN in caps:
        return True
    if new_owner != inode.owner:
        return False
    if creds.euid != inode.owner:
        return False
    return new_group == inode.group or new_group in creds.groups()


def may_signal(sender: Credentials, victim: Credentials, caps: CapabilitySet) -> bool:
    if Capability.CAP_KILL in caps:
        return True
    return bool({sender.euid, sender.ruid} & {victim.ruid, victim.suid})


def may_bind(port: int, caps: CapabilitySet, privileged_bound: int = 1024) -> bool:
    if port <= 0:
        return False
    if port < privileged_bound:
        return Capability.CAP_NET_BIND_SERVICE in caps
    return True
