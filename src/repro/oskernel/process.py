"""Kernel process objects."""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.caps import CapabilityState, Credentials

# Process states.
RUNNING = "running"
ZOMBIE = "zombie"


@dataclasses.dataclass
class OpenFile:
    """One open file description."""

    ino: int
    readable: bool
    writable: bool
    offset: int = 0
    #: Path used at open time (for diagnostics only).
    path: str = ""


@dataclasses.dataclass
class KSocket:
    """One kernel socket, referenced through a file descriptor."""

    port: int = 0
    listening: bool = False
    connected_to: Optional[int] = None


class Process:
    """One task: credentials, capabilities, descriptors, signal state."""

    def __init__(
        self,
        pid: int,
        creds: Credentials,
        caps: CapabilityState,
    ) -> None:
        self.pid = pid
        self.creds = creds
        self.caps = caps
        self.state = RUNNING
        self.exit_signal: Optional[int] = None
        #: True once the program called prctl() to disable the root-uid
        #: capability fixups (SECBIT_NO_SETUID_FIXUP | SECBIT_NOROOT), as the
        #: PrivAnalyzer compiler arranges (§VII-B).
        self.no_setuid_fixup = False
        #: Set by chroot(2); informational (we do not re-root path lookups).
        self.chroot_path: Optional[str] = None
        self.fds: Dict[int, OpenFile] = {}
        self.sockets: Dict[int, KSocket] = {}
        self._next_fd = 3  # 0-2 reserved for std streams
        #: signum -> handler function name, SIG_IGN, or SIG_DFL.
        self.handlers: Dict[int, str] = {}
        #: Signals delivered but not yet dispatched by the VM:
        #: (signum, handler name) pairs.
        self.pending_signals: List[Tuple[int, str]] = []

    @property
    def alive(self) -> bool:
        return self.state == RUNNING

    def allocate_fd(self) -> int:
        fd = self._next_fd
        self._next_fd += 1
        return fd

    def __repr__(self) -> str:
        return (
            f"<Process {self.pid} {self.state} {self.creds} "
            f"permitted={self.caps.permitted.describe()}>"
        )
