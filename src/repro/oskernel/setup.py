"""Canonical machine images for the experiments.

Builds the Ubuntu-16.04-like file and user population the paper's
evaluation assumes (§VII-B): two regular users (1000 starts each program;
1001 is the other user su switches to and scp fetches from), root-owned
system files, ``/etc/shadow`` readable only by root and the ``shadow``
group, and ``/dev/mem`` owned by root:kmem.

The refactored experiments (§VII-D) additionally create the special
``etc`` user (uid 998) and re-own ``/etc`` and the shadow database to it —
the paper's "create special users for special files" lesson.
"""

from __future__ import annotations

from repro.oskernel.filesystem import CHAR_DEVICE
from repro.oskernel.kernel import Kernel

# User ids used throughout the evaluation (paper §VII-B / §VII-D).
UID_ROOT = 0
UID_ETC = 998  # the special user created for the refactored programs
UID_USER = 1000  # the user that starts each program
UID_OTHER = 1001  # the other regular user (su target, scp source)

# Group ids.
GID_ROOT = 0
GID_KMEM = 15  # group owner of /dev/mem on Ubuntu
GID_SHADOW = 42  # group owner of /etc/shadow on Ubuntu
GID_ETC = 998
GID_USER = 1000
GID_OTHER = 1001

#: Cleartext passwords the workloads type at prompts.  The VM's ``crypt``
#: intrinsic hashes a password ``p`` to ``$6$p``, so the shadow database
#: below verifies these and only these.
PASSWORDS = {
    "root": "rootpw",
    "user": "userpw",
    "other": "otherpw",
}

#: Password hashes stored in the shadow database.
SHADOW_HASHES = {name: f"$6${password}" for name, password in PASSWORDS.items()}

#: Username tables the libc-ish intrinsics consult.
USERNAMES = {UID_ROOT: "root", UID_ETC: "etc", UID_USER: "user", UID_OTHER: "other"}
USER_IDS = {name: uid for uid, name in USERNAMES.items()}
PRIMARY_GROUPS = {
    UID_ROOT: GID_ROOT,
    UID_ETC: GID_ETC,
    UID_USER: GID_USER,
    UID_OTHER: GID_OTHER,
}


def shadow_content() -> str:
    """The /etc/shadow database in name:hash form."""
    return (
        f"root:{SHADOW_HASHES['root']}:17000:0:99999:7:::\n"
        f"user:{SHADOW_HASHES['user']}:17000:0:99999:7:::\n"
        f"other:{SHADOW_HASHES['other']}:17000:0:99999:7:::\n"
    )


def passwd_content() -> str:
    """The world-readable /etc/passwd database."""
    return (
        "root:x:0:0:root:/root:/bin/sh\n"
        "etc:x:998:998:etc files owner:/nonexistent:/usr/sbin/nologin\n"
        "user:x:1000:1000:first user:/home/user:/bin/sh\n"
        "other:x:1001:1001:second user:/home/other:/bin/sh\n"
    )


def build_kernel(refactored_ownership: bool = False) -> Kernel:
    """A fresh machine with the evaluation's file population.

    With ``refactored_ownership`` the shadow database, lock directory and
    sulog are owned by the special ``etc`` user instead of root, exactly
    as the paper's refactoring prescribes (§VII-D1: "there is no reason
    for root to own the shadow database").
    """
    kernel = Kernel()
    fs = kernel.fs
    etc_owner = UID_ETC if refactored_ownership else UID_ROOT

    fs.mkdir("/etc", etc_owner, GID_ROOT, 0o755)
    fs.create_file("/etc/passwd", UID_ROOT, GID_ROOT, 0o644, passwd_content())
    fs.create_file(
        "/etc/shadow",
        etc_owner,
        GID_SHADOW,
        0o640,
        shadow_content(),
    )

    fs.mkdir("/dev", UID_ROOT, GID_ROOT, 0o755)
    fs.create_file("/dev/mem", UID_ROOT, GID_KMEM, 0o640, kind=CHAR_DEVICE)
    fs.create_file("/dev/null", UID_ROOT, GID_ROOT, 0o666, kind=CHAR_DEVICE)

    fs.mkdir("/var", UID_ROOT, GID_ROOT, 0o755)
    fs.mkdir("/var/log", UID_ROOT, GID_ROOT, 0o755)
    # The sulog su appends to; root-owned in stock installs, etc-owned in
    # the refactored configuration (paper §VII-D2).
    sulog_group = GID_ETC if refactored_ownership else GID_ROOT
    fs.create_file("/var/log/sulog", etc_owner, sulog_group, 0o660)

    fs.mkdir("/home", UID_ROOT, GID_ROOT, 0o755)
    fs.mkdir("/home/user", UID_USER, GID_USER, 0o755)
    fs.mkdir("/home/other", UID_OTHER, GID_OTHER, 0o700)
    fs.create_file(
        "/home/other/payload.bin",
        UID_OTHER,
        GID_OTHER,
        0o600,
        "X" * 1024,  # stands in for the paper's 1 MB scp payload
    )

    fs.mkdir("/srv", UID_ROOT, GID_ROOT, 0o755)
    fs.mkdir("/srv/www", UID_ROOT, GID_ROOT, 0o755)
    fs.create_file("/srv/www/index.html", UID_ROOT, GID_ROOT, 0o644, "Y" * 1024)

    return kernel
