"""Signal numbers and default dispositions."""

from __future__ import annotations

SIGHUP = 1
SIGINT = 2
SIGQUIT = 3
SIGKILL = 9
SIGUSR1 = 10
SIGSEGV = 11
SIGUSR2 = 12
SIGPIPE = 13
SIGALRM = 14
SIGTERM = 15
SIGCHLD = 17
SIGTSTP = 20

#: Signals whose default action terminates the process.
FATAL_BY_DEFAULT = frozenset(
    {SIGHUP, SIGINT, SIGQUIT, SIGKILL, SIGUSR1, SIGSEGV, SIGUSR2, SIGPIPE, SIGALRM, SIGTERM}
)

#: Signals that cannot be caught or ignored.
UNCATCHABLE = frozenset({SIGKILL})

#: Constant a handler registration uses to ignore a signal.
SIG_IGN = "SIG_IGN"
#: Constant restoring the default disposition.
SIG_DFL = "SIG_DFL"
