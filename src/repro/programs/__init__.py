"""PrivC models of the paper's test programs (Table II) and refactors.

Each module exposes a ``spec()`` returning the
:class:`~repro.programs.common.ProgramSpec` for that program with the
paper's §VII-B workload.  ``ALL_PROGRAMS`` covers Table III;
``REFACTORED_PROGRAMS`` covers Table V.
"""

from repro.programs import (
    passwd,
    passwd_refactored,
    ping,
    sshd,
    sshd_privsep,
    su,
    su_refactored,
    thttpd,
)
from repro.programs.common import ProgramSpec, source_sloc


def all_specs():
    """The five Table III programs, in the paper's order."""
    return [
        passwd.spec(),
        ping.spec(),
        sshd.spec(),
        su.spec(),
        thttpd.spec(),
    ]


def refactored_specs():
    """The two Table V refactored programs."""
    return [passwd_refactored.spec(), su_refactored.spec()]


PROGRAM_MODULES = {
    "passwd": passwd,
    "ping": ping,
    "sshd": sshd,
    "sshdPrivsep": sshd_privsep,
    "su": su,
    "thttpd": thttpd,
    "passwdRef": passwd_refactored,
    "suRef": su_refactored,
}


def spec_by_name(name: str) -> ProgramSpec:
    """Look up any program spec (original or refactored) by name."""
    try:
        return PROGRAM_MODULES[name].spec()
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; choose from {sorted(PROGRAM_MODULES)}"
        ) from None


__all__ = [
    "ALL_PROGRAM_NAMES",
    "PROGRAM_MODULES",
    "ProgramSpec",
    "all_specs",
    "refactored_specs",
    "source_sloc",
    "spec_by_name",
]

ALL_PROGRAM_NAMES = tuple(PROGRAM_MODULES)
