"""PrivC models of the paper's test programs (Table II) and refactors.

Each module exposes a ``spec()`` returning the
:class:`~repro.programs.common.ProgramSpec` for that program with the
paper's §VII-B workload.  ``ALL_PROGRAMS`` covers Table III;
``REFACTORED_PROGRAMS`` covers Table V.
"""

from repro.programs import (
    atd,
    backupd,
    containershim,
    crond,
    greedyd,
    inetd,
    logrotated,
    ntpd,
    passwd,
    passwd_refactored,
    ping,
    sshd,
    sshd_privsep,
    su,
    su_refactored,
    sudohelper,
    thttpd,
    udevd,
    vsftpd,
)
from repro.programs.common import ProgramSpec, source_sloc


def all_specs():
    """The five Table III programs, in the paper's order."""
    return [
        passwd.spec(),
        ping.spec(),
        sshd.spec(),
        su.spec(),
        thttpd.spec(),
    ]


def refactored_specs():
    """The two Table V refactored programs."""
    return [passwd_refactored.spec(), su_refactored.spec()]


PROGRAM_MODULES = {
    "passwd": passwd,
    "ping": ping,
    "sshd": sshd,
    "sshdPrivsep": sshd_privsep,
    "su": su,
    "thttpd": thttpd,
    "passwdRef": passwd_refactored,
    "suRef": su_refactored,
    # Scenario-corpus exemplars (docs/CORPUS.md); each module carries a
    # FAMILY attribute naming its peer group.
    "atd": atd,
    "backupd": backupd,
    "containershim": containershim,
    "crond": crond,
    "greedyd": greedyd,
    "inetd": inetd,
    "logrotated": logrotated,
    "ntpd": ntpd,
    "sudohelper": sudohelper,
    "udevd": udevd,
    "vsftpd": vsftpd,
}

#: The corpus exemplar names, in registry order.
EXEMPLAR_NAMES = tuple(
    name for name, module in PROGRAM_MODULES.items() if hasattr(module, "FAMILY")
)


def spec_by_name(name: str) -> ProgramSpec:
    """Look up any program spec (original or refactored) by name."""
    try:
        return PROGRAM_MODULES[name].spec()
    except KeyError:
        raise KeyError(
            f"unknown program {name!r}; choose from {sorted(PROGRAM_MODULES)}"
        ) from None


__all__ = [
    "ALL_PROGRAM_NAMES",
    "EXEMPLAR_NAMES",
    "PROGRAM_MODULES",
    "ProgramSpec",
    "all_specs",
    "refactored_specs",
    "source_sloc",
    "spec_by_name",
]

ALL_PROGRAM_NAMES = tuple(PROGRAM_MODULES)
