"""atd: one-shot deferred job runner (corpus exemplar, cron family).

Same peer group as crond — become the submitting user per job — but a
batch queue rather than a schedule: the whole spool is drained once.
The distinguishing profile detail is that atd *fully* switches uid per
job (``setuid``-style irreversible drop is not possible for a daemon
that must serve many users, so it uses effective-id flips like crond)
and spends most of its instructions inside the jobs themselves.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "cron"

SOURCE = """
// atd: drain the at-job spool, each job under its owner's credentials.

int read_spool() {
    priv_raise(CAP_DAC_READ_SEARCH);
    int fd = open("/var/spool/atjobs", "r");
    int jobs = 0;
    if (fd >= 0) {
        str spool = read(fd);
        close(fd);
        int line;
        for (line = 0; line < 8; line = line + 1) {
            if (strlen(str_field(spool, line, "\\n")) > 0) {
                jobs = jobs + 1;
            }
        }
    }
    priv_lower(CAP_DAC_READ_SEARCH);
    priv_remove(CAP_DAC_READ_SEARCH);
    return jobs;
}

int execute_job(int owner, int job) {
    priv_raise(CAP_SETGID);
    setegid(owner);
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    seteuid(owner);
    priv_lower(CAP_SETUID);

    // The job body dominates the instruction count.
    int out = 0;
    int step = 0;
    while (step < 90) {
        out = (out * 17 + job * 3 + step) % 32749;
        step = step + 1;
    }

    priv_raise(CAP_SETUID);
    seteuid(0);
    priv_lower(CAP_SETUID);
    priv_raise(CAP_SETGID);
    setegid(0);
    priv_lower(CAP_SETGID);
    return out;
}

void main() {
    int jobs = read_spool();
    int done = 0;
    int job;
    for (job = 0; job < jobs; job = job + 1) {
        int owner = 1000 + (job % 2);
        int result = execute_job(owner, job);
        done = done + 1;
    }
    print_str(strcat("atd: drained ", int_to_str(done)));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """The pending at-job spool."""
    spool = "\n".join(
        ["a0001 alice echo hello", "a0002 bob make backup", "a0003 alice sync"]
    )
    kernel.fs.mkdir("/var/spool", UID_ROOT, UID_ROOT, 0o755)
    kernel.fs.create_file("/var/spool/atjobs", UID_ROOT, UID_ROOT, 0o600, spool)


def spec() -> ProgramSpec:
    """Drain a three-job spool once."""
    return ProgramSpec(
        name="atd",
        description="Deferred one-shot job runner (corpus exemplar)",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of("CapDacReadSearch", "CapSetuid", "CapSetgid"),
        uid=0,
        gid=0,
    )
