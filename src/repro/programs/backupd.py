"""backupd: credential-database backup daemon (corpus exemplar, daemon family).

A daemon whose privileged op is *reading* protected files, not binding
ports: each backup cycle opens ``/etc/shadow`` under a tight
``CAP_DAC_READ_SEARCH`` bracket, checksums it into the archive, and
sleeps.  Within the daemon peer group its profile has no network surface
at all — the read-capability direction of the cluster.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

FAMILY = "daemon"

SOURCE = """
// backupd: periodically archive the credential databases.

int snapshot_shadow(int cycle) {
    // The only privileged moment per cycle.
    priv_raise(CAP_DAC_READ_SEARCH);
    int fd = open("/etc/shadow", "r");
    str content = "";
    if (fd >= 0) {
        content = read(fd);
        close(fd);
    }
    priv_lower(CAP_DAC_READ_SEARCH);

    int sum = 0;
    int step = 0;
    while (step < strlen(content) + 50) {
        sum = (sum * 31 + step + cycle) % 65521;
        step = step + 1;
    }
    return sum;
}

int snapshot_passwd(int cycle) {
    // World-readable: no privilege needed.
    int fd = open("/etc/passwd", "r");
    int sum = 0;
    if (fd >= 0) {
        str content = read(fd);
        close(fd);
        int step = 0;
        while (step < strlen(content) + 20) {
            sum = (sum * 17 + step + cycle) % 32749;
            step = step + 1;
        }
    }
    return sum;
}

void write_archive(int shadow_sum, int passwd_sum) {
    int out = open("/var/log/sulog", "w");
    if (out >= 0) {
        write(out, strcat("backup:", int_to_str(shadow_sum + passwd_sum)));
        close(out);
    }
}

void main() {
    int cycles = 3;
    int cycle;
    for (cycle = 0; cycle < cycles; cycle = cycle + 1) {
        int shadow_sum = snapshot_shadow(cycle);
        int passwd_sum = snapshot_passwd(cycle);
        write_archive(shadow_sum, passwd_sum);
    }
    print_str(strcat("backupd: cycles ", int_to_str(cycles)));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """Three backup cycles over the credential databases."""
    return ProgramSpec(
        name="backupd",
        description="Credential-database backup daemon (corpus exemplar)",
        source=SOURCE,
        permitted=CapabilitySet.of("CapDacReadSearch"),
        uid=0,
        gid=0,
    )
