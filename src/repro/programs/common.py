"""Program specifications: everything needed to build and run one model.

A :class:`ProgramSpec` bundles a program's PrivC source with its launch
configuration — the permitted capability set it is installed with, the
invoking user, command-line arguments, stdin, and the workload
environment (pending connections for servers, passwords typed at
prompts).  The PrivAnalyzer pipeline consumes specs; the five paper
programs and the two refactored variants live in sibling modules.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.caps import CapabilitySet
from repro.oskernel.setup import GID_USER, UID_USER


def source_sloc(source: str) -> int:
    """Non-blank, non-comment source lines (the sloccount analogue)."""
    count = 0
    in_block_comment = False
    for line in source.splitlines():
        stripped = line.strip()
        if in_block_comment:
            if "*/" in stripped:
                in_block_comment = False
            continue
        if not stripped or stripped.startswith("//"):
            continue
        if stripped.startswith("/*"):
            if "*/" not in stripped:
                in_block_comment = True
            continue
        count += 1
    return count


@dataclasses.dataclass
class ProgramSpec:
    """One analysable program plus its workload."""

    name: str
    description: str
    source: str
    #: The permitted set the program is installed with (§VII-B).
    permitted: CapabilitySet
    uid: int = UID_USER
    gid: int = GID_USER
    argv: Tuple[str, ...] = ()
    stdin: Tuple[str, ...] = ()
    #: Extra VM environment (e.g. pending connections for servers).
    env: Dict[str, object] = dataclasses.field(default_factory=dict)
    #: Build the kernel with the refactored file ownership (§VII-D)?
    refactored_fs: bool = False
    #: Optional extra machine setup, called with (kernel, vm) before run.
    setup: Optional[Callable] = None
    expected_exit: int = 0

    @property
    def sloc(self) -> int:
        return source_sloc(self.source)
