"""containershim: OCI-style container runtime shim (corpus exemplar).

The container-shim family signature: a burst of *very* powerful setup —
mount the rootfs (``CAP_SYS_ADMIN``), jail into it
(``CAP_SYS_CHROOT``), re-own the writable layer (``CAP_CHOWN``) — each
in its own tight bracket, then an irreversible drop to the container
user before the workload runs for the long tail with nothing held.
Done right, CAP_SYS_ADMIN hold-time is a sliver; the corpus's planted
violators hold it across the workload instead.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

FAMILY = "container-shim"

SOURCE = """
// containershim: mount, jail, re-own, drop, exec workload.

int mount_rootfs() {
    // The one CAP_SYS_ADMIN moment: bind-mount the image onto the
    // container root (modeled as validating the mount table).
    priv_raise(CAP_SYS_ADMIN);
    int table = 0;
    int entry;
    for (entry = 0; entry < 8; entry = entry + 1) {
        table = (table * 13 + entry) % 8191;
    }
    priv_lower(CAP_SYS_ADMIN);
    return table;
}

void enter_container_root() {
    priv_raise(CAP_SYS_CHROOT);
    chroot("/srv/www");
    priv_lower(CAP_SYS_CHROOT);
}

void fix_writable_layer() {
    priv_raise(CAP_CHOWN);
    chown("/srv/www/index.html", 1000, 1000);
    priv_lower(CAP_CHOWN);
}

void drop_to_container_user() {
    priv_raise(CAP_SETGID);
    setgroups0();
    setgid(1000);
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    setuid(1000);
    priv_lower(CAP_SETUID);
}

int run_workload() {
    // The container's own process: the long unprivileged tail.
    int fd = open("/srv/www/index.html", "r");
    int state = 0;
    if (fd >= 0) {
        str body = read(fd);
        close(fd);
        int round;
        for (round = 0; round < 5; round = round + 1) {
            int step = 0;
            while (step < 60) {
                state = (state * 33 + step + round) % 1048573;
                step = step + 1;
            }
        }
    }
    return state;
}

void main() {
    int table = mount_rootfs();
    enter_container_root();
    fix_writable_layer();
    drop_to_container_user();
    int result = run_workload();
    print_str(strcat("containershim: exit ", int_to_str(result % 100)));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """Start one container and run its workload to completion."""
    return ProgramSpec(
        name="containershim",
        description="Container runtime shim (corpus exemplar)",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapSysAdmin", "CapSysChroot", "CapChown", "CapSetuid", "CapSetgid"
        ),
        uid=0,
        gid=0,
    )
