"""crond: a periodic job scheduler (corpus exemplar, cron family).

The privilege shape every cron implementation shares: the daemon stays
root so it can become *any* user, and per job it flips its effective
uid/gid to the job owner, runs the job, and flips back.  ``CAP_SETUID``
/ ``CAP_SETGID`` are therefore raised briefly but *repeatedly* — the
hold-time profile is a comb, not a block.  ``CAP_DAC_READ_SEARCH``
covers reading other users' crontabs at startup and is dropped for good
before the first job runs.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "cron"

SOURCE = """
// crond: run each user's scheduled jobs under that user's credentials.

int load_crontabs() {
    // Spool entries live in users' home directories; reading them all
    // needs CAP_DAC_READ_SEARCH.  Dropped permanently after startup.
    priv_raise(CAP_DAC_READ_SEARCH);
    int fd = open("/etc/crontab", "r");
    int jobs = 0;
    if (fd >= 0) {
        str tab = read(fd);
        close(fd);
        int line;
        for (line = 0; line < 6; line = line + 1) {
            str entry = str_field(tab, line, "\\n");
            if (strlen(entry) > 0) { jobs = jobs + 1; }
        }
    }
    priv_lower(CAP_DAC_READ_SEARCH);
    priv_remove(CAP_DAC_READ_SEARCH);
    return jobs;
}

int run_job(int owner, int job) {
    // Flip effective ids to the job owner, work, flip back.  The
    // repeated raise/lower comb is the family signature.
    priv_raise(CAP_SETGID);
    setegid(owner);
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    seteuid(owner);
    priv_lower(CAP_SETUID);

    int work = 0;
    int step = 0;
    while (step < 40) {
        work = (work * 31 + job + step) % 65521;
        step = step + 1;
    }

    priv_raise(CAP_SETUID);
    seteuid(0);
    priv_lower(CAP_SETUID);
    priv_raise(CAP_SETGID);
    setegid(0);
    priv_lower(CAP_SETGID);
    return work;
}

void log_run(int job, int result) {
    int log = open("/var/log/sulog", "w");
    if (log >= 0) {
        write(log, strcat("job:", int_to_str(result)));
        close(log);
    }
}

void main() {
    int jobs = load_crontabs();
    if (jobs == 0) {
        print_str("crond: nothing to do");
        exit(0);
    }
    int tick;
    for (tick = 0; tick < 3; tick = tick + 1) {
        int job;
        for (job = 0; job < jobs; job = job + 1) {
            int owner = 1000 + (job % 2);
            int result = run_job(owner, job);
            log_run(job, result);
        }
    }
    print_str(strcat("crond: ran ", int_to_str(jobs * 3)));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """The system crontab the scheduler parses at startup."""
    tab = "\n".join(
        ["*/5 * * * * alice /usr/bin/backup",
         "0 * * * * bob /usr/bin/report",
         "@daily root /usr/sbin/rotate"]
    )
    kernel.fs.create_file("/etc/crontab", UID_ROOT, UID_ROOT, 0o600, tab)


def spec() -> ProgramSpec:
    """Three scheduler ticks over a three-entry system crontab."""
    return ProgramSpec(
        name="crond",
        description="Periodic job scheduler (corpus exemplar)",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of("CapDacReadSearch", "CapSetuid", "CapSetgid"),
        uid=0,
        gid=0,
    )
