"""greedyd: the planted CAP_SYS_ADMIN hoarder (corpus exemplar, daemon family).

The hand-planted least-privilege violator the peers CLI must flag: a
daemon whose actual work (serve files, write a status log) needs at most
``CAP_NET_BIND_SERVICE`` for one bind, yet it raises ``CAP_SYS_ADMIN``
and ``CAP_DAC_OVERRIDE`` at startup "to be safe" and lowers them only on
the way out — the anti-pattern §VII-C calls out in the paper's
pre-refactor programs, held for ~the whole run instead of a bracket.
Peer-group analysis should score it a top outlier in the daemon cluster
on CAP_SYS_ADMIN hold-time.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

FAMILY = "daemon"

#: This exemplar is a deliberate least-privilege violation.
VIOLATOR = True

SOURCE = """
// greedyd: raise everything up front, serve, lower at exit.

int bind_status_port() {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, 80);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

int serve_status(int conn, int round) {
    str request = net_recv(conn);
    int fd = open("/srv/www/index.html", "r");
    int sum = 0;
    if (fd >= 0) {
        str body = read(fd);
        close(fd);
        int step = 0;
        while (step < strlen(body) / 8 + 40) {
            sum = (sum * 31 + step + round) % 65521;
            step = step + 1;
        }
    }
    net_send(conn, strcat("status:", int_to_str(sum)));
    int log = open("/var/log/sulog", "w");
    if (log >= 0) {
        write(log, strcat("hit:", int_to_str(round)));
        close(log);
    }
    return sum;
}

void main() {
    // The violation: blanket raise at startup, held across the entire
    // serving loop.  Nothing below ever needs these.
    priv_raise(CAP_SYS_ADMIN | CAP_DAC_OVERRIDE);

    int server = bind_status_port();
    if (server < 0) {
        print_str("greedyd: bind failed");
        exit(2);
    }

    int served = 0;
    int conn = net_accept(server);
    while (conn >= 0) {
        int sum = serve_status(conn, served);
        served = served + 1;
        conn = net_accept(server);
    }

    priv_lower(CAP_SYS_ADMIN | CAP_DAC_OVERRIDE);
    print_str(strcat("greedyd: served ", int_to_str(served)));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """Three status requests served with CAP_SYS_ADMIN held throughout."""
    return ProgramSpec(
        name="greedyd",
        description="Status daemon that hoards CAP_SYS_ADMIN (planted violator)",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapSysAdmin", "CapDacOverride", "CapNetBindService"
        ),
        uid=0,
        gid=0,
        env={"connections": [1, 2, 3], "incoming": ["GET /", "GET /", "GET /"]},
    )
