"""inetd: the classic super-server (corpus exemplar, super-server family).

Binds every configured low port up front under one
``CAP_NET_BIND_SERVICE`` bracket, then never needs it again.  Per
accepted connection it flips its effective uid to the configured service
user, hands the socket to the service logic, and flips back — the
super-server signature: network privilege front-loaded, credential
privilege a per-connection comb.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "super-server"

SOURCE = """
// inetd: bind configured ports, dispatch each connection as the
// service's unprivileged user.

int parse_services() {
    int fd = open("/etc/inetd.conf", "r");
    if (fd < 0) { return 0; }
    str conf = read(fd);
    close(fd);
    int services = 0;
    int line;
    for (line = 0; line < 6; line = line + 1) {
        if (strlen(str_field(conf, line, "\\n")) > 0) {
            services = services + 1;
        }
    }
    return services;
}

int bind_ports(int services) {
    // One bracket for every listening socket: the only time the
    // super-server holds network privilege.
    priv_raise(CAP_NET_BIND_SERVICE);
    int first = socket();
    bind(first, 7);
    listen(first);
    if (services > 1) {
        int second = socket();
        bind(second, 13);
        listen(second);
    }
    priv_lower(CAP_NET_BIND_SERVICE);
    return first;
}

int serve_connection(int conn, int service_uid) {
    priv_raise(CAP_SETUID);
    seteuid(service_uid);
    priv_lower(CAP_SETUID);

    str request = net_recv(conn);
    int sum = 0;
    int step = 0;
    while (step < strlen(request) + 30) {
        sum = (sum * 13 + step) % 8191;
        step = step + 1;
    }
    net_send(conn, strcat("echo:", int_to_str(sum)));

    priv_raise(CAP_SETUID);
    seteuid(0);
    priv_lower(CAP_SETUID);
    return sum;
}

void main() {
    int services = parse_services();
    if (services == 0) {
        print_str("inetd: no services");
        exit(0);
    }
    int server = bind_ports(services);
    int served = 0;
    int conn = net_accept(server);
    while (conn >= 0) {
        int result = serve_connection(conn, 1000 + (served % 2));
        served = served + 1;
        conn = net_accept(server);
    }
    print_str(strcat("inetd: served ", int_to_str(served)));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """The service table."""
    conf = "\n".join(
        ["echo stream tcp nowait alice internal",
         "daytime stream tcp nowait bob internal"]
    )
    kernel.fs.create_file("/etc/inetd.conf", UID_ROOT, UID_ROOT, 0o644, conf)


def spec() -> ProgramSpec:
    """Two services, three connections."""
    return ProgramSpec(
        name="inetd",
        description="Internet super-server (corpus exemplar)",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of("CapNetBindService", "CapSetuid", "CapSetgid"),
        uid=0,
        gid=0,
        env={"connections": [1, 2, 3], "incoming": ["ping", "date?", "ping2"]},
    )
