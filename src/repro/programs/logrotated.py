"""logrotated: log rotation helper (corpus exemplar, cron family).

The cron-family batch job that does *file* privilege instead of
credential flips: it rewrites root-owned logs, so its comb is
``CAP_DAC_OVERRIDE`` / ``CAP_CHOWN`` / ``CAP_FOWNER`` brackets around
each rotation, with no uid changes at all.  Within the cron peer group
that makes it the file-capability outlier direction — useful contrast
for the distance metric.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "cron"

SOURCE = """
// logrotated: rotate each configured log, preserving owner and mode.

int parse_config() {
    int fd = open("/etc/logrotate.conf", "r");
    if (fd < 0) { return 0; }
    str conf = read(fd);
    close(fd);
    int entries = 0;
    int line;
    for (line = 0; line < 5; line = line + 1) {
        if (strlen(str_field(conf, line, "\\n")) > 0) {
            entries = entries + 1;
        }
    }
    return entries;
}

int rotate_log(str path, int round) {
    // stat, copy, truncate, restore ownership — all under one
    // file-capability bracket per log.
    priv_raise(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
    int owner = stat_owner(path);
    int group = stat_group(path);
    int mode = stat_mode(path);
    int fd = open(path, "r");
    int copied = 0;
    if (fd >= 0) {
        str content = read(fd);
        close(fd);
        int step = 0;
        while (step < strlen(content) + 60) {
            copied = (copied * 31 + step + round) % 65521;
            step = step + 1;
        }
        int out = open(path, "w");
        if (out >= 0) {
            write(out, "");
            close(out);
        }
        chown(path, owner, group);
        chmod(path, mode);
    }
    priv_lower(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
    return copied;
}

void main() {
    int entries = parse_config();
    if (entries == 0) {
        print_str("logrotated: nothing configured");
        exit(0);
    }
    int rotated = 0;
    int round;
    for (round = 0; round < entries; round = round + 1) {
        int sum = rotate_log("/var/log/sulog", round);
        rotated = rotated + 1;
    }
    print_str(strcat("logrotated: rotated ", int_to_str(rotated)));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """Rotation config plus some log content to copy."""
    conf = "\n".join(
        ["/var/log/sulog { weekly rotate 4 }", "compress", "missingok"]
    )
    kernel.fs.create_file("/etc/logrotate.conf", UID_ROOT, UID_ROOT, 0o644, conf)


def spec() -> ProgramSpec:
    """Rotate the su log three times (one per config entry)."""
    return ProgramSpec(
        name="logrotated",
        description="Log rotation helper (corpus exemplar)",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of("CapDacOverride", "CapChown", "CapFowner"),
        uid=0,
        gid=0,
    )
