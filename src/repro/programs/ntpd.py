"""ntpd: network time daemon (corpus exemplar, daemon family).

Daemon-family member whose long phase is *compute*, not serving: after
binding UDP 123 and dropping to the ntp user, the clock-discipline loop
dominates the instruction count with an empty effective set.  Profile
distinguishers inside the peer group: no chroot, a single socket, and
compute mass instead of request traffic.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

FAMILY = "daemon"

SOURCE = """
// ntpd: bind 123, drop to the ntp user, discipline the clock.

int bind_ntp_port() {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, 123);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

void drop_to_ntp_user() {
    priv_raise(CAP_SETGID);
    setgroups0();
    setgid(998);
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    setuid(998);
    priv_lower(CAP_SETUID);
}

int poll_peer(int conn, int round) {
    str sample = net_recv(conn);
    int offset = (strlen(sample) * 7 + round) % 1024;
    net_send(conn, strcat("stratum:", int_to_str(offset % 16)));
    return offset;
}

int discipline_clock(int offset) {
    // The PLL/FLL loop: the daemon's dominant instruction mass.
    int state = offset;
    int round;
    for (round = 0; round < 6; round = round + 1) {
        int step = 0;
        while (step < 50) {
            state = (state * 33 + step + round) % 1048573;
            step = step + 1;
        }
    }
    return state;
}

void main() {
    int server = bind_ntp_port();
    if (server < 0) {
        print_str("ntpd: bind failed");
        exit(2);
    }
    drop_to_ntp_user();

    int drift = 0;
    int round = 0;
    int conn = net_accept(server);
    while (conn >= 0) {
        int offset = poll_peer(conn, round);
        drift = discipline_clock(offset);
        round = round + 1;
        conn = net_accept(server);
    }
    print_str(strcat("ntpd: drift ", int_to_str(drift % 1000)));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """Two peer exchanges, six discipline rounds each."""
    return ProgramSpec(
        name="ntpd",
        description="Network time daemon (corpus exemplar)",
        source=SOURCE,
        permitted=CapabilitySet.of("CapNetBindService", "CapSetuid", "CapSetgid"),
        uid=0,
        gid=0,
        env={"connections": [1, 2], "incoming": ["t1", "t2"]},
    )
