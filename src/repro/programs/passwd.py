"""The passwd model (shadow-utils 4.1.5.1 in the paper, Table II).

passwd changes the invoking user's password.  Its privilege story
(§VII-C):

* ``CAP_DAC_READ_SEARCH`` — read the user's entry from ``/etc/shadow``
  via ``getspnam()``; dropped early;
* ``CAP_SETUID`` — ``setuid(0)`` so unexpected signals cannot interrupt
  the update; retained through the expensive password-hashing phase
  (≈59 % of execution in the paper);
* ``CAP_DAC_OVERRIDE`` / ``CAP_CHOWN`` / ``CAP_FOWNER`` — lock the
  database, write the replacement shadow file, restore its ownership and
  mode, and rename it into place; the program deliberately assumes
  nothing about who owns ``/etc/shadow`` (it ``stat()``s the old file and
  ``chown()``s the new one to match), which is why it carries these
  powerful privileges until the very end.

Expected verdicts: vulnerable to attacks 1/2/4 for the ≈63 % of
execution where ``CAP_SETUID`` is permitted, and to attacks 1/2 for
≈99 % (the DAC-bypass capabilities).  Note one deliberate deviation from
the paper's Table III: our final phase (empty set, euid 0) remains
vulnerable to attacks 1/2 because root's own DAC rights suffice to open
``/dev/mem`` — exactly the behaviour §VII-D1 describes; the paper's ✗ in
that 0.23 % cell is inconsistent with its own prose.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

SOURCE = """
// passwd: change the invoking user's password.

int read_login_defs() {
    // passwd consults /etc/login.defs for password policy before
    // touching the shadow database.
    int fd = open("/etc/login.defs", "r");
    if (fd < 0) { return 0; }
    str defs = read(fd);
    close(fd);
    int options = 0;
    int line;
    for (line = 0; line < 12; line = line + 1) {
        str entry = str_field(defs, line, "\n");
        int c = 0;
        while (c < strlen(entry) + 4) {
            options = (options * 17 + c) % 32749;
            c = c + 1;
        }
    }
    return options;
}

void ignore_signal(int signum) {
    // passwd ignores job-control and terminal signals while it works.
    int noop = signum;
}

str read_shadow_entry(str user) {
    // getspnam() needs CAP_DAC_READ_SEARCH: /etc/shadow is mode 640.
    priv_raise(CAP_DAC_READ_SEARCH);
    str entry = getspnam(user);
    priv_lower(CAP_DAC_READ_SEARCH);
    return entry;
}

int verify_old_password(str stored, str typed) {
    // Constant-time-ish comparison: always walk the whole hash.
    str computed = crypt(typed);
    int n = strlen(stored);
    int m = strlen(computed);
    int diff = 0;
    int i;
    for (i = 0; i < n + m; i = i + 1) {
        diff = (diff * 2 + i) % 97;
    }
    return streq(stored, computed);
}

str strengthen_password(str newpw) {
    // The expensive key-stretching rounds (sha512_crypt's 5000 rounds);
    // this is where passwd spends most of its time.
    int rounds = 210;
    int state = strlen(newpw);
    int r;
    for (r = 0; r < rounds; r = r + 1) {
        int mix = 0;
        while (mix < 12) {
            state = (state * 33 + mix + r) % 1048573;
            mix = mix + 1;
        }
    }
    return crypt(newpw);
}

int become_root_for_signals() {
    // setuid(0) so that no other process of this user can signal us
    // while the database is inconsistent (Linux checks the sender's
    // euid/ruid against the target's ruid/suid).
    priv_raise(CAP_SETUID);
    int rc = setuid(0);
    if (rc < 0) {
        priv_lower(CAP_SETUID);
        return -1;
    }
    // Now unreachable by other users' signals; ignore the catchable
    // terminal/job-control signals too (SIGHUP..SIGQUIT).
    int s;
    for (s = 1; s < 4; s = s + 1) {
        signal(s, &ignore_signal);
    }
    priv_lower(CAP_SETUID);
    return 0;
}

int check_stale_lock(int lockpid) {
    // commonio-style stale-lock probe: signal 0 tests liveness.
    if (lockpid > 0) {
        int alive = kill(lockpid, 0);
        if (alive < 0) { return 0; }
        return 1;
    }
    return 0;
}

int update_shadow_database(str user, str newhash) {
    // The program makes minimal assumptions about who owns /etc and
    // /etc/shadow: it stats the old file, writes a replacement, restores
    // owner/group/mode, and renames it into place.  All of that is done
    // under CAP_DAC_OVERRIDE + CAP_CHOWN + CAP_FOWNER.
    priv_raise(CAP_DAC_OVERRIDE);
    int lock = open("/etc/.pwd.lock", "wcr", 0o600);
    priv_lower(CAP_DAC_OVERRIDE);
    if (lock < 0) { return -1; }
    int stale = check_stale_lock(0);

    priv_raise(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
    int owner = stat_owner("/etc/shadow");
    int group = stat_group("/etc/shadow");
    int mode = stat_mode("/etc/shadow");
    int fd = open("/etc/shadow", "r");
    if (fd < 0) {
        priv_lower(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
        return -1;
    }
    str content = read(fd);
    close(fd);
    str updated = shadow_replace_hash(content, user, newhash);

    int nfd = open("/etc/nshadow", "wcr", 0o600);
    if (nfd < 0) {
        priv_lower(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
        return -1;
    }
    // Serialise entry by entry, validating each field (the second big
    // chunk of execution).
    int line = 0;
    while (line < 8) {
        str entry = str_field(updated, line, "\\n");
        if (strlen(entry) > 0) {
            int field;
            for (field = 0; field < 9; field = field + 1) {
                str value = str_field(entry, field, ":");
                int check = 0;
                int c = 0;
                while (c < (strlen(value) + 14) * 3) {
                    check = (check * 31 + c) % 65521;
                    c = c + 1;
                }
            }
            write(nfd, strcat(entry, "\\n"));
        }
        line = line + 1;
    }
    close(nfd);

    chown("/etc/nshadow", owner, group);
    chmod("/etc/nshadow", mode);
    rename("/etc/nshadow", "/etc/shadow");
    unlink("/etc/.pwd.lock");
    priv_lower(CAP_DAC_OVERRIDE | CAP_CHOWN | CAP_FOWNER);
    return 0;
}

void main() {
    int me = getuid();
    str user = getpwuid_name(me);
    if (strlen(user) == 0) {
        print_str("passwd: unknown user");
        exit(1);
    }
    print_str(strcat("Changing password for ", user));
    int policy = read_login_defs();

    str stored = read_shadow_entry(user);
    if (strlen(stored) == 0) {
        print_str("passwd: cannot read shadow entry");
        exit(1);
    }

    str oldpw = getpass("Current password: ");
    if (verify_old_password(stored, oldpw) == 0) {
        print_str("passwd: authentication failure");
        exit(1);
    }

    str new1 = getpass("New password: ");
    str new2 = getpass("Retype new password: ");
    if (streq(new1, new2) == 0) {
        print_str("passwd: passwords do not match");
        exit(1);
    }
    str newhash = strengthen_password(new1);

    if (become_root_for_signals() < 0) {
        print_str("passwd: cannot drop signals");
        exit(1);
    }

    if (update_shadow_database(user, newhash) < 0) {
        print_str("passwd: update failed");
        exit(1);
    }
    print_str("passwd: password updated successfully");
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """The password-policy configuration passwd parses at startup."""
    policy = "\n".join(
        ["PASS_MAX_DAYS 99999", "PASS_MIN_DAYS 0", "PASS_WARN_AGE 7",
         "ENCRYPT_METHOD SHA512", "SHA_CRYPT_MIN_ROUNDS 5000",
         "UMASK 077", "MD5_CRYPT_ENAB no", "OBSCURE_CHECKS_ENAB yes",
         "PASS_MIN_LEN 6", "LOGIN_RETRIES 3", "LOGIN_TIMEOUT 60",
         "FAILLOG_ENAB yes"]
    )
    kernel.fs.create_file("/etc/login.defs", 0, 0, 0o644, policy)


def spec() -> ProgramSpec:
    """Change the invoking user's password (paper §VII-B)."""
    return ProgramSpec(
        name="passwd",
        description="Utility to change user passwords",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of(
            "CapDacReadSearch", "CapDacOverride", "CapSetuid", "CapChown", "CapFowner"
        ),
        stdin=("userpw", "newsecret", "newsecret"),
    )
