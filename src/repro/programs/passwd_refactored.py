"""The refactored passwd (paper §VII-D1, Table V).

Two changes, following the paper's refactoring lessons (§VII-E):

1. **Change credentials early** — as soon as the program knows who
   invoked it, it uses ``CAP_SETUID`` once to set its real and effective
   uid to the owner of the shadow database and drops the capability;
   ``CAP_SETGID`` likewise sets the effective gid to the ``shadow`` group
   and is dropped.  No privilege survives into the expensive
   authentication/hashing/update phases.
2. **Create special users for special files** — the machine image
   (``build_kernel(refactored_ownership=True)``) has ``/etc`` and
   ``/etc/shadow`` owned by the special ``etc`` user (uid 998), so plain
   DAC lets the re-credentialed passwd do everything that previously
   needed ``CAP_DAC_OVERRIDE``/``CAP_CHOWN``/``CAP_FOWNER``.

Expected shape (Table V): privileges permitted for only ≈4 % of
execution; the remaining ≈96 % runs with an empty permitted set and a
non-root effective uid, invulnerable to all four modeled attacks.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec
from repro.programs.passwd import _setup

SOURCE = """
// passwd (refactored): drop to the shadow-owner identity immediately.

int read_login_defs() {
    int fd = open("/etc/login.defs", "r");
    if (fd < 0) { return 0; }
    str defs = read(fd);
    close(fd);
    int options = 0;
    int line;
    for (line = 0; line < 12; line = line + 1) {
        str entry = str_field(defs, line, "\\n");
        int c = 0;
        while (c < strlen(entry) + 4) {
            options = (options * 17 + c) % 32749;
            c = c + 1;
        }
    }
    return options;
}

void ignore_signal(int signum) {
    int noop = signum;
}

void become_shadow_owner() {
    // Refactoring 1: one early setresuid to the shadow database owner.
    // Real and effective become `etc`; the saved uid keeps the invoker
    // so the kernel's signal rules still protect us.
    int owner = stat_owner("/etc/shadow");
    priv_raise(CAP_SETUID);
    int rc = setresuid(owner, owner, KEEP);
    if (rc < 0) {
        priv_lower(CAP_SETUID);
        print_str("passwd: cannot change identity");
        exit(1);
    }
    int s;
    for (s = 1; s < 4; s = s + 1) {
        signal(s, &ignore_signal);
    }
    priv_lower(CAP_SETUID);
}

void join_shadow_group() {
    // The shadow group covers the group-readable databases.
    int group = stat_group("/etc/shadow");
    priv_raise(CAP_SETGID);
    int rc = setegid(group);
    if (rc < 0) {
        priv_lower(CAP_SETGID);
        print_str("passwd: cannot join shadow group");
        exit(1);
    }
    int g;
    for (g = 0; g < 4; g = g + 1) {
        rc = (rc * 5 + g) % 97;
    }
    priv_lower(CAP_SETGID);
}

int verify_old_password(str stored, str typed) {
    str computed = crypt(typed);
    int n = strlen(stored);
    int m = strlen(computed);
    int diff = 0;
    int i;
    for (i = 0; i < n + m; i = i + 1) {
        diff = (diff * 2 + i) % 97;
    }
    return streq(stored, computed);
}

str strengthen_password(str newpw) {
    int rounds = 210;
    int state = strlen(newpw);
    int r;
    for (r = 0; r < rounds; r = r + 1) {
        int mix = 0;
        while (mix < 12) {
            state = (state * 33 + mix + r) % 1048573;
            mix = mix + 1;
        }
    }
    return crypt(newpw);
}

int check_stale_lock(int lockpid) {
    if (lockpid > 0) {
        int alive = kill(lockpid, 0);
        if (alive < 0) { return 0; }
        return 1;
    }
    return 0;
}

int update_shadow_database(str user, str newhash) {
    // Entirely unprivileged: /etc and /etc/shadow belong to our
    // effective user, so plain DAC suffices (refactoring 2).
    int lock = open("/etc/.pwd.lock", "wcr", 0o600);
    if (lock < 0) { return -1; }
    int stale = check_stale_lock(0);

    int mode = stat_mode("/etc/shadow");
    int fd = open("/etc/shadow", "r");
    if (fd < 0) { return -1; }
    str content = read(fd);
    close(fd);
    str updated = shadow_replace_hash(content, user, newhash);

    int nfd = open("/etc/nshadow", "wcr", 0o600);
    if (nfd < 0) { return -1; }
    int line = 0;
    while (line < 8) {
        str entry = str_field(updated, line, "\\n");
        if (strlen(entry) > 0) {
            int field;
            for (field = 0; field < 9; field = field + 1) {
                str value = str_field(entry, field, ":");
                int check = 0;
                int c = 0;
                while (c < (strlen(value) + 14) * 3) {
                    check = (check * 31 + c) % 65521;
                    c = c + 1;
                }
            }
            write(nfd, strcat(entry, "\\n"));
        }
        line = line + 1;
    }
    close(nfd);

    chmod("/etc/nshadow", mode);
    rename("/etc/nshadow", "/etc/shadow");
    unlink("/etc/.pwd.lock");
    return 0;
}

void main() {
    int me = getuid();
    str user = getpwuid_name(me);
    if (strlen(user) == 0) {
        print_str("passwd: unknown user");
        exit(1);
    }
    print_str(strcat("Changing password for ", user));
    int policy = read_login_defs();

    // All privilege use happens here, within the first few percent.
    become_shadow_owner();
    join_shadow_group();

    // Unprivileged from here to exit.
    str stored = getspnam(user);
    if (strlen(stored) == 0) {
        print_str("passwd: cannot read shadow entry");
        exit(1);
    }
    str oldpw = getpass("Current password: ");
    if (verify_old_password(stored, oldpw) == 0) {
        print_str("passwd: authentication failure");
        exit(1);
    }
    str new1 = getpass("New password: ");
    str new2 = getpass("Retype new password: ");
    if (streq(new1, new2) == 0) {
        print_str("passwd: passwords do not match");
        exit(1);
    }
    str newhash = strengthen_password(new1);
    if (update_shadow_database(user, newhash) < 0) {
        print_str("passwd: update failed");
        exit(1);
    }
    print_str("passwd: password updated successfully");
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """The refactored passwd on the refactored machine image."""
    return ProgramSpec(
        name="passwdRef",
        description="Refactored passwd: credentials changed early, etc user owns /etc",
        source=SOURCE,
        permitted=CapabilitySet.of("CapSetuid", "CapSetgid"),
        stdin=("userpw", "newsecret", "newsecret"),
        refactored_fs=True,
        setup=_setup,
    )
