"""The ping model (iputils s20121221 in the paper, Table II).

ping is the paper's best-behaved program: it needs ``CAP_NET_RAW`` once,
to create the raw ICMP socket at startup, and ``CAP_NET_ADMIN`` only if
``-d``/``-m`` ask for ``SO_DEBUG``/``SO_MARK`` — both in setup functions
executed before the send/receive loop, so every privilege can be dropped
very early (§VII-C).  Expected phase shape (paper Table III): a tiny
phase with both capabilities, a tiny phase with ``CAP_NET_ADMIN`` only,
then ≈97 % of execution with an empty permitted set.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

SOURCE = """
// ping: send ICMP echo requests, count replies.

int create_icmp_socket() {
    // Raw sockets need CAP_NET_RAW; done once, first thing.
    priv_raise(CAP_NET_RAW);
    int fd = socket_raw();
    priv_lower(CAP_NET_RAW);
    return fd;
}

void setup_socket_options(int fd, int debug, int mark) {
    // -d and -m map to SO_DEBUG / SO_MARK, which need CAP_NET_ADMIN.
    priv_raise(CAP_NET_ADMIN);
    if (debug == 1) { setsockopt(fd, "debug"); }
    if (mark == 1) { setsockopt(fd, "mark"); }
    priv_lower(CAP_NET_ADMIN);
}

int icmp_checksum(int seq) {
    // Fold the sequence number through the 16-bit ones-complement sum.
    int sum = seq;
    int round = 0;
    while (round < 24) {
        sum = (sum * 31 + round) % 65535;
        round = round + 1;
    }
    return sum;
}

void main() {
    int count = 4;
    int debug = 0;
    int mark = 0;
    str target = "";
    int n = argc();
    int i = 0;
    while (i < n) {
        str a = arg_str(i);
        if (streq(a, "-c") == 1) {
            i = i + 1;
            count = str_to_int(arg_str(i));
        } else if (streq(a, "-d") == 1) {
            debug = 1;
        } else if (streq(a, "-m") == 1) {
            mark = 1;
        } else {
            target = a;
        }
        i = i + 1;
    }

    int fd = create_icmp_socket();
    if (fd < 0) {
        print_str("ping: raw socket failed");
        exit(2);
    }
    setup_socket_options(fd, debug, mark);
    connect(fd, 0);

    // All privileges are dead from here on.
    int sent = 0;
    int received = 0;
    int seq;
    for (seq = 0; seq < count; seq = seq + 1) {
        int ck = icmp_checksum(seq);
        net_send(fd, strcat("icmp-echo:", int_to_str(ck)));
        sent = sent + 1;
        str reply = net_recv(fd);
        if (strlen(reply) > 0) {
            received = received + 1;
        }
        // inter-packet interval
        int wait = 0;
        while (wait < 30) { wait = wait + 1; }
    }
    close(fd);
    print_str(strcat(int_to_str(sent), " packets transmitted"));
    print_str(strcat(int_to_str(received), " received"));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """ping -c 10 localhost, with every echo answered (paper §VII-B)."""
    return ProgramSpec(
        name="ping",
        description="Test reachability of remote hosts",
        source=SOURCE,
        permitted=CapabilitySet.of("CapNetRaw", "CapNetAdmin"),
        argv=("-c", "10", "localhost"),
        env={"incoming": [f"icmp-reply:{i}" for i in range(10)]},
    )
