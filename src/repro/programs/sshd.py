"""The sshd model (OpenSSH 6.6p1 in the paper, Table II).

sshd is the paper's worst case: apart from ``CAP_NET_BIND_SERVICE``
(dropped right after binding port 22), every privilege stays permitted
for essentially the whole run (§VII-C).  Two mechanisms cause this, and
the model reproduces both:

* **privileged signal handlers** — the SIGCHLD reaper raises
  ``CAP_KILL``; a handler can run at any instruction, so AutoPriv must
  pin its privileges live forever;
* **the conservative call graph** — the packet-processing loop
  dispatches through a function pointer.  AutoPriv over-approximates the
  targets of that indirect call with *every address-taken function*,
  including the never-invoked admin-request handler that performs the
  sftp ``chroot()``.  ``CAP_SYS_CHROOT`` therefore stays live through
  the loop even though no executed path uses it — the exact imprecision
  §VII-C hypothesises (the A2 ablation quantifies it by switching to a
  type-matched call graph).

Workload (§VII-B): started in the foreground, one scp client fetching a
1 MB file from the other user's account; the session authenticates as
user 1001 and the service switches gid then uid to 1001.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

SOURCE = """
// sshd: login server with encrypted sessions (single-connection model).

int child_pid;
int session_uid;

void sigchld_reaper(int signum) {
    // Reap finished session children; probing/killing other-user
    // children needs CAP_KILL, so this handler pins it forever.
    if (child_pid > 0) {
        priv_raise(CAP_KILL);
        kill(child_pid, 0);
        priv_lower(CAP_KILL);
    }
}

int bind_ssh_port() {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, 22);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

int key_exchange(int conn) {
    // Diffie-Hellman + symmetric setup: the overwhelming majority of
    // instructions in an scp session this short.
    int state = 5;
    int round;
    for (round = 0; round < 540; round = round + 1) {
        int limb = 0;
        while (limb < 12) {
            state = (state * 48271 + limb + round) % 2147483647;
            limb = limb + 1;
        }
    }
    return state;
}

int handle_kexinit(int conn) {
    return key_exchange(conn);
}

int handle_userauth(int conn) {
    // Password authentication against the shadow database.
    str line = net_recv(conn);
    str account = str_field(line, 1, ":");
    str typed = str_field(line, 2, ":");
    priv_raise(CAP_DAC_READ_SEARCH);
    str stored = getspnam(account);
    priv_lower(CAP_DAC_READ_SEARCH);
    if (strlen(stored) == 0) { return -1; }
    if (streq(stored, crypt(typed)) == 0) { return -1; }
    return getpwnam_uid(account);
}

int handle_channel_open(int conn) {
    // Record the login and hand the user a pty.
    priv_raise(CAP_DAC_OVERRIDE);
    int log = open("/var/log/lastlog", "wcr", 0o644);
    if (log >= 0) {
        write(log, "login");
        close(log);
    }
    priv_lower(CAP_DAC_OVERRIDE);
    priv_raise(CAP_CHOWN);
    chown("/dev/pts7", session_uid, session_uid);
    priv_lower(CAP_CHOWN);
    return 0;
}

int handle_admin_request(int conn, int option) {
    // The sftp-chroot path: never exercised by this workload, but
    // address-taken, so the conservative call graph keeps
    // CAP_SYS_CHROOT live through the dispatch loop.
    priv_raise(CAP_SYS_CHROOT);
    chroot("/var/empty");
    priv_lower(CAP_SYS_CHROOT);
    return option;
}

void become_user(int uid, int gid) {
    priv_raise(CAP_SETGID);
    setgroups1(gid);
    int grc = setgid(gid);
    priv_lower(CAP_SETGID);
    if (grc < 0) {
        print_str("sshd: setgid failed");
        exit(1);
    }
    // Re-check the group list before dropping uid (OpenSSH's
    // permanently_set_uid does the same sanity pass).
    int check = 0;
    int g;
    for (g = 0; g < 8; g = g + 1) {
        check = (check * 7 + g) % 509;
    }
    priv_raise(CAP_SETUID);
    setuid(uid);
    priv_lower(CAP_SETUID);
}

int serve_scp(int conn, str path) {
    int fd = open(path, "r");
    if (fd < 0) { return -1; }
    str body = read(fd);
    close(fd);
    int chunks = (strlen(body) / 128) + 1;
    int i;
    for (i = 0; i < chunks; i = i + 1) {
        int sum = 0;
        int b = 0;
        while (b < 8) {
            sum = (sum + i + b) % 65521;
            b = b + 1;
        }
        net_send(conn, strcat("data:", int_to_str(sum)));
    }
    return chunks;
}

int dispatch_message(int conn, int msgtype) {
    fnptr handler = &handle_kexinit;
    if (msgtype == 50) { handler = &handle_userauth; }
    if (msgtype == 90) { handler = &handle_channel_open; }
    if (msgtype == 98) { handler = &handle_admin_request; }
    return handler(conn);
}

void main() {
    child_pid = 0;
    session_uid = 0;
    signal(SIGCHLD, &sigchld_reaper);

    int server = bind_ssh_port();
    if (server < 0) {
        print_str("sshd: bind failed");
        exit(2);
    }

    int conn = net_accept(server);
    while (conn >= 0) {
        // Protocol phases, each dispatched through the handler table.
        int kex = dispatch_message(conn, 20);
        int uid = dispatch_message(conn, 50);
        if (uid < 0) {
            print_str("sshd: authentication failed");
            exit(1);
        }
        session_uid = uid;
        int chan = dispatch_message(conn, 90);

        // Session child: become the authenticated user, serve the file.
        become_user(uid, getpw_gid(uid));
        str request = net_recv(conn);
        str path = str_field(request, 2, " ");
        int sent = serve_scp(conn, path);
        print_str(strcat("scp chunks: ", int_to_str(sent)));
        conn = net_accept(server);
    }
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """Device nodes the session would allocate."""
    kernel.fs.create_file("/dev/pts7", UID_ROOT, UID_ROOT, 0o620)
    kernel.fs.mkdir("/var/empty", UID_ROOT, UID_ROOT, 0o755)


def spec() -> ProgramSpec:
    """sshd -d serving one scp fetch of the other user's 1 MB file."""
    return ProgramSpec(
        name="sshd",
        description="Login server with encrypted sessions",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapChown", "CapDacOverride", "CapDacReadSearch", "CapKill",
            "CapSetgid", "CapSetuid", "CapNetBindService", "CapSysChroot",
        ),
        env={
            "connections": [1],
            "incoming": [
                "userauth:other:otherpw",
                "scp -f /home/other/payload.bin",
            ],
        },
        setup=_setup,
    )
