"""sshd with privilege separation — the extension study.

The paper shows sshd retaining every privilege for ≈99 % of execution
(Table III) and notes the causes; what it does not evaluate is the
mitigation OpenSSH actually deploys: **privilege separation**.  This
model restructures our sshd the way OpenSSH's monitor/child split does:

* the *monitor* (parent) keeps the capabilities, binds the port,
  authenticates the client and prepares the session — a few hundred
  instructions;
* the *session child*, forked per connection, switches to the
  authenticated user and **explicitly removes every inherited
  capability** (OpenSSH's ``permanently_set_uid`` discipline), then runs
  the expensive key exchange and file transfer — the ≈99 % of
  instructions that dominated Table III.

The point of the study: AutoPriv alone cannot produce this structure.
Its liveness is process-agnostic — the monitor needs its capabilities
again for the *next* connection, so no automatic removal point exists
inside the loop; only the programmer knows the child's copy of the
permitted set can be destroyed.  With the split, the heavy phase runs
with an empty permitted set in a process of its own, and the measured
exposure collapses (see ``tests/test_privsep_study.py`` and
``benchmarks/bench_privsep_study.py``).

Simplification vs OpenSSH 6.6: we fork once per connection after
authentication (OpenSSH also has a pre-auth network child); the
monitor/child privilege boundary — the part that matters for privilege
measurement — is the same.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec
from repro.programs.sshd import _setup

SOURCE = """
// sshd with OpenSSH-style privilege separation (single connection).

int child_pid;
int session_uid;

void sigchld_reaper(int signum) {
    if (child_pid > 0) {
        priv_raise(CAP_KILL);
        kill(child_pid, 0);
        priv_lower(CAP_KILL);
    }
}

int bind_ssh_port() {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, 22);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

int authenticate(int conn) {
    // The monitor performs the privileged shadow lookup on the child's
    // behalf (OpenSSH's monitor_read/mm_answer_authpassword).
    str line = net_recv(conn);
    str account = str_field(line, 1, ":");
    str typed = str_field(line, 2, ":");
    priv_raise(CAP_DAC_READ_SEARCH);
    str stored = getspnam(account);
    priv_lower(CAP_DAC_READ_SEARCH);
    if (strlen(stored) == 0) { return -1; }
    if (streq(stored, crypt(typed)) == 0) { return -1; }
    return getpwnam_uid(account);
}

void prepare_session(int uid) {
    // Monitor-side session setup: lastlog and pty ownership.
    priv_raise(CAP_DAC_OVERRIDE);
    int log = open("/var/log/lastlog", "wcr", 0o644);
    if (log >= 0) {
        write(log, "login");
        close(log);
    }
    priv_lower(CAP_DAC_OVERRIDE);
    priv_raise(CAP_CHOWN);
    chown("/dev/pts7", uid, uid);
    priv_lower(CAP_CHOWN);
}

int key_exchange(int conn) {
    // The heavy crypto — now inside the unprivileged child.
    int state = 5;
    int round;
    for (round = 0; round < 540; round = round + 1) {
        int limb = 0;
        while (limb < 12) {
            state = (state * 48271 + limb + round) % 2147483647;
            limb = limb + 1;
        }
    }
    return state;
}

int serve_scp(int conn, str path) {
    int fd = open(path, "r");
    if (fd < 0) { return -1; }
    str body = read(fd);
    close(fd);
    int chunks = (strlen(body) / 128) + 1;
    int i;
    for (i = 0; i < chunks; i = i + 1) {
        int sum = 0;
        int b = 0;
        while (b < 8) {
            sum = (sum + i + b) % 65521;
            b = b + 1;
        }
        net_send(conn, strcat("data:", int_to_str(sum)));
    }
    return chunks;
}

int session_child(int conn) {
    // OpenSSH's permanently_set_uid: become the user, then destroy this
    // process's copy of every capability.  The monitor's copy is
    // untouched — that is the whole point of the fork boundary.
    int uid = session_uid;
    priv_raise(CAP_SETGID);
    setgroups1(getpw_gid(uid));
    setgid(getpw_gid(uid));
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    int rc = setuid(uid);
    priv_lower(CAP_SETUID);
    if (rc < 0) {
        print_str("sshd-child: setuid failed");
        return 1;
    }
    priv_remove(CAP_CHOWN | CAP_DAC_OVERRIDE | CAP_DAC_READ_SEARCH | CAP_KILL
                | CAP_SETGID | CAP_SETUID | CAP_NET_BIND_SERVICE
                | CAP_SYS_CHROOT);

    // Everything heavy happens with an empty permitted set.
    int kex = key_exchange(conn);
    str request = net_recv(conn);
    str path = str_field(request, 2, " ");
    int sent = serve_scp(conn, path);
    print_str(strcat("scp chunks: ", int_to_str(sent)));
    return 0;
}

void main() {
    child_pid = 0;
    session_uid = 0;
    signal(SIGCHLD, &sigchld_reaper);

    int server = bind_ssh_port();
    if (server < 0) {
        print_str("sshd: bind failed");
        exit(2);
    }

    int conn = net_accept(server);
    while (conn >= 0) {
        int uid = authenticate(conn);
        if (uid < 0) {
            print_str("sshd: authentication failed");
            exit(1);
        }
        session_uid = uid;
        prepare_session(uid);
        int status = spawn_wait(&session_child, conn);
        if (status != 0) {
            print_str("sshd: session failed");
            exit(1);
        }
        conn = net_accept(server);
    }
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """The same workload as the monolithic sshd model."""
    return ProgramSpec(
        name="sshdPrivsep",
        description="sshd restructured with OpenSSH-style privilege separation",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapChown", "CapDacOverride", "CapDacReadSearch", "CapKill",
            "CapSetgid", "CapSetuid", "CapNetBindService", "CapSysChroot",
        ),
        env={
            "connections": [1],
            "incoming": [
                "userauth:other:otherpw",
                "scp -f /home/other/payload.bin",
            ],
        },
        setup=_setup,
    )
