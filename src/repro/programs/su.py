"""The su model (shadow-utils 4.1.5.1 in the paper, Table II).

su switches to another user after password authentication.  Its
privilege story (§VII-C):

* ``CAP_DAC_READ_SEARCH`` — ``getspnam()`` on the *target* account; su
  re-prompts on failure, so the capability stays live through the whole
  authentication retry loop — 82 % of execution in the paper;
* ``CAP_SETGID`` — would switch the effective gid to the sulog group if
  the system is configured with a sulog (Ubuntu is not, so the use is
  statically present but dynamically skipped), and later sets the
  supplementary list and gid of the target user;
* ``CAP_SETUID`` — becomes the target user just before running the
  command; both id switches happen *very late*, which is why su stays
  vulnerable to attacks 1/2/4 for ≈88 % of its execution.

Workload (§VII-B): ``su other -c ls`` — switch to the other regular user
and run ``ls``.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

SOURCE = """
// su: run a command as another user after authenticating.

int child_pid;

void forward_sigterm(int signum) {
    // The parent forwards termination to the command it spawned.
    if (child_pid > 0) {
        kill(child_pid, signum);
    }
}

int verify_password(str stored, str typed) {
    // crypt() dominated: key-stretching plus constant-time compare.
    int rounds = 430;
    int state = strlen(typed) + 3;
    int r;
    for (r = 0; r < rounds; r = r + 1) {
        int mix = 0;
        while (mix < 12) {
            state = (state * 29 + mix + r) % 1048573;
            mix = mix + 1;
        }
    }
    str computed = crypt(typed);
    return streq(stored, computed);
}

int authenticate(str account) {
    // Up to three attempts; the shadow read needs CAP_DAC_READ_SEARCH
    // and stays live across the whole retry loop.
    int attempts = 0;
    while (attempts < 3) {
        priv_raise(CAP_DAC_READ_SEARCH);
        str stored = getspnam(account);
        priv_lower(CAP_DAC_READ_SEARCH);
        if (strlen(stored) == 0) {
            return 0;
        }
        str typed = getpass("Password: ");
        if (verify_password(stored, typed) == 1) {
            return 1;
        }
        print_str("su: Authentication failure");
        attempts = attempts + 1;
    }
    return 0;
}

int build_environment(str account, int tuid, int tgid) {
    // Construct the target user's environment (HOME, SHELL, PATH, ...).
    int vars = 0;
    int v;
    for (v = 0; v < 14; v = v + 1) {
        str name = str_field("HOME:SHELL:PATH:TERM:USER:LOGNAME:MAIL:LANG:LC_ALL:EDITOR:PAGER:TMPDIR:PWD:DISPLAY", v, ":");
        str value = strcat(name, strcat("=", account));
        int c = 0;
        while (c < strlen(value) + 8) {
            vars = (vars * 13 + c) % 32749;
            c = c + 1;
        }
    }
    return vars;
}

void log_to_sulog(int enabled, str account) {
    // Only systems configured with a sulog take this path (Ubuntu is
    // not); the capability use is still visible to the static analysis.
    if (enabled == 1) {
        priv_raise(CAP_SETGID);
        setegid(0);
        int fd = open("/var/log/sulog", "w");
        if (fd >= 0) {
            write(fd, strcat("SU ", account));
            close(fd);
        }
        setegid(getgid());
        priv_lower(CAP_SETGID);
    }
}

void switch_groups(int tgid) {
    priv_raise(CAP_SETGID);
    setgroups1(tgid);
    setgid(tgid);
    // Verify the supplementary list took effect (initgroups re-read).
    int check = 0;
    int g;
    for (g = 0; g < 12; g = g + 1) {
        check = (check * 7 + g) % 509;
    }
    priv_lower(CAP_SETGID);
}

void switch_user(int tuid) {
    priv_raise(CAP_SETUID);
    setuid(tuid);
    // Reset signal dispositions for the target user's session.
    int s;
    for (s = 1; s < 4; s = s + 1) {
        signal(s, &forward_sigterm);
    }
    priv_lower(CAP_SETUID);
}

int run_command(str command) {
    // The child command (ls): walk the directory and print entries.
    child_pid = getpid();
    int entries = 0;
    int e;
    for (e = 0; e < 26; e = e + 1) {
        int c = 0;
        while (c < 24) {
            entries = (entries * 3 + c + e) % 8191;
            c = c + 1;
        }
    }
    print_str(command);
    return 0;
}

void main() {
    str account = arg_str(0);
    str command = arg_str(1);
    if (strlen(account) == 0) {
        account = "root";
    }
    int tuid = getpwnam_uid(account);
    if (tuid < 0) {
        print_str("su: user does not exist");
        exit(1);
    }
    int tgid = getpw_gid(tuid);
    signal(SIGTERM, &forward_sigterm);

    if (authenticate(account) == 0) {
        print_str("su: Sorry.");
        exit(1);
    }

    int env = build_environment(account, tuid, tgid);
    log_to_sulog(0, account);

    // The id switches happen only now, at the very end of execution.
    switch_groups(tgid);
    int shellargs = 0;
    int a;
    for (a = 0; a < 9; a = a + 1) {
        shellargs = (shellargs * 5 + a) % 1021;
    }
    switch_user(tuid);

    run_command(command);
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """``su other -c ls`` with the correct password (paper §VII-B)."""
    return ProgramSpec(
        name="su",
        description="Utility to log in as another user",
        source=SOURCE,
        permitted=CapabilitySet.of("CapDacReadSearch", "CapSetgid", "CapSetuid"),
        argv=("other", "ls"),
        stdin=("otherpw",),
    )
