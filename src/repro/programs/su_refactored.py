"""The refactored su (paper §VII-D2, Table V).

The key move: as soon as su knows the target user, it uses its two
capabilities once to plant a *second identity* in the saved ids —
``setresuid(KEEP, shadow_owner, target_uid)`` and
``setresgid(KEEP, etc_gid, target_gid)`` — then drops both capabilities.
From there on:

* the shadow read needs no privilege (the effective uid owns the
  database, eliminating ``CAP_DAC_READ_SEARCH``);
* the final switch to the target user is the *unprivileged*
  ``setres[ug]id`` to the saved ids (credentials(7) allows permuting
  current ids freely).

Expected shape (Table V): capabilities permitted for ≈1 % of execution;
the authentication (≈87 %) and the target-user command (≈12 %) run with
an empty permitted set.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

SOURCE = """
// su (refactored): plant the target identity early, switch without privilege.

int child_pid;

void forward_sigterm(int signum) {
    if (child_pid > 0) {
        kill(child_pid, signum);
    }
}

void plant_identities(int tuid, int tgid) {
    // Refactoring: euid = shadow owner (for getspnam), suid = target
    // (for the later unprivileged switch); same for the gids, with the
    // sulog owner in the effective slot.
    int shadow_owner = stat_owner("/etc/shadow");
    int sulog_group = stat_group("/var/log/sulog");
    priv_raise(CAP_SETUID);
    int rc = setresuid(KEEP, shadow_owner, tuid);
    if (rc < 0) {
        priv_lower(CAP_SETUID);
        print_str("su: cannot plant identity");
        exit(1);
    }
    priv_lower(CAP_SETUID);
    int pause = 0;
    while (pause < 3) { pause = pause + 1; }
    priv_raise(CAP_SETGID);
    setgroups1(tgid);
    int grc = setresgid(KEEP, sulog_group, tgid);
    if (grc < 0) {
        priv_lower(CAP_SETGID);
        print_str("su: cannot plant group identity");
        exit(1);
    }
    // initgroups sanity pass
    int check = 0;
    int g;
    for (g = 0; g < 10; g = g + 1) {
        check = (check * 7 + g) % 509;
    }
    priv_lower(CAP_SETGID);
}

int verify_password(str stored, str typed) {
    int rounds = 430;
    int state = strlen(typed) + 3;
    int r;
    for (r = 0; r < rounds; r = r + 1) {
        int mix = 0;
        while (mix < 12) {
            state = (state * 29 + mix + r) % 1048573;
            mix = mix + 1;
        }
    }
    str computed = crypt(typed);
    return streq(stored, computed);
}

int authenticate(str account) {
    // Unprivileged: the effective uid owns /etc/shadow.
    int attempts = 0;
    while (attempts < 3) {
        str stored = getspnam(account);
        if (strlen(stored) == 0) {
            return 0;
        }
        str typed = getpass("Password: ");
        if (verify_password(stored, typed) == 1) {
            return 1;
        }
        print_str("su: Authentication failure");
        attempts = attempts + 1;
    }
    return 0;
}

int build_environment(str account, int tuid, int tgid) {
    int vars = 0;
    int v;
    for (v = 0; v < 14; v = v + 1) {
        str name = str_field("HOME:SHELL:PATH:TERM:USER:LOGNAME:MAIL:LANG:LC_ALL:EDITOR:PAGER:TMPDIR:PWD:DISPLAY", v, ":");
        str value = strcat(name, strcat("=", account));
        int c = 0;
        while (c < strlen(value) + 8) {
            vars = (vars * 13 + c) % 32749;
            c = c + 1;
        }
    }
    return vars;
}

void log_to_sulog(str account) {
    // Unprivileged: the effective uid owns the sulog now.
    int fd = open("/var/log/sulog", "w");
    if (fd >= 0) {
        write(fd, strcat("SU ", account));
        close(fd);
    }
}

void become_target_unprivileged(int tuid, int tgid) {
    // The unprivileged switch: every id we assign is already one of the
    // current real/effective/saved ids, so no capability is consulted.
    int grc = setresgid(tgid, tgid, tgid);
    if (grc < 0) {
        print_str("su: group switch failed");
        exit(1);
    }
    int s;
    for (s = 1; s < 4; s = s + 1) {
        signal(s, &forward_sigterm);
    }
    int urc = setresuid(tuid, tuid, tuid);
    if (urc < 0) {
        print_str("su: user switch failed");
        exit(1);
    }
}

int run_command(str command) {
    child_pid = getpid();
    int entries = 0;
    int e;
    for (e = 0; e < 26; e = e + 1) {
        int c = 0;
        while (c < 24) {
            entries = (entries * 3 + c + e) % 8191;
            c = c + 1;
        }
    }
    print_str(command);
    return 0;
}

void main() {
    str account = arg_str(0);
    str command = arg_str(1);
    if (strlen(account) == 0) {
        account = "root";
    }
    int tuid = getpwnam_uid(account);
    if (tuid < 0) {
        print_str("su: user does not exist");
        exit(1);
    }
    int tgid = getpw_gid(tuid);
    signal(SIGTERM, &forward_sigterm);

    // All capability use happens here, in the first ~1 %.
    plant_identities(tuid, tgid);

    // Unprivileged: authenticate (~87 %), log, build the environment.
    if (authenticate(account) == 0) {
        print_str("su: Sorry.");
        exit(1);
    }
    log_to_sulog(account);
    int env = build_environment(account, tuid, tgid);

    // Unprivileged identity switch, then the command (~12 %).
    become_target_unprivileged(tuid, tgid);
    run_command(command);
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """The refactored su on the refactored machine image."""
    return ProgramSpec(
        name="suRef",
        description="Refactored su: saved-id switching, no privileges after startup",
        source=SOURCE,
        permitted=CapabilitySet.of("CapSetuid", "CapSetgid"),
        argv=("other", "ls"),
        stdin=("otherpw",),
        refactored_fs=True,
    )
