"""sudohelper: minimal sudo-like elevation helper (corpus exemplar).

Setuid-helper family, alongside passwd and su: starts as the invoking
user, authenticates against the shadow database under a tight
``CAP_DAC_READ_SEARCH`` bracket, then briefly becomes root under
``CAP_SETUID`` to run the requested command and logs the run.  The
elevation window is the profile feature that separates well-behaved
helpers from su-style ones that *stay* root.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.programs.common import ProgramSpec

FAMILY = "setuid-helper"

SOURCE = """
// sudohelper: authenticate, elevate briefly, run, log, drop.

str read_shadow_entry(str user) {
    priv_raise(CAP_DAC_READ_SEARCH);
    str entry = getspnam(user);
    priv_lower(CAP_DAC_READ_SEARCH);
    return entry;
}

int authenticate(str stored, str typed) {
    str computed = crypt(typed);
    int pad = 0;
    int i;
    for (i = 0; i < strlen(stored) + strlen(computed); i = i + 1) {
        pad = (pad * 2 + i) % 97;
    }
    return streq(stored, computed);
}

int run_as_root(int me) {
    // The elevation window: seteuid(0), run the command, seteuid back.
    priv_raise(CAP_SETUID);
    seteuid(0);
    priv_lower(CAP_SETUID);

    int result = 0;
    int step = 0;
    while (step < 50) {
        result = (result * 31 + step) % 65521;
        step = step + 1;
    }

    priv_raise(CAP_SETUID);
    seteuid(me);
    priv_lower(CAP_SETUID);
    return result;
}

void log_invocation(int me, int result) {
    priv_raise(CAP_DAC_OVERRIDE);
    int log = open("/var/log/sulog", "w");
    if (log >= 0) {
        write(log, strcat("sudo:", int_to_str(me)));
        close(log);
    }
    priv_lower(CAP_DAC_OVERRIDE);
}

void main() {
    int me = getuid();
    str user = getpwuid_name(me);
    if (strlen(user) == 0) {
        print_str("sudohelper: unknown user");
        exit(1);
    }
    str stored = read_shadow_entry(user);
    str typed = getpass("Password: ");
    if (authenticate(stored, typed) == 0) {
        print_str("sudohelper: authentication failure");
        exit(1);
    }
    int result = run_as_root(me);
    log_invocation(me, result);
    print_str("sudohelper: done");
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """One authenticated elevated command for the invoking user."""
    return ProgramSpec(
        name="sudohelper",
        description="Minimal sudo-like elevation helper (corpus exemplar)",
        source=SOURCE,
        permitted=CapabilitySet.of("CapDacReadSearch", "CapSetuid", "CapDacOverride"),
        stdin=("userpw",),
    )
