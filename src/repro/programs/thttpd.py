"""The thttpd model (v2.26 in the paper, Table II).

thttpd is the paper's other well-behaved program: all privileged work —
chowning the log, (conditionally) switching uids, chrooting to the
document root, binding port 80, switching gids — happens during startup,
after which the server drops everything and spends ≈90 % of execution in
the request loop with an empty permitted set (§VII-C).

Expected phase shape (Table III): full set ≈0 %, then
{CapSetgid, CapNetBindService, CapSysChroot} ≈10 % (config parsing),
then two tiny phases as chroot and bind retire their capabilities, then
{CapSetgid} briefly, then empty for ≈90 %.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

SOURCE = """
// thttpd: small single-process web server.

int cgi_pid;

void take_over_logfile(int me, int mygid) {
    // The log is created by the init scripts as root; re-own it so the
    // server can append to it after dropping privileges.
    priv_raise(CAP_CHOWN);
    chown("/var/log/thttpd.log", me, mygid);
    priv_lower(CAP_CHOWN);
}

void maybe_switch_user(int switch_user, int target_uid) {
    // Only when started as root with -u does thttpd change uids.
    if (switch_user == 1) {
        priv_raise(CAP_SETUID);
        setuid(target_uid);
        priv_lower(CAP_SETUID);
    }
}

int parse_config() {
    // Read and tokenise /etc/thttpd.conf.
    int fd = open("/etc/thttpd.conf", "r");
    if (fd < 0) { return -1; }
    str conf = read(fd);
    close(fd);
    int options = 0;
    int line;
    for (line = 0; line < 40; line = line + 1) {
        str entry = str_field(conf, line, "\\n");
        if (strlen(entry) > 0) {
            str key = str_field(entry, 0, "=");
            str value = str_field(entry, 1, "=");
            int h = 0;
            int k = 0;
            while (k < strlen(key) + strlen(value)) {
                h = (h * 33 + k) % 8191;
                k = k + 1;
            }
            options = options + 1;
        }
    }
    return options;
}

void enter_chroot_jail() {
    priv_raise(CAP_SYS_CHROOT);
    chroot("/srv/www");
    priv_lower(CAP_SYS_CHROOT);
}

int bind_server_port(int port) {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, port);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

void drop_group(int gid) {
    priv_raise(CAP_SETGID);
    setgroups0();
    setgid(gid);
    priv_lower(CAP_SETGID);
}

void reap_cgi() {
    // CGI children that outlive their timeout get killed (thttpd's
    // cgi_interpose timer path).
    if (cgi_pid > 0) {
        kill(cgi_pid, SIGKILL);
        cgi_pid = 0;
    }
}

int serve_file(int conn, str path) {
    int fd = open(path, "r");
    if (fd < 0) {
        net_send(conn, "HTTP/1.0 404 Not Found");
        return 0;
    }
    str body = read(fd);
    close(fd);
    net_send(conn, "HTTP/1.0 200 OK");
    // Send the body in 16 KB chunks, checksumming each (the ≈90 % loop).
    int chunks = (strlen(body) / 16) + 1;
    int sent = 0;
    int i;
    for (i = 0; i < chunks; i = i + 1) {
        int sum = 0;
        int b = 0;
        while (b < 72) {
            sum = (sum + i * 7 + b) % 65521;
            b = b + 1;
        }
        net_send(conn, strcat("chunk:", int_to_str(sum)));
        sent = sent + 16;
    }
    return sent;
}

void main() {
    int me = getuid();
    int mygid = getgid();
    cgi_pid = 0;

    take_over_logfile(me, mygid);
    maybe_switch_user(0, me);

    int options = parse_config();
    if (options < 0) {
        print_str("thttpd: no config");
        exit(2);
    }

    enter_chroot_jail();
    int server = bind_server_port(80);
    if (server < 0) {
        print_str("thttpd: bind failed");
        exit(2);
    }
    drop_group(mygid);

    // Everything privileged is over; serve requests.
    int served = 0;
    int conn = net_accept(server);
    while (conn >= 0) {
        str request = net_recv(conn);
        str path = str_field(request, 1, " ");
        int n = serve_file(conn, strcat("/srv/www", path));
        served = served + 1;
        reap_cgi();
        int log = open("/var/log/thttpd.log", "w");
        if (log >= 0) {
            write(log, strcat("GET ", path));
            close(log);
        }
        conn = net_accept(server);
    }
    print_str(strcat(int_to_str(served), " requests served"));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """Files the init scripts would have created before thttpd starts."""
    kernel.fs.create_file("/var/log/thttpd.log", UID_ROOT, UID_ROOT, 0o644)
    config = "\n".join(
        ["port=80", "dir=/srv/www", "user=www", "logfile=/var/log/thttpd.log",
         "pidfile=/var/run/thttpd.pid", "charset=utf-8"]
        + [f"option{i}=value{i}" for i in range(24)]
    )
    kernel.fs.create_file("/etc/thttpd.conf", UID_ROOT, UID_ROOT, 0o644, config)


def spec() -> ProgramSpec:
    """ApacheBench fetching one 1 MB file, concurrency 1 (paper §VII-B)."""
    return ProgramSpec(
        name="thttpd",
        description="Small single-process web server",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapChown", "CapSetgid", "CapSetuid", "CapNetBindService", "CapSysChroot"
        ),
        env={"connections": [1], "incoming": ["GET /index.html HTTP/1.0"]},
        setup=_setup,
    )
