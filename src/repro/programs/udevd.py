"""udevd: device-node manager (corpus exemplar, daemon family).

The daemon that owns ``/dev``: per hotplug event it fixes a device
node's owner, group and mode under a ``CAP_CHOWN`` / ``CAP_FOWNER``
bracket.  No network, no uid changes — the chown-comb direction of the
daemon peer group.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "daemon"

SOURCE = """
// udevd: apply ownership rules to device nodes as events arrive.

int load_rules() {
    int fd = open("/etc/udev.rules", "r");
    if (fd < 0) { return 0; }
    str rules = read(fd);
    close(fd);
    int count = 0;
    int line;
    for (line = 0; line < 6; line = line + 1) {
        if (strlen(str_field(rules, line, "\\n")) > 0) {
            count = count + 1;
        }
    }
    return count;
}

int apply_rule(str node, int mode, int event) {
    // Match the rule (pure compute), then fix the node under one
    // file-ownership bracket.
    int match = 0;
    int step = 0;
    while (step < 40) {
        match = (match * 13 + step + event) % 8191;
        step = step + 1;
    }
    priv_raise(CAP_CHOWN | CAP_FOWNER);
    chown(node, 0, 0);
    chmod(node, mode);
    priv_lower(CAP_CHOWN | CAP_FOWNER);
    return match;
}

void main() {
    int rules = load_rules();
    if (rules == 0) {
        print_str("udevd: no rules");
        exit(0);
    }
    int events = 0;
    int event;
    for (event = 0; event < 4; event = event + 1) {
        int result = apply_rule("/dev/null", 438, event);
        events = events + 1;
    }
    print_str(strcat("udevd: events ", int_to_str(events)));
    exit(0);
}
"""


def _setup(kernel, vm) -> None:
    """The ownership rule set."""
    rules = "\n".join(
        ['KERNEL=="null", MODE="0666"', 'KERNEL=="mem", GROUP="kmem"']
    )
    kernel.fs.create_file("/etc/udev.rules", UID_ROOT, UID_ROOT, 0o644, rules)


def spec() -> ProgramSpec:
    """Four hotplug events against a two-rule set."""
    return ProgramSpec(
        name="udevd",
        description="Device-node manager (corpus exemplar)",
        source=SOURCE,
        setup=_setup,
        permitted=CapabilitySet.of("CapChown", "CapFowner"),
        uid=0,
        gid=0,
    )
