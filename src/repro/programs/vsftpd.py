"""vsftpd: hardened FTP daemon (corpus exemplar, daemon family).

The daemon-family textbook citizen, modeled on vsftpd's "one privileged
op per bracket, then drop everything" discipline: bind port 21 under
``CAP_NET_BIND_SERVICE``, chroot into the FTP root under
``CAP_SYS_CHROOT``, switch to the ftp user under ``CAP_SETGID`` /
``CAP_SETUID``, then serve with an empty effective set for the long
tail of execution.
"""

from __future__ import annotations

from repro.caps import CapabilitySet
from repro.oskernel.setup import UID_ROOT
from repro.programs.common import ProgramSpec

FAMILY = "daemon"

SOURCE = """
// vsftpd: bind, jail, drop, serve.

int bind_ftp_port() {
    priv_raise(CAP_NET_BIND_SERVICE);
    int fd = socket();
    int rc = bind(fd, 21);
    priv_lower(CAP_NET_BIND_SERVICE);
    if (rc < 0) { return -1; }
    listen(fd);
    return fd;
}

void enter_jail() {
    priv_raise(CAP_SYS_CHROOT);
    chroot("/srv/www");
    priv_lower(CAP_SYS_CHROOT);
}

void become_ftp_user(int uid, int gid) {
    priv_raise(CAP_SETGID);
    setgroups0();
    setgid(gid);
    priv_lower(CAP_SETGID);
    priv_raise(CAP_SETUID);
    setuid(uid);
    priv_lower(CAP_SETUID);
}

int handle_session(int conn) {
    net_send(conn, "220 ready");
    str command = net_recv(conn);
    int fd = open("/srv/www/index.html", "r");
    int bytes = 0;
    if (fd >= 0) {
        str body = read(fd);
        close(fd);
        // RETR transfer loop: checksum and send in chunks.
        int chunks = (strlen(body) / 64) + 1;
        int i;
        for (i = 0; i < chunks; i = i + 1) {
            int sum = 0;
            int b = 0;
            while (b < 24) {
                sum = (sum + i * 5 + b) % 65521;
                b = b + 1;
            }
            net_send(conn, int_to_str(sum));
            bytes = bytes + 64;
        }
    }
    net_send(conn, "226 done");
    return bytes;
}

void main() {
    int server = bind_ftp_port();
    if (server < 0) {
        print_str("vsftpd: bind failed");
        exit(2);
    }
    enter_jail();
    become_ftp_user(998, 998);

    int sessions = 0;
    int conn = net_accept(server);
    while (conn >= 0) {
        int bytes = handle_session(conn);
        sessions = sessions + 1;
        conn = net_accept(server);
    }
    print_str(strcat("vsftpd: sessions ", int_to_str(sessions)));
    exit(0);
}
"""


def spec() -> ProgramSpec:
    """Two anonymous RETR sessions against the bundled docroot."""
    return ProgramSpec(
        name="vsftpd",
        description="Hardened FTP daemon (corpus exemplar)",
        source=SOURCE,
        permitted=CapabilitySet.of(
            "CapNetBindService", "CapSysChroot", "CapSetuid", "CapSetgid"
        ),
        uid=0,
        gid=0,
        env={"connections": [1, 2], "incoming": ["RETR index.html", "RETR index.html"]},
    )
