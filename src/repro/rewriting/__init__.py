"""A bounded term/object rewriting engine — our substitute for Maude 2.7.

The paper implements ROSA in Maude with the Full-Maude object extension
(§VI).  This package reimplements the fragment of Maude that ROSA uses:

* :mod:`repro.rewriting.terms` — first-order terms, variables, matching;
* :mod:`repro.rewriting.rules` — equations (normalisation) and rules,
  bundled into :class:`RewriteSystem` modules;
* :mod:`repro.rewriting.objects` — Object Maude configurations: multisets
  of objects and messages with canonical (associative-commutative) keys;
* :mod:`repro.rewriting.search` — the bounded breadth-first ``search``
  command with state/depth/time budgets and a tri-state outcome.
"""

from repro.rewriting.terms import (
    Atom,
    Compound,
    Substitution,
    Term,
    Var,
    match,
    op,
    replace_at,
    subterms,
    term,
)
from repro.rewriting.rules import (
    Equation,
    NormalizationError,
    RewriteSystem,
    TermRule,
    normalize,
    rewrite_once,
)
from repro.rewriting.objects import (
    Configuration,
    MessageRule,
    Msg,
    Obj,
    ObjectRule,
    ObjectSystem,
)
from repro.rewriting.reduction import (
    Footprint,
    ReductionStats,
    TIE_CAP,
    canonical_key,
    footprint,
    typed_fset,
    typed_id,
)
from repro.rewriting.search import (
    MAX_RETAINED_SAMPLES,
    PROGRESS_INTERVAL,
    ProgressSample,
    SearchBudget,
    SearchOutcome,
    SearchResult,
    SearchStats,
    breadth_first_search,
)
from repro.rewriting.termsearch import matched_substitution, search_terms

__all__ = [
    "Atom",
    "Compound",
    "Configuration",
    "Equation",
    "Footprint",
    "MAX_RETAINED_SAMPLES",
    "MessageRule",
    "Msg",
    "NormalizationError",
    "Obj",
    "ObjectRule",
    "ObjectSystem",
    "PROGRESS_INTERVAL",
    "ProgressSample",
    "ReductionStats",
    "RewriteSystem",
    "SearchBudget",
    "SearchOutcome",
    "SearchResult",
    "SearchStats",
    "Substitution",
    "TIE_CAP",
    "Term",
    "TermRule",
    "Var",
    "breadth_first_search",
    "canonical_key",
    "footprint",
    "match",
    "matched_substitution",
    "search_terms",
    "normalize",
    "typed_fset",
    "typed_id",
    "op",
    "replace_at",
    "rewrite_once",
    "subterms",
    "term",
]
