"""Object/message configurations — the Object Maude sugar.

Maude's object extension models a concurrent system as an associative,
commutative *configuration*: a multiset of objects
(``< id : Class | attr : value, ... >``) and messages waiting to be
consumed.  Rewrite rules match an object together with a message and
produce updated objects (and possibly new messages).

We implement configurations as immutable multisets with canonical hash
keys, so the breadth-first search in :mod:`repro.rewriting.search`
identifies configurations up to reordering — which is exactly the
associative-commutative equality Maude provides.

Attribute values are plain hashable Python values (ints, strings,
frozensets, tuples); this keeps ROSA's rules readable while preserving
the term-rewriting discipline: every rule consumes a message and produces
a new configuration, never mutating in place.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Optional, Tuple

_MASK64 = (1 << 64) - 1


def _mix(value: int) -> int:
    """Bijective 64-bit mixer (splitmix64 finalizer) over an element hash.

    Configuration hashes are *multiset homomorphic*: the hash of a
    configuration is the wrapped sum of ``_mix(hash(element))`` over its
    element occurrences, so :meth:`Configuration.add` / ``remove`` /
    ``update_object`` maintain the hash with O(1) arithmetic instead of
    rehashing the whole object graph.  Plain summation of raw hashes
    would cancel catastrophically (e.g. small-int hashes); the mixer
    spreads each element over the full 64 bits first.
    """
    value &= _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _canonical_value(value) -> Hashable:
    """A deterministic, hashable key for an attribute value."""
    if isinstance(value, frozenset):
        return ("frozenset",) + tuple(sorted(value, key=lambda item: (str(type(item)), repr(item))))
    if isinstance(value, tuple):
        return ("tuple",) + tuple(_canonical_value(item) for item in value)
    return value


class Obj:
    """One object in a configuration: ``< oid : cls | attrs >``.

    Objects are immutable; :meth:`update` returns a modified copy.  The
    ``oid`` is unique within a configuration (the rewriting layer does not
    enforce this; :class:`Configuration.update_object` does).
    """

    __slots__ = ("oid", "cls", "attrs", "_key", "_hash")

    def __init__(self, oid: int, cls: str, **attrs) -> None:
        self.oid = oid
        self.cls = cls
        self.attrs = dict(attrs)
        self._key = (
            "obj",
            cls,
            oid,
            tuple(sorted((name, _canonical_value(value)) for name, value in attrs.items())),
        )
        # Objects are shared across the many configurations a search
        # builds, so the canonical key is hashed once, not per lookup.
        self._hash = hash(self._key)

    def __getitem__(self, name: str):
        return self.attrs[name]

    def get(self, name: str, default=None):
        return self.attrs.get(name, default)

    def update(self, **changes) -> "Obj":
        """Return a copy with the given attributes replaced."""
        attrs = dict(self.attrs)
        attrs.update(changes)
        return Obj(self.oid, self.cls, **attrs)

    @property
    def key(self) -> Hashable:
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Obj) and other._key == self._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}: {value!r}" for name, value in sorted(self.attrs.items()))
        return f"< {self.oid} : {self.cls} | {inner} >"

    def __reduce__(self):
        # Rebuild through __init__ so cached hashes are recomputed in the
        # receiving process (str hashes are salted per interpreter).
        return (_rebuild_obj, (self.oid, self.cls, self.attrs))


def _rebuild_obj(oid: int, cls: str, attrs: Dict) -> "Obj":
    return Obj(oid, cls, **attrs)


class Msg:
    """One pending message, e.g. a system call the process may execute.

    ``args`` is a tuple of hashable values.  ROSA encodes wildcards as the
    sentinel ``-1`` in message arguments, mirroring the paper's Figure 2.
    """

    __slots__ = ("name", "args", "_key", "_hash")

    def __init__(self, name: str, *args) -> None:
        self.name = name
        self.args = tuple(args)
        self._key = ("msg", name, tuple(_canonical_value(arg) for arg in self.args))
        self._hash = hash(self._key)

    @property
    def key(self) -> Hashable:
        return self._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Msg) and other._key == self._key

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ",".join(repr(arg) for arg in self.args)
        return f"{self.name}({inner})"

    def __reduce__(self):
        # Rebuild through __init__ so cached hashes are recomputed in the
        # receiving process (str hashes are salted per interpreter).
        return (Msg, (self.name,) + self.args)


class Configuration:
    """An immutable multiset of objects and messages.

    Multiset semantics matter: ROSA lets the user say an attacker may
    execute a given system call N times by including the message N times
    (§V-B), so duplicate messages must be preserved and consumed one at a
    time.
    """

    __slots__ = ("_counts", "_ihash", "_key", "_by_oid", "_msg_names")

    def __init__(self, elements: Iterable = ()) -> None:
        counts: Dict = {}
        for element in elements:
            if not isinstance(element, (Obj, Msg)):
                raise TypeError(f"configuration element must be Obj or Msg: {element!r}")
            counts[element] = counts.get(element, 0) + 1
        self._init_from_counts(counts)

    def _init_from_counts(self, counts: Dict, ihash: Optional[int] = None) -> None:
        self._counts = counts
        if ihash is None:
            ihash = 0
            for element, count in counts.items():
                ihash = (ihash + count * _mix(element._hash)) & _MASK64
        self._ihash = ihash
        # The canonical key and the lookup indexes are computed lazily:
        # most configurations a search constructs are immediately rejected
        # by the visited set (via the incremental hash plus a count-map
        # comparison) and never enumerated again.
        self._key: Optional[Tuple] = None
        self._by_oid: Optional[Dict[int, Obj]] = None
        self._msg_names: Optional[frozenset] = None

    @classmethod
    def _from_counts(
        cls, counts: Dict, ihash: Optional[int] = None
    ) -> "Configuration":
        """Internal fast constructor from an already-validated count map."""
        config = cls.__new__(cls)
        config._init_from_counts(counts, ihash)
        return config

    def __reduce__(self):
        return (Configuration, (list(self),))

    # -- canonical identity --------------------------------------------------

    @property
    def key(self) -> Hashable:
        """Canonical hashable key: equal keys mean AC-equal configurations.

        Built on first access — searches that dedup on the configuration
        itself (incremental hash + count-map equality) never pay for it.
        """
        key = self._key
        if key is None:
            key = self._key = tuple(
                sorted((elem.key, count) for elem, count in self._counts.items())
            )
        return key

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Configuration) and other._counts == self._counts

    def __hash__(self) -> int:
        # The incrementally maintained multiset hash: O(1) here, updated
        # per functional edit instead of rehashed from the object graph.
        return self._ihash

    # -- iteration -------------------------------------------------------------

    def __iter__(self) -> Iterator:
        for element, count in self._counts.items():
            for _ in range(count):
                yield element

    def __len__(self) -> int:
        return sum(self._counts.values())

    def count(self, element) -> int:
        return self._counts.get(element, 0)

    def objects(self, cls: Optional[str] = None) -> Iterator[Obj]:
        """All objects, optionally filtered by class name."""
        for element in self._counts:
            if isinstance(element, Obj) and (cls is None or element.cls == cls):
                yield element

    def messages(self, name: Optional[str] = None) -> Iterator[Msg]:
        """All distinct pending messages, optionally filtered by name."""
        for element in self._counts:
            if isinstance(element, Msg) and (name is None or element.name == name):
                yield element

    def message_names(self) -> frozenset:
        """The set of distinct pending message names (cached).

        This is the rewrite layer's rule index: a message-triggered rule
        can only fire when its trigger name is present, so rule systems
        consult this set to skip rules outright.
        """
        names = self._msg_names
        if names is None:
            names = self._msg_names = frozenset(
                element.name for element in self._counts if isinstance(element, Msg)
            )
        return names

    def find_object(self, oid: int) -> Optional[Obj]:
        """The object with identifier ``oid``, or None."""
        index = self._by_oid
        if index is None:
            index = self._by_oid = {
                element.oid: element
                for element in self._counts
                if isinstance(element, Obj)
            }
        return index.get(oid)

    # -- functional updates ------------------------------------------------------

    def add(self, *elements) -> "Configuration":
        """Return a configuration with ``elements`` added."""
        counts = dict(self._counts)
        ihash = self._ihash
        for element in elements:
            if not isinstance(element, (Obj, Msg)):
                raise TypeError(f"configuration element must be Obj or Msg: {element!r}")
            counts[element] = counts.get(element, 0) + 1
            ihash = (ihash + _mix(element._hash)) & _MASK64
        return Configuration._from_counts(counts, ihash)

    def remove(self, element) -> "Configuration":
        """Return a configuration with one occurrence of ``element`` removed.

        :raises KeyError: if the element is not present.
        """
        count = self._counts.get(element, 0)
        if count == 0:
            raise KeyError(f"element not in configuration: {element!r}")
        counts = dict(self._counts)
        if count == 1:
            del counts[element]
        else:
            counts[element] = count - 1
        ihash = (self._ihash - _mix(element._hash)) & _MASK64
        return Configuration._from_counts(counts, ihash)

    def update_object(self, new_obj: Obj) -> "Configuration":
        """Replace the object whose oid matches ``new_obj.oid``.

        :raises KeyError: if no object with that oid exists.
        """
        old = self.find_object(new_obj.oid)
        if old is None:
            raise KeyError(f"no object with oid {new_obj.oid}")
        if old == new_obj:
            return self
        counts = dict(self._counts)
        count = counts[old]
        if count == 1:
            del counts[old]
        else:  # pragma: no cover - object oids are unique in practice
            counts[old] = count - 1
        counts[new_obj] = counts.get(new_obj, 0) + 1
        ihash = (self._ihash - _mix(old._hash) + _mix(new_obj._hash)) & _MASK64
        return Configuration._from_counts(counts, ihash)

    def consume(self, message: Msg, *updates: Obj) -> "Configuration":
        """Remove one occurrence of ``message`` and apply object updates.

        This is the shape of almost every ROSA rule: a process consumes a
        system-call message and one or more objects change state.
        """
        config = self.remove(message)
        for obj in updates:
            config = config.update_object(obj)
        return config

    def __repr__(self) -> str:
        parts = sorted(repr(element) for element in self)
        return "Configuration{\n  " + "\n  ".join(parts) + "\n}"


class ObjectRule:
    """One rewrite rule over configurations.

    Subclasses (or instances built with :func:`object_rule`) implement
    :meth:`rewrites`, enumerating every configuration reachable from
    ``config`` by one application of this rule.  The search layer pairs
    each result with :attr:`label` for witness paths.
    """

    label: str = "rule"

    def rewrites(self, config: Configuration) -> Iterator[Configuration]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class MessageRule(ObjectRule):
    """A rule triggered by consuming one message of a fixed name.

    This captures the Object Maude idiom: a rule fires when an object can
    consume a matching message.  Subclasses implement
    :meth:`rewrites_for_message`.
    """

    message_name: str = ""

    def rewrites(self, config: Configuration) -> Iterator[Configuration]:
        for message in config.messages(self.message_name):
            yield from self.rewrites_for_message(config, message)

    def rewrites_for_message(
        self, config: Configuration, message: Msg
    ) -> Iterator[Configuration]:
        raise NotImplementedError


class ObjectSystem:
    """A set of object rules, exposing the successor function for search.

    Rules are *indexed by the message head they consume*: a
    :class:`MessageRule` can only fire when a message with its trigger
    name is pending, so :meth:`successors` skips such rules outright when
    the configuration holds no matching message — instead of attempting
    all rules against all messages per state.  Rule order is preserved,
    so the successor stream is element-for-element identical to the
    unindexed enumeration (skipped rules would have yielded nothing).

    ``indexed=False`` restores the brute-force enumeration; benchmarks
    use it to measure the index's effect, and tests use it to assert the
    two paths agree.
    """

    def __init__(
        self, name: str, rules: Iterable[ObjectRule], indexed: bool = True
    ) -> None:
        self.name = name
        self.rules = tuple(rules)
        self.indexed = indexed
        #: ``(rule, trigger)`` pairs in rule order; ``trigger`` is the
        #: message name gating the rule, or None for always-attempted rules.
        self._triggers: Tuple[Tuple[ObjectRule, Optional[str]], ...] = tuple(
            (
                rule,
                rule.message_name
                if isinstance(rule, MessageRule) and rule.message_name
                else None,
            )
            for rule in self.rules
        )

    @property
    def signature(self) -> Tuple:
        """Deterministic identity of the rule set, for query cache keys."""
        return (
            self.name,
            tuple((type(rule).__name__, rule.label) for rule in self.rules),
        )

    def successors(self, config: Configuration) -> Iterator[Tuple[str, Configuration]]:
        if not self.indexed:
            for rule in self.rules:
                for result in rule.rewrites(config):
                    yield rule.label, result
            return
        present = config.message_names()
        for rule, trigger in self._triggers:
            if trigger is not None and trigger not in present:
                continue
            for result in rule.rewrites(config):
                yield rule.label, result

    def __repr__(self) -> str:
        return f"ObjectSystem({self.name!r}, {len(self.rules)} rules)"
