"""State-space reduction for bounded search: symmetry + partial order.

Two classic model-checking reductions, shaped for the object/message
configurations of :mod:`repro.rewriting.objects`:

* **Symmetry reduction** — :func:`canonical_key` computes a canonical
  visited-set key that is invariant under bijective renaming of the
  *anonymous* (non-distinguished) identifiers of a state.  Two states
  receive the same canonical key only when one is a renaming of the
  other, so merging them in the visited set is exact: the key itself
  encodes a renaming, false merges are impossible by construction, and
  an imperfect canonicalization can only *miss* a merge (sound, just
  less reduction).  Canonicalization is *lazy*: states are keyed by a
  :class:`LazyCanonicalKey` whose hash is the O(state) rename-invariant
  :func:`blind_signature`, and the colour-refinement body is computed
  only when the visited set sees a hash collision — the common
  no-collision case never pays for refinement at all.

* **Partial-order reduction** — :class:`Footprint` declares, per
  transition kind, the resource tokens it reads and writes; two kinds
  are :meth:`independent <Footprint.independent>` when neither writes a
  token the other touches.  A domain layer (see
  :mod:`repro.rosa.independence`) uses this relation to pick *ample*
  successor sets: when one pending message commutes with every other
  pending message and cannot affect the goal, only its transitions need
  exploring from that state.

The algorithms here are domain-agnostic: callers describe each element
of a state as a *typed key* — the element's canonical key with every
identifier occurrence wrapped by :func:`typed_id` (and identifier sets
by :func:`typed_fset`) — plus which identifier values are pinned.
Everything identifier-shaped that is not pinned is fair game for
renaming.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, FrozenSet, Hashable, List, Mapping, Optional, Sequence, Tuple

#: Cap on the permutation candidates enumerated to break refinement
#: ties.  Tie classes whose joint assignment count exceeds the cap are
#: pinned instead (their members keep their raw values) — a sound
#: fallback that trades missed merges for bounded canonicalization cost.
TIE_CAP = 24


class _Sentinel:
    """An interned marker with a stable repr (used inside typed keys)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Head of a typed identifier occurrence: ``(ID, domain, value)``.
ID = _Sentinel("<id>")
#: Head of a typed identifier set: ``(FSET, child, child, ...)``.
FSET = _Sentinel("<fset>")
#: Stand-in for the identifier currently being refined, inside its own
#: occurrence contexts (distinguishes "me" from "someone of my colour").
SELF = _Sentinel("<self>")


def typed_id(domain: str, value) -> Tuple:
    """Mark one identifier occurrence of ``domain`` inside a typed key."""
    return (ID, domain, value)


def typed_fset(values) -> Tuple:
    """Mark an unordered collection of typed values inside a typed key.

    The children are kept in a deterministic order here and re-sorted
    after renaming (renaming changes the sort order of the members).
    """
    return (FSET,) + tuple(sorted(values, key=repr))


@dataclasses.dataclass
class ReductionStats:
    """Counters a reduction layer accumulates across one search."""

    #: Successor states merged with an already-visited isomorphic state
    #: (same canonical key, different raw configuration).
    symmetry_hits: int = 0
    #: Pending messages deferred at states where an ample subset was
    #: selected (each deferred message's interleavings are pruned).
    por_pruned: int = 0
    #: States whose full colour-refinement canonical form was actually
    #: computed — under lazy canonicalization only blind-hash collisions
    #: pay this, so the counter is the slow path's cost figure.
    canonicalized: int = 0
    #: States where partial-order reduction selected an ample subset.
    ample_states: int = 0


@dataclasses.dataclass(frozen=True)
class Footprint:
    """The resource tokens one transition kind reads and writes.

    Tokens are opaque hashable labels (strings in practice) naming the
    state the transition's *enabledness and effect* depend on.  The
    declared footprint must over-approximate the real one — a missing
    token makes partial-order reduction unsound, a spurious token only
    costs reduction.
    """

    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def independent(self, other: "Footprint") -> bool:
        """True when the two kinds commute: neither writes what the other touches."""
        if self.writes & other.writes:
            return False
        if self.writes & other.reads:
            return False
        if self.reads & other.writes:
            return False
        return True


def footprint(reads=(), writes=()) -> Footprint:
    return Footprint(reads=frozenset(reads), writes=frozenset(writes))


# -- symmetry canonicalization -------------------------------------------------


def _collect_ids(node, out: set) -> None:
    if type(node) is tuple and node:
        head = node[0]
        if head is ID:
            out.add((node[1], node[2]))
            return
        for child in node[1:] if head is FSET else node:
            _collect_ids(child, out)


def _resolve(node, rename: Mapping, self_id=None):
    """Substitute identifier occurrences; rebuild frozenset nodes sorted."""
    if type(node) is tuple and node:
        head = node[0]
        if head is ID:
            ident = (node[1], node[2])
            if ident == self_id:
                return SELF
            mapped = rename.get(ident)
            return node[2] if mapped is None else mapped
        if head is FSET:
            resolved = [_resolve(child, rename, self_id) for child in node[1:]]
            return ("frozenset",) + tuple(sorted(resolved, key=repr))
        return tuple(_resolve(child, rename, self_id) for child in node)
    return node


#: First canonical label handed out; labels descend from here so they can
#: never collide with real identifiers (uids/gids/oids are non-negative,
#: and the wildcard sentinel is -1).
_LABEL_BASE = -1000


def _memo_entry(memo: Dict, tkey, pinned: Mapping[str, FrozenSet]) -> Tuple:
    """The shared per-typed-key memo record: (tkey, anonymous ids, cache).

    Typed keys are interned by the caller (one instance per distinct
    element), so ``id(tkey)`` is a stable identity within one memo's
    lifetime; the entry keeps the key alive, which makes that safe.
    """
    entry = memo.get(id(tkey))
    if entry is None:
        found: set = set()
        _collect_ids(tkey, found)
        empty: FrozenSet = frozenset()
        anon_here = tuple(
            sorted(
                ident
                for ident in found
                if ident[1] not in pinned.get(ident[0], empty)
            )
        )
        entry = (tkey, anon_here, {})
        memo[id(tkey)] = entry
    return entry


def blind_signature(
    typed_elements: Sequence[Tuple[Hashable, int]],
    pinned: Mapping[str, FrozenSet],
    memo: Dict,
) -> Tuple[int, bool]:
    """O(state) rename-invariant hash of a state: ``(hash, has_anon)``.

    Every anonymous identifier occurrence is *blinded* — replaced by a
    fixed per-domain marker — so any per-domain bijective renaming of
    the anonymous ids leaves each element's blinded form, and therefore
    the multiset hash, unchanged: isomorphic states always collide.
    Blinding conflates distinct ids, so non-isomorphic states may
    collide too; the hash is a grouping key only, never an equality —
    callers must confirm candidate merges with :func:`canonical_key`.

    Blinding alone is too coarse in practice — states that differ only
    in *which* element an anonymous id links to (a process whose euid
    matches the file owner's uid versus one whose euid does not) blind
    to the same element multiset.  The signature therefore also folds in
    one round of colour refinement: each anonymous id's *occurrence
    profile*, the multiset of blinded elements it appears in.  Profiles
    are combined as an unordered multiset (ids carry no order), so the
    result stays rename-invariant while separating the linkage patterns
    that dominate wildcard-expansion siblings.

    Per-element blinded reprs are cached in ``memo`` (cache key ``0``,
    disjoint from :func:`canonical_key`'s per-colouring keys), so after
    warm-up the cost per state is dict probes and integer hashing.  The
    combines are plain 64-bit sums: commutative, so neither element nor
    id order matters.
    """
    total = 0
    has_anon = False
    profiles: Dict[Tuple, List[Tuple[int, int]]] = {}
    for tkey, count in typed_elements:
        entry = _memo_entry(memo, tkey, pinned)
        anon_here = entry[1]
        if anon_here:
            has_anon = True
            cache = entry[2]
            blinded = cache.get(0)
            if blinded is None:
                markers = {ident: ("?", ident[0]) for ident in anon_here}
                blinded = hash(repr(_resolve(tkey, markers)))
                cache[0] = blinded
            total += hash((blinded, count))
            for ident in anon_here:
                profiles.setdefault(ident, []).append((blinded, count))
        else:
            total += hash((id(tkey), count))
    for profile in profiles.values():
        profile.sort()
        total += hash((7, tuple(profile)))
    return total & 0xFFFFFFFFFFFFFFFF, has_anon


class LazyCanonicalKey:
    """A visited-set key that defers colour refinement to hash collisions.

    Hashing uses the O(state) blinded signature (rename-invariant, see
    :func:`blind_signature`); the expensive canonical *body* is computed
    by ``resolve_body`` only when the hosting set actually probes
    equality — i.e. when two states share a blinded hash — and is
    memoized per key.  Soundness mirrors the eager scheme exactly:

    * isomorphic states have equal blinded hashes, so the set always
      compares them and equality falls through to equal bodies — no
      merge is ever missed relative to eager canonical keys;
    * equality is *decided* by the bodies (or raw-configuration
      equality, which implies equal bodies), so a blind-hash collision
      between non-isomorphic states never merges them;
    * bodies-equal is transitive, so set semantics stay consistent.
    """

    __slots__ = ("config", "_blind", "_resolve_body", "_body")

    def __init__(self, config, blind_hash: int, resolve_body) -> None:
        self.config = config
        self._blind = blind_hash
        self._resolve_body = resolve_body
        self._body = None

    def body(self) -> Tuple:
        body = self._body
        if body is None:
            body = self._body = self._resolve_body(self.config)
            self._resolve_body = None  # the closure is no longer needed
        return body

    def __hash__(self) -> int:
        return self._blind

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if other.__class__ is not LazyCanonicalKey:
            return NotImplemented
        # Equal raw configurations are trivially isomorphic; the check is
        # O(1) on the incremental hash for the (common) negative case.
        if self.config == other.config:
            return True
        return self.body() == other.body()

    def __repr__(self) -> str:
        state = "resolved" if self._body is not None else "blind"
        return f"<lazy-key {self._blind:#x} {state}>"


def canonical_key(
    typed_elements: Sequence[Tuple[Hashable, int]],
    pinned: Mapping[str, FrozenSet],
    tie_cap: int = TIE_CAP,
    memo: Optional[Dict] = None,
) -> Optional[Tuple]:
    """Canonical rename-invariant key of a state, or None for the fast path.

    ``typed_elements`` is the state as ``(typed_key, count)`` pairs;
    ``pinned`` maps each identifier domain to the values that must keep
    their identity (goal-referenced ids, initially-present ids, ...).
    Identifier occurrences outside the pinned sets are *anonymous* and
    are renamed to canonical labels via colour refinement; refinement
    ties are broken exactly by bounded permutation enumeration, or
    pinned when the candidate count exceeds ``tie_cap``.

    ``memo``, when provided, must be a dict owned by one caller using
    one fixed ``pinned`` mapping.  Typed keys are shared across the many
    states of one search (elements are interned), so per-element work —
    id collection, and resolution under a given colouring or renaming —
    is cached there keyed by ``id(typed_key)`` and the *slice* of the
    colouring/renaming that touches the element.  The memo keeps every
    typed key it has seen alive, which is what makes ``id()`` keys safe.

    Returns ``None`` when the state holds no anonymous identifiers — the
    caller should then key the state by itself (states with and without
    anonymous ids can never be isomorphic to each other, so mixing the
    two key kinds in one visited set is safe).
    """
    if memo is None:
        memo = {}
    # Per element: (typed key, count, anonymous ids sorted, per-element cache).
    elements: List[Tuple[Hashable, int, Tuple, Dict]] = []
    seen: Dict[Tuple, None] = {}
    for tkey, count in typed_elements:
        entry = _memo_entry(memo, tkey, pinned)
        elements.append((entry[0], count, entry[1], entry[2]))
        for ident in entry[1]:
            seen.setdefault(ident, None)
    anon = list(seen)
    if not anon:
        return None

    # Colour refinement: an id's colour is determined by the multiset of
    # element contexts it occurs in, with other anonymous ids replaced by
    # their current colour and its own occurrences marked SELF.  Iterate
    # until the partition stops splitting or becomes discrete.
    colors: Dict[Tuple, Hashable] = {ident: ("d", ident[0]) for ident in anon}
    num_classes = len(set(colors.values()))
    for _ in range(len(anon)):
        if num_classes == len(anon):
            break  # discrete partition: nothing left to split
        signatures: Dict[Tuple, Tuple] = {}
        for ident in anon:
            contexts = []
            for tkey, count, ids, cache in elements:
                if ident not in ids:
                    continue
                ckey = (1, ident, tuple(colors[other] for other in ids))
                resolved = cache.get(ckey)
                if resolved is None:
                    resolved = repr(_resolve(tkey, colors, ident))
                    cache[ckey] = resolved
                contexts.append((resolved, count))
            contexts.sort()
            signatures[ident] = (ident[0], tuple(contexts))
        ordered = sorted(set(signatures.values()))
        index = {signature: position for position, signature in enumerate(ordered)}
        colors = {
            ident: ("c", ident[0], index[signatures[ident]]) for ident in anon
        }
        if len(ordered) == num_classes:
            break
        num_classes = len(ordered)

    # Deterministic label assignment per colour class.
    classes: Dict[Hashable, List[Tuple]] = {}
    for ident in anon:
        classes.setdefault(colors[ident], []).append(ident)
    rename: Dict[Tuple, int] = {}
    ties: List[Tuple[List[Tuple], List[int]]] = []
    label = _LABEL_BASE
    for color in sorted(classes):
        members = sorted(classes[color])
        if len(members) == 1:
            rename[members[0]] = label
            label -= 1
        else:
            slots = [label - offset for offset in range(len(members))]
            label -= len(members)
            ties.append((members, slots))

    if ties:
        candidates = 1
        for members, _slots in ties:
            candidates *= math.factorial(len(members))
        if candidates > tie_cap:
            # Sound fallback: members of oversized tie classes keep their
            # raw identity (missed merges only, never a wrong merge).
            ties = []

    def body_for(rename: Dict[Tuple, int]) -> Tuple[Tuple, str]:
        parts = []
        for tkey, count, ids, cache in elements:
            bkey = (2, tuple(rename.get(ident) for ident in ids)) if ids else 2
            part = cache.get(bkey)
            if part is None:
                resolved = _resolve(tkey, rename)
                part = (repr(resolved), resolved)
                cache[bkey] = part
            parts.append((part[0], part[1], count))
        parts.sort()
        body = tuple((resolved, count) for _r, resolved, count in parts)
        return body, repr([(r, count) for r, _resolved, count in parts])

    if not ties:
        body, _ = body_for(rename)
        return ("sym",) + body

    # Exact tie-breaking: enumerate every joint assignment of the tied
    # ids to their class's labels and keep the lexicographically least
    # renamed key.  Equal keys across isomorphic states follow because
    # both sides minimise over the same candidate set.
    best = None
    best_repr = ""
    for assignment in itertools.product(
        *(itertools.permutations(slots) for _members, slots in ties)
    ):
        candidate_rename = dict(rename)
        for (members, _slots), labels in zip(ties, assignment):
            for ident, value in zip(members, labels):
                candidate_rename[ident] = value
        body, body_repr = body_for(candidate_rename)
        if best is None or body_repr < best_repr:
            best = body
            best_repr = body_repr
    return ("sym",) + best
