"""Equations and rewrite rules over terms.

Maude distinguishes *equations* (deterministic simplification; repeated
application must reach a unique normal form) from *rules* (possibly
non-deterministic transitions explored by ``search``).  We mirror that
split:

* :class:`Equation` — oriented left-to-right, applied to a fixpoint by
  :func:`normalize`;
* :class:`TermRule` — one transition of the modelled system, enumerated at
  every position of a term by :func:`rewrite_once`.

Both support an optional ``condition`` callable over the matched
substitution, which models Maude's conditional rules (``crl ... if ...``).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Sequence, Tuple

from repro.rewriting.terms import (
    Substitution,
    Term,
    match,
    replace_at,
    subterms,
)

Condition = Callable[[Substitution], bool]


class _RewriteBase:
    """Shared structure of equations and rules: lhs, rhs, condition."""

    def __init__(
        self,
        label: str,
        lhs: Term,
        rhs: Term,
        condition: Optional[Condition] = None,
    ) -> None:
        self.label = label
        self.lhs = lhs
        self.rhs = rhs
        self.condition = condition
        lhs_vars = {var.name for var in lhs.variables()}
        rhs_vars = {var.name for var in rhs.variables()}
        unbound = rhs_vars - lhs_vars
        if unbound:
            raise ValueError(
                f"{label}: right-hand side uses unbound variables {sorted(unbound)}"
            )

    def try_apply_at_root(self, subject: Term) -> Optional[Term]:
        """Apply at the root of ``subject``; None if the pattern or condition fails."""
        subst = match(self.lhs, subject)
        if subst is None:
            return None
        if self.condition is not None and not self.condition(subst):
            return None
        return self.rhs.substitute(subst)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r}: {self.lhs} => {self.rhs})"


class Equation(_RewriteBase):
    """A deterministic simplification, applied to a fixpoint."""


class TermRule(_RewriteBase):
    """A non-deterministic transition, explored during search."""


class NormalizationError(RuntimeError):
    """Raised when equational simplification fails to terminate.

    Maude requires equation sets to be terminating and confluent; since we
    cannot check that statically, :func:`normalize` enforces a step budget
    and reports violations loudly instead of looping forever.
    """


def normalize(subject: Term, equations: Sequence[Equation], max_steps: int = 10_000) -> Term:
    """Reduce ``subject`` with ``equations`` until no equation applies.

    Equations are tried innermost-first at every position, in the order
    given.  Raises :class:`NormalizationError` if ``max_steps`` rewrites do
    not reach a normal form.
    """
    steps = 0
    changed = True
    while changed:
        changed = False
        # Innermost-first: visit deepest subterms before their parents so
        # that arguments are in normal form when the parent is simplified.
        for path, sub in sorted(subterms(subject), key=lambda pair: -len(pair[0])):
            for equation in equations:
                result = equation.try_apply_at_root(sub)
                if result is not None:
                    subject = replace_at(subject, path, result)
                    steps += 1
                    if steps > max_steps:
                        raise NormalizationError(
                            f"no normal form within {max_steps} steps; "
                            "equation set is likely non-terminating"
                        )
                    changed = True
                    break
            if changed:
                break
    return subject


def rewrite_once(
    subject: Term, rules: Sequence[TermRule]
) -> Iterator[Tuple[str, Term]]:
    """Enumerate every one-step rewrite of ``subject``.

    Yields ``(rule_label, rewritten_term)`` for every rule applicable at
    every position, in deterministic order (rule order, then pre-order
    position).  Callers typically normalize each result with the system's
    equations before exploring further.
    """
    for rule in rules:
        for path, sub in subterms(subject):
            result = rule.try_apply_at_root(sub)
            if result is not None:
                yield rule.label, replace_at(subject, path, result)


class RewriteSystem:
    """A bundle of equations and rules — the analogue of a Maude module."""

    def __init__(
        self,
        name: str,
        equations: Sequence[Equation] = (),
        rules: Sequence[TermRule] = (),
    ) -> None:
        self.name = name
        self.equations = tuple(equations)
        self.rules = tuple(rules)

    def normal_form(self, subject: Term) -> Term:
        return normalize(subject, self.equations)

    def successors(self, subject: Term) -> Iterator[Tuple[str, Term]]:
        """One-step successors of ``subject``, each equationally normalized."""
        for label, result in rewrite_once(subject, self.rules):
            yield label, self.normal_form(result)

    def __repr__(self) -> str:
        return (
            f"RewriteSystem({self.name!r}, {len(self.equations)} equations, "
            f"{len(self.rules)} rules)"
        )
