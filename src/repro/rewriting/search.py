"""Bounded breadth-first state-space search — Maude's ``search`` command.

Maude's ``search init =>* pattern such that cond`` explores the states
reachable from ``init`` by rule rewriting, looking for one matching a
pattern.  We generalise slightly: a *state space* is any initial state
plus a successor function, and the goal is a predicate.  ROSA instantiates
this with syscall-message configurations; the generic term
:class:`~repro.rewriting.rules.RewriteSystem` instantiates it with terms.

Bounded model checking needs explicit budgets.  The paper ran ROSA with a
5-hour wall-clock limit and observed out-of-memory kills at 3 days (§VIII);
:class:`SearchBudget` models both the time and the memory (state-count)
limits, and :class:`SearchOutcome` distinguishes *proved unreachable*
(space exhausted without a hit) from *undecided* (budget exhausted first)
— the paper's ✗ versus ⊙.
"""

from __future__ import annotations

import dataclasses
import enum
import time
from collections import deque
from typing import Callable, Generic, Hashable, Iterable, List, Optional, Tuple, TypeVar

State = TypeVar("State")

#: How many expansions between two progress samples, by default.
PROGRESS_INTERVAL = 1024

#: Cap on the samples *retained* on ``SearchResult.stats.samples``.  A
#: paper-scale search (5-hour budgets, §VIII) emits millions of samples
#: at a fixed interval; retention decimates so memory stays bounded
#: while the live ``progress`` callback still sees every sample.
MAX_RETAINED_SAMPLES = 512


@dataclasses.dataclass(frozen=True)
class ProgressSample:
    """One periodic reading of a running search (the §VIII telemetry).

    Emitted every ``progress_interval`` expansions to the ``progress``
    callback of :func:`breadth_first_search`, so long searches are no
    longer silent until their 5-hour-style budget runs out.
    """

    states_explored: int
    states_seen: int
    frontier: int
    depth: int
    elapsed: float
    #: Expansion rate since the search started (0.0 until time passes).
    states_per_second: float
    #: Fraction (0–1) of the tightest budget consumed; 0.0 if unlimited.
    budget_used: float


@dataclasses.dataclass
class SearchStats:
    """Cost accounting for one search, beyond the headline counters.

    Always populated (the extra bookkeeping is a few integer ops per
    state); ``samples`` is filled only when a ``progress`` callback was
    installed.
    """

    #: Largest frontier ever held — the search's memory high-water mark.
    peak_frontier: int = 0
    #: Successor states rejected because their canonical key was seen.
    dedup_hits: int = 0
    #: Deepest state expanded (rewrite-path length).
    max_depth: int = 0
    #: Successor states merged because their symmetry-canonical key was
    #: already visited under a different raw configuration (only with a
    #: reduction layer installed; see :mod:`repro.rewriting.reduction`).
    symmetry_hits: int = 0
    #: Pending messages deferred at ample states by partial-order
    #: reduction (only with a reduction layer installed).
    por_pruned: int = 0
    #: Periodic readings, oldest first (only with a progress callback).
    samples: List[ProgressSample] = dataclasses.field(default_factory=list)


class SearchOutcome(enum.Enum):
    """The three possible verdicts of a bounded search."""

    #: A goal state was found; the result carries a witness path.
    FOUND = "found"
    #: The reachable state space was exhausted without finding a goal.
    EXHAUSTED = "exhausted"
    #: A budget (states, depth or time) ran out before either of the above.
    BUDGET_EXCEEDED = "budget-exceeded"


@dataclasses.dataclass(frozen=True)
class SearchBudget:
    """Limits on a bounded search.

    ``max_states`` bounds memory (the visited set), ``max_depth`` bounds
    the rewrite-path length (the *bound* of bounded model checking) and
    ``max_seconds`` bounds wall-clock time.  ``None`` disables a limit.
    """

    max_states: Optional[int] = 200_000
    max_depth: Optional[int] = None
    max_seconds: Optional[float] = None

    def unlimited_depth(self) -> "SearchBudget":
        return dataclasses.replace(self, max_depth=None)


@dataclasses.dataclass
class SearchResult(Generic[State]):
    """The outcome of one search, with enough detail for reports and tests."""

    outcome: SearchOutcome
    #: The goal state, when ``outcome`` is FOUND.
    state: Optional[State]
    #: Rule labels along the witness path from the initial state.
    path: List[str]
    #: States removed from the frontier and expanded.
    states_explored: int
    #: Distinct states ever enqueued (size of the visited set).
    states_seen: int
    #: Wall-clock seconds the search took.
    elapsed: float
    #: With ``track_states``: the states along the witness path,
    #: starting with the initial state and ending with ``state``
    #: (length ``len(path) + 1``).  Empty otherwise.
    path_states: List[State] = dataclasses.field(default_factory=list)
    #: Cost accounting: frontier high-water mark, dedup hits, depth,
    #: and (with a progress callback) the periodic samples.
    stats: SearchStats = dataclasses.field(default_factory=SearchStats)

    @property
    def found(self) -> bool:
        return self.outcome is SearchOutcome.FOUND

    @property
    def proved_unreachable(self) -> bool:
        """True when the full space was searched and no goal exists."""
        return self.outcome is SearchOutcome.EXHAUSTED


def breadth_first_search(
    initial: State,
    successors: Callable[[State], Iterable[Tuple[str, State]]],
    goal: Callable[[State], bool],
    budget: SearchBudget = SearchBudget(),
    canonical: Callable[[State], Hashable] = lambda state: state,
    track_states: bool = False,
    progress: Optional[Callable[[ProgressSample], None]] = None,
    progress_interval: int = PROGRESS_INTERVAL,
    max_samples: int = MAX_RETAINED_SAMPLES,
    clock: Callable[[], float] = time.monotonic,
) -> SearchResult[State]:
    """Search breadth-first from ``initial`` for a state satisfying ``goal``.

    ``successors`` yields ``(label, state)`` transitions; ``canonical``
    maps a state to its hashable visited-set key (states with equal keys
    are explored once — this is how associative-commutative configuration
    equality is honoured without general AC rewriting).

    The initial state itself is tested against ``goal`` first, matching
    Maude's ``=>*`` (zero or more rewrites).  With ``track_states`` the
    result carries the full state sequence of the witness path (costs one
    state reference per frontier entry per step).

    ``progress`` is called with a :class:`ProgressSample` every
    ``progress_interval`` expansions; ``clock`` makes all timing (budget
    enforcement, elapsed, sample rates) deterministic in tests.  The
    callback sees every sample, but at most ``max_samples`` are retained
    on ``result.stats.samples``: past the cap the interior of the series
    is decimated (every other sample dropped), always keeping the first
    and the most recent reading.
    """
    start = clock()
    peak_frontier = 0
    dedup_hits = 0
    max_depth = 0
    samples: List[ProgressSample] = []

    def stats() -> SearchStats:
        return SearchStats(
            peak_frontier=peak_frontier,
            dedup_hits=dedup_hits,
            max_depth=max_depth,
            samples=samples,
        )

    def result(
        outcome: SearchOutcome,
        state: Optional[State],
        path: List[str],
        path_states: Optional[List[State]] = None,
    ) -> SearchResult[State]:
        return SearchResult(
            outcome=outcome,
            state=state,
            path=path,
            states_explored=explored,
            states_seen=len(visited),
            elapsed=clock() - start,
            path_states=path_states or [],
            stats=stats(),
        )

    def sample(depth: int, frontier_size: int) -> None:
        elapsed = clock() - start
        # budget_used must never divide by zero: a None limit means
        # unlimited (contributes 0.0), a zero limit means the budget is
        # already fully consumed (contributes 1.0), and with both limits
        # unlimited the fraction is simply 0.0.
        budget_used = 0.0
        if budget.max_states is not None:
            if budget.max_states > 0:
                budget_used = len(visited) / budget.max_states
            else:
                budget_used = 1.0
        if budget.max_seconds is not None:
            if budget.max_seconds > 0:
                budget_used = max(budget_used, elapsed / budget.max_seconds)
            else:
                budget_used = 1.0
        reading = ProgressSample(
            states_explored=explored,
            states_seen=len(visited),
            frontier=frontier_size,
            depth=depth,
            elapsed=elapsed,
            # A monotonic clock can still report zero elapsed time (coarse
            # clocks, injected test clocks): report a rate of 0.0 rather
            # than dividing by zero.
            states_per_second=explored / elapsed if elapsed > 0 else 0.0,
            budget_used=min(budget_used, 1.0),
        )
        samples.append(reading)
        if len(samples) > max_samples:
            # Decimate the interior: endpoints survive, density halves.
            del samples[1:-1:2]
        progress(reading)

    explored = 0
    visited = {canonical(initial)}
    if goal(initial):
        return result(SearchOutcome.FOUND, initial, [], [initial])

    # Each frontier entry: (state, depth, path-of-labels, path-of-states).
    # Paths share structure via tuples to keep memory linear in the
    # frontier size; states are tracked only on request.
    frontier: deque = deque([(initial, 0, (), (initial,) if track_states else ())])
    peak_frontier = 1
    pruned_by_depth = False
    while frontier:
        if budget.max_seconds is not None and clock() - start > budget.max_seconds:
            return result(SearchOutcome.BUDGET_EXCEEDED, None, [])
        state, depth, path, states = frontier.popleft()
        explored += 1
        if depth > max_depth:
            max_depth = depth
        if progress is not None and explored % progress_interval == 0:
            sample(depth, len(frontier))
        if budget.max_depth is not None and depth >= budget.max_depth:
            # Deeper states may exist beyond the bound; if no goal turns up
            # elsewhere, the verdict must be "undecided", not "unreachable".
            pruned_by_depth = True
            continue
        for label, nxt in successors(state):
            key = canonical(nxt)
            # Add-then-check-size dedup: one hash of the (deep) canonical
            # key per successor instead of a membership probe plus an add.
            size_before = len(visited)
            visited.add(key)
            if len(visited) == size_before:
                dedup_hits += 1
                continue
            next_path = path + (label,)
            next_states = states + (nxt,) if track_states else ()
            if goal(nxt):
                return result(
                    SearchOutcome.FOUND, nxt, list(next_path), list(next_states)
                )
            if budget.max_states is not None and len(visited) > budget.max_states:
                return result(SearchOutcome.BUDGET_EXCEEDED, None, [])
            frontier.append((nxt, depth + 1, next_path, next_states))
            if len(frontier) > peak_frontier:
                peak_frontier = len(frontier)
    if pruned_by_depth:
        return result(SearchOutcome.BUDGET_EXCEEDED, None, [])
    return result(SearchOutcome.EXHAUSTED, None, [])
