"""A small first-order term algebra with pattern matching.

This module is the foundation of our Maude substitute.  Maude programs
manipulate *terms* — abstract syntax trees built from operators and
constants — and *rewrite rules* that transform terms matching a pattern.
We implement the fragment ROSA needs (and that generic rewriting tests
exercise): ground terms, patterns with named variables, one-way matching
(pattern against ground term) and substitution application.

Terms are immutable and hashable so they can serve as visited-set keys
during state-space search.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

AtomValue = Union[int, str, bool]


class Term:
    """Base class for all terms."""

    __slots__ = ()

    def is_ground(self) -> bool:
        """True if the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> Iterator["Var"]:
        """Yield every variable occurring in the term (with repeats)."""
        raise NotImplementedError

    def substitute(self, subst: "Substitution") -> "Term":
        """Apply a substitution, replacing bound variables."""
        raise NotImplementedError


class Atom(Term):
    """A constant: an integer, string or boolean."""

    __slots__ = ("value",)

    def __init__(self, value: AtomValue) -> None:
        if not isinstance(value, (int, str, bool)):
            raise TypeError(f"atom value must be int, str or bool: {value!r}")
        self.value = value

    def is_ground(self) -> bool:
        return True

    def variables(self) -> Iterator["Var"]:
        return iter(())

    def substitute(self, subst: "Substitution") -> "Term":
        return self

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Atom)
            and type(other.value) is type(self.value)
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((Atom, type(self.value).__name__, self.value))

    def __repr__(self) -> str:
        return f"Atom({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


class Var(Term):
    """A named variable, used in patterns.

    An optional ``sort`` restricts what the variable may bind to; sorts are
    plain strings checked by the owner of the sort vocabulary (see
    :class:`repro.rewriting.rules.TermRule`).
    """

    __slots__ = ("name", "sort")

    def __init__(self, name: str, sort: Optional[str] = None) -> None:
        self.name = name
        self.sort = sort

    def is_ground(self) -> bool:
        return False

    def variables(self) -> Iterator["Var"]:
        yield self

    def substitute(self, subst: "Substitution") -> Term:
        return subst.get(self.name, self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Var, self.name))

    def __repr__(self) -> str:
        if self.sort:
            return f"Var({self.name!r}, sort={self.sort!r})"
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return f"{self.name}:{self.sort}" if self.sort else self.name


class Compound(Term):
    """An operator applied to argument terms, e.g. ``s(s(zero))``."""

    __slots__ = ("functor", "args", "_hash")

    def __init__(self, functor: str, args: Tuple[Term, ...] = ()) -> None:
        self.functor = functor
        self.args = tuple(args)
        for arg in self.args:
            if not isinstance(arg, Term):
                raise TypeError(f"compound argument must be a Term: {arg!r}")
        self._hash = hash((Compound, functor, self.args))

    def is_ground(self) -> bool:
        return all(arg.is_ground() for arg in self.args)

    def variables(self) -> Iterator[Var]:
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, subst: "Substitution") -> Term:
        return Compound(self.functor, tuple(arg.substitute(subst) for arg in self.args))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Compound)
            and other._hash == self._hash
            and other.functor == self.functor
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Compound({self.functor!r}, {self.args!r})"

    def __str__(self) -> str:
        if not self.args:
            return self.functor
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.functor}({inner})"


class Substitution:
    """An immutable mapping from variable names to terms."""

    __slots__ = ("_bindings",)

    def __init__(self, bindings: Optional[Dict[str, Term]] = None) -> None:
        self._bindings = dict(bindings or {})

    def get(self, name: str, default: Optional[Term] = None) -> Optional[Term]:
        return self._bindings.get(name, default)

    def bind(self, name: str, term: Term) -> "Substitution":
        """Return an extended substitution; rebinding to a different term fails.

        :raises KeyError: if ``name`` is already bound to a different term.
        """
        existing = self._bindings.get(name)
        if existing is not None:
            if existing == term:
                return self
            raise KeyError(f"variable {name!r} already bound")
        extended = dict(self._bindings)
        extended[name] = term
        return Substitution(extended)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __getitem__(self, name: str) -> Term:
        return self._bindings[name]

    def __len__(self) -> int:
        return len(self._bindings)

    def items(self):
        return self._bindings.items()

    def __repr__(self) -> str:
        inner = ", ".join(f"{name} -> {term}" for name, term in self._bindings.items())
        return f"Substitution({{{inner}}})"


def term(value) -> Term:
    """Coerce a Python value or Term into a Term.

    Integers, strings and booleans become :class:`Atom`; terms pass
    through unchanged.
    """
    if isinstance(value, Term):
        return value
    return Atom(value)


def op(functor: str, *args) -> Compound:
    """Build a compound term, coercing plain Python arguments to atoms.

    >>> str(op("s", op("zero")))
    's(zero)'
    """
    return Compound(functor, tuple(term(arg) for arg in args))


def match(pattern: Term, subject: Term, subst: Optional[Substitution] = None) -> Optional[Substitution]:
    """Match ``pattern`` (may contain variables) against ground ``subject``.

    Returns the extending substitution on success, ``None`` on failure.
    Matching is syntactic one-way matching (not unification): the subject
    must be ground.  Repeated variables must bind consistently.
    """
    subst = subst if subst is not None else Substitution()
    if isinstance(pattern, Var):
        bound = subst.get(pattern.name)
        if bound is not None:
            return subst if bound == subject else None
        try:
            return subst.bind(pattern.name, subject)
        except KeyError:  # pragma: no cover - bind() handles identical case
            return None
    if isinstance(pattern, Atom):
        return subst if pattern == subject else None
    if isinstance(pattern, Compound):
        if not isinstance(subject, Compound):
            return None
        if pattern.functor != subject.functor or len(pattern.args) != len(subject.args):
            return None
        for pat_arg, sub_arg in zip(pattern.args, subject.args):
            subst = match(pat_arg, sub_arg, subst)
            if subst is None:
                return None
        return subst
    raise TypeError(f"unsupported pattern term: {pattern!r}")


def subterms(t: Term) -> Iterator[Tuple[Tuple[int, ...], Term]]:
    """Yield ``(path, subterm)`` pairs in pre-order, including the root.

    ``path`` is the sequence of argument indices from the root.
    """
    yield (), t
    if isinstance(t, Compound):
        for index, arg in enumerate(t.args):
            for path, sub in subterms(arg):
                yield (index,) + path, sub


def replace_at(t: Term, path: Tuple[int, ...], replacement: Term) -> Term:
    """Return ``t`` with the subterm at ``path`` replaced."""
    if not path:
        return replacement
    if not isinstance(t, Compound):
        raise IndexError(f"path {path} does not exist in {t}")
    index, rest = path[0], path[1:]
    if index >= len(t.args):
        raise IndexError(f"path {path} does not exist in {t}")
    new_args = list(t.args)
    new_args[index] = replace_at(t.args[index], rest, replacement)
    return Compound(t.functor, tuple(new_args))
