"""Maude's ``search`` command over plain terms.

ROSA searches object configurations, but Maude's ``search`` works on any
term of any module.  This glue provides the same for
:class:`~repro.rewriting.rules.RewriteSystem`: breadth-first exploration
of rule rewrites (normalising with the module's equations at every step)
looking for a state that *matches a pattern* — with variables — under an
optional ``such that`` condition on the matched substitution.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.rewriting.rules import RewriteSystem
from repro.rewriting.search import SearchBudget, SearchResult, breadth_first_search
from repro.rewriting.terms import Substitution, Term, match


def search_terms(
    system: RewriteSystem,
    initial: Term,
    pattern: Term,
    condition: Optional[Callable[[Substitution], bool]] = None,
    budget: SearchBudget = SearchBudget(),
) -> SearchResult[Term]:
    """``search initial =>* pattern such that condition`` for ``system``.

    The initial term is normalised first (Maude reduces before searching);
    the witness path in the result lists the rule labels applied.
    """
    start = system.normal_form(initial)

    def goal(term: Term) -> bool:
        subst = match(pattern, term)
        if subst is None:
            return False
        return condition is None or condition(subst)

    return breadth_first_search(
        start,
        system.successors,
        goal,
        budget=budget,
        canonical=lambda term: term,
    )


def matched_substitution(pattern: Term, result: SearchResult[Term]) -> Optional[Substitution]:
    """The bindings of the found state against the search pattern."""
    if result.state is None:
        return None
    return match(pattern, result.state)
