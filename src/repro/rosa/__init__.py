"""ROSA — Rewrite of Objects for Syscall Analysis.

A bounded model checker for Linux privilege use, built on the
:mod:`repro.rewriting` engine.  ROSA models a Linux system as a
configuration of Process/File/Dir/Socket/User/Group objects plus pending
system-call messages, and searches for reachable *compromised states*.

Typical use::

    from repro.rosa import (
        Configuration, RosaQuery, check, goals, model, syscalls
    )

    config = Configuration([
        model.process_for_user(1, uid=1000, gid=1000),
        model.file_obj(3, name="/etc/shadow", owner=0, group=42, perms=0o640),
        model.user(4, 1000), model.user(5, 0),
        syscalls.sys_open(1, 3, "r", ["CapDacReadSearch"]),
    ])
    report = check(RosaQuery("read-shadow", config,
                             goals.file_opened_for_read(3)))
    assert report.vulnerable
"""

from repro.rewriting import Configuration, Msg, Obj, SearchBudget
from repro.rosa import defenses, dsl, goals, model, permissions, syscalls
from repro.rosa.engine import (
    ParallelPolicy,
    QueryCache,
    QueryEngine,
    QueryRequest,
    query_cache_key,
)
from repro.rosa.explain import explain_witness
from repro.rosa.query import (
    DEFAULT_BUDGET,
    RosaQuery,
    RosaReport,
    Verdict,
    check,
    unix_system,
)
from repro.rosa.rules import unix_rules

__all__ = [
    "Configuration",
    "DEFAULT_BUDGET",
    "Msg",
    "Obj",
    "ParallelPolicy",
    "QueryCache",
    "QueryEngine",
    "QueryRequest",
    "RosaQuery",
    "RosaReport",
    "SearchBudget",
    "Verdict",
    "check",
    "defenses",
    "dsl",
    "explain_witness",
    "goals",
    "model",
    "permissions",
    "query_cache_key",
    "syscalls",
    "unix_rules",
    "unix_system",
]
