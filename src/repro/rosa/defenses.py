"""Modeling defense-weakened attackers (the paper's §X future work).

The base attack model (§III) is maximal: an exploited program can invoke
its system calls in any order, any number of times up to the message
budget, with corrupted arguments.  Deployed defenses weaken that
attacker, and §X proposes modeling them.  Three are implemented here as
*query transformers* — each takes a ROSA query and returns a weaker one:

* :func:`apply_seccomp` — a seccomp-bpf syscall filter: calls outside the
  allowlist are unavailable (Provos-style syscall policies, the paper's
  [16]);
* :func:`apply_cfi` — control-flow integrity: the attacker cannot redirect
  control flow, so system calls can only happen in the order the program
  issues them (a subsequence of the program's trace);
* :func:`apply_data_integrity` — data-flow/code-pointer integrity for
  syscall arguments: the attacker cannot corrupt arguments, so every
  wildcard collapses to the concrete values the program passes.

Composability: transformers return plain ``RosaQuery`` objects, so they
stack — e.g. ``apply_seccomp(apply_cfi(query, trace), allowed)``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.rewriting import Configuration, Msg, ObjectSystem
from repro.rosa.query import RosaQuery, unix_system


def apply_seccomp(query: RosaQuery, allowed_syscalls: Iterable[str]) -> RosaQuery:
    """Restrict the attacker to an allowlist of system-call names.

    Messages for filtered syscalls are removed from the initial
    configuration — the kernel would kill the process before the call
    executed, so the attacker gains nothing from issuing it.
    """
    allowed = frozenset(allowed_syscalls)
    kept = [
        element
        for element in query.initial
        if not isinstance(element, Msg) or element.name in allowed
    ]
    return dataclasses.replace(
        query,
        name=f"{query.name}+seccomp",
        initial=Configuration(kept),
    )


def apply_data_integrity(
    query: RosaQuery, concrete_messages: Optional[Sequence[Msg]] = None
) -> RosaQuery:
    """Remove the attacker's ability to corrupt system-call arguments.

    Without argument corruption the attacker can only replay the calls
    the program actually makes.  Pass the program's ``concrete_messages``
    to substitute them for the wildcard versions; with ``None``, all
    messages containing wildcards are simply dropped (maximally
    conservative for the attacker).
    """
    from repro.rosa.syscalls import WILDCARD

    kept: List = []
    for element in query.initial:
        if isinstance(element, Msg) and WILDCARD in element.args:
            continue
        kept.append(element)
    if concrete_messages:
        kept.extend(concrete_messages)
    return dataclasses.replace(
        query,
        name=f"{query.name}+arg-integrity",
        initial=Configuration(kept),
    )


class SequencedObjectSystem(ObjectSystem):
    """A rewrite system where messages must be consumed in a fixed order.

    Under control-flow integrity an attacker cannot jump between system
    calls arbitrarily: the observable syscall sequence must be a prefix-
    respecting subsequence of the program's own trace.  We enforce the
    stronger, simpler discipline that only the *earliest remaining*
    message of the given sequence may fire next.  (Skipping calls is
    modelled by the goal being checked after every step: a compromised
    state reached before later calls fire still counts.)
    """

    def __init__(self, base: ObjectSystem, sequence: Sequence[Msg]) -> None:
        super().__init__(f"{base.name}/sequenced", base.rules)
        self._base = base
        self.sequence = list(sequence)

    def _next_allowed(self, config: Configuration) -> Optional[Msg]:
        remaining: Dict[Msg, int] = {}
        for message in self.sequence:
            remaining[message] = remaining.get(message, 0) + 1
        # Walk the sequence, skipping occurrences already consumed.
        consumed: Dict[Msg, int] = {
            message: remaining[message] - config.count(message)
            for message in remaining
        }
        for message in self.sequence:
            if consumed.get(message, 0) > 0:
                consumed[message] -= 1
                continue
            return message if config.count(message) else None
        return None

    def successors(self, config: Configuration) -> Iterator[Tuple[str, Configuration]]:
        allowed = self._next_allowed(config)
        if allowed is None:
            return
        before = config.count(allowed)
        for label, successor in self._base.successors(config):
            if successor.count(allowed) < before:
                yield label, successor


def apply_cfi(query: RosaQuery, program_order: Sequence[Msg]) -> RosaQuery:
    """Constrain the attacker to the program's system-call order.

    ``program_order`` lists the query's messages in the order the program
    issues them; messages absent from the query are ignored, and query
    messages absent from the order are unreachable under CFI (never
    allowed to fire).
    """
    base = query.system or unix_system()
    present = [message for message in program_order if query.initial.count(message)]
    return dataclasses.replace(
        query,
        name=f"{query.name}+cfi",
        system=SequencedObjectSystem(base, present),
    )


#: Syscalls that name their object by *path* (through the global
#: namespace).  Capsicum's capability mode forbids exactly these; only
#: operations on already-held descriptors remain (Watson et al., the
#: paper's [5]).
PATH_BASED_SYSCALLS = frozenset(
    {"open", "chmod", "chown", "unlink", "rename", "creat", "link"}
)


def apply_capsicum(query: RosaQuery) -> RosaQuery:
    """Model the process entering Capsicum capability mode (§X).

    The paper's future work proposes comparing Linux privileges against
    Capsicum.  In capability mode a process loses access to global
    namespaces: path-based syscalls fail outright, and ambient authority
    (uids, capabilities) no longer reaches new objects.  We model the
    namespace cut: messages for path-based syscalls are removed, while
    descriptor-based ones (``fchmod``/``fchown``), credential changes and
    already-open descriptors keep working.

    The instructive contrast with Linux privileges: dropping capabilities
    bounds *which checks can be bypassed*; capability mode bounds *which
    objects exist at all* — so even a process that keeps CAP_DAC_OVERRIDE
    cannot reach /dev/mem once inside the sandbox.
    """
    kept = [
        element
        for element in query.initial
        if not isinstance(element, Msg) or element.name not in PATH_BASED_SYSCALLS
    ]
    return dataclasses.replace(
        query,
        name=f"{query.name}+capsicum",
        initial=Configuration(kept),
    )


@dataclasses.dataclass
class DefenseComparison:
    """Verdicts for one query under each defense configuration."""

    query_name: str
    verdicts: Dict[str, str]

    def render(self) -> str:
        cells = ", ".join(f"{name}={verdict}" for name, verdict in self.verdicts.items())
        return f"{self.query_name}: {cells}"


def compare_defenses(
    query: RosaQuery,
    program_order: Optional[Sequence[Msg]] = None,
    seccomp_allowlist: Optional[Iterable[str]] = None,
    budget=None,
) -> DefenseComparison:
    """Check one query undefended and under each applicable defense."""
    from repro.rosa.query import DEFAULT_BUDGET, check

    budget = budget or DEFAULT_BUDGET
    variants = {"undefended": query}
    if seccomp_allowlist is not None:
        variants["seccomp"] = apply_seccomp(query, seccomp_allowlist)
    if program_order is not None:
        variants["cfi"] = apply_cfi(query, program_order)
    variants["arg-integrity"] = apply_data_integrity(query)
    variants["capsicum"] = apply_capsicum(query)
    verdicts = {
        name: check(variant, budget).verdict.value
        for name, variant in variants.items()
    }
    return DefenseComparison(query.name, verdicts)
