"""A Maude-style textual input format for ROSA queries.

The paper's Figures 2 and 4 show ROSA's inputs as Maude terms: an object
configuration followed by ``=>*`` and a goal.  This module parses that
concrete syntax (lightly regularised) so queries can live in plain-text
files, exactly as the original tool's users wrote them:

.. code-block:: text

    search in UNIX :
      < 1 : Process | euid : 10 , ruid : 11 , suid : 12 ,
                      egid : 10 , rgid : 11 , sgid : 12 ,
                      state : run , rdfset : empty , wrfset : empty >
      < 2 : Dir  | name : "/etc", perms : rwxrwxrwx, inode : 3,
                   owner : 40 , group : 41 >
      < 3 : File | name : "/etc/passwd", perms : ---------,
                   owner : 40 , group : 41 >
      < 4 : User | uid : 10 >
      open(1, 3, r, empty)
      setuid(1, -1, CapSetuid)
      chown(1, -1, -1, 41, CapChown)
      chmod(1, -1, rwxrwxrwx, empty)
    =>* such that 3 in rdfset(1) .

Supported goal conditions (after ``such that``):

* ``<fid> in rdfset(<pid>)`` / ``<fid> in wrfset(<pid>)``
* ``bound(<pid>) < 1024`` — a socket of pid bound to a privileged port
* ``state(<pid>) == dead``
* ``owner(<fid>) == <uid>``

Permission masks are written in symbolic ``rwxr-x---`` form or octal
(``0o750``); capability lists use the paper's camel-case names, with
``empty`` for the empty set.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Tuple

from repro.caps import CapabilitySet
from repro.rewriting import Configuration, Msg, Obj
from repro.rosa import goals, model
from repro.rosa.query import RosaQuery
from repro.rosa.syscalls import KEEP, O_RDONLY, O_RDWR, O_WRONLY


class DslError(ValueError):
    """A syntax or semantic error in a ROSA input file."""


# -- lexical helpers ----------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<string>"[^"]*")
  | (?P<symbol><|>|\(|\)|\||,|:|=>\*|\.)
  | (?P<word>[^\s<>()|,:"]+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    # Strip Maude-style comments (*** to end of line).
    lines = [line.split("***")[0] for line in text.splitlines()]
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer("\n".join(lines)):
        tokens.append(match.group(0))
    return tokens


def parse_perm_mask(text: str) -> int:
    """``rwxr-x---`` or octal text to a mode integer.

    The paper writes permission bits with spaces (``r w x r w x r w x``);
    callers should join those before reaching here.
    """
    text = text.strip()
    if re.fullmatch(r"0o[0-7]+", text):
        return int(text[2:], 8)
    if re.fullmatch(r"[0-7]{3,4}", text):
        return int(text, 8)
    if re.fullmatch(r"[rwx-]{9}", text):
        mask = 0
        for index, (char, expected) in enumerate(zip(text, "rwxrwxrwx")):
            if char == expected:
                mask |= 1 << (8 - index)
            elif char != "-":
                raise DslError(f"bad permission character {char!r} in {text!r}")
        return mask
    raise DslError(f"cannot parse permission mask {text!r}")


def render_perm_mask(mask: int) -> str:
    """The inverse of :func:`parse_perm_mask`, symbolic form."""
    chars = []
    for index, expected in enumerate("rwxrwxrwx"):
        chars.append(expected if mask & (1 << (8 - index)) else "-")
    return "".join(chars)


def parse_caps_list(words: List[str]) -> frozenset:
    """Capability names (camel case) or ``empty`` to a frozenset."""
    if words == ["empty"] or not words:
        return frozenset()
    return CapabilitySet.of(*words).as_frozenset()


# -- the parser ------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self.tokens = tokens
        self.index = 0

    @property
    def current(self) -> Optional[str]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> str:
        token = self.current
        if token is None:
            raise DslError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, token: str) -> None:
        got = self.advance()
        if got != token:
            raise DslError(f"expected {token!r}, got {got!r}")

    def accept(self, token: str) -> bool:
        if self.current == token:
            self.index += 1
            return True
        return False

    # -- top level -------------------------------------------------------------

    def parse_query(self, name: str) -> RosaQuery:
        # Optional "search in UNIX :" header.
        if self.current == "search":
            self.advance()
            self.expect("in")
            self.expect("UNIX")
            self.expect(":")
        elements: List = []
        while self.current is not None and self.current != "=>*":
            if self.current == "<":
                elements.append(self.parse_object())
            else:
                elements.append(self.parse_message())
        goal = goals.any_of()  # default: nothing (never matches)
        if self.accept("=>*"):
            goal = self.parse_goal()
        if self.current == ".":
            self.advance()
        return RosaQuery(name, Configuration(elements), goal)

    # -- objects -----------------------------------------------------------------

    def parse_object(self) -> Obj:
        self.expect("<")
        oid = self._int(self.advance())
        self.expect(":")
        cls = self.advance()
        self.expect("|")
        attrs: Dict[str, List[str]] = {}
        current_key: Optional[str] = None
        buffer: List[str] = []
        while True:
            token = self.advance()
            if token == ">":
                if current_key is not None:
                    attrs[current_key] = buffer
                break
            if token == ",":
                if current_key is not None:
                    attrs[current_key] = buffer
                current_key, buffer = None, []
                continue
            if token == ":" and current_key is None and buffer:
                current_key = buffer[-1]
                buffer = []
                continue
            buffer.append(token)
        return self._build_object(oid, cls, attrs)

    def _build_object(self, oid: int, cls: str, attrs: Dict[str, List[str]]) -> Obj:
        def field(key: str, default=None):
            if key in attrs:
                return attrs[key]
            if default is not None:
                return default
            raise DslError(f"object {oid} ({cls}) missing attribute {key!r}")

        def int_field(key: str, default=None) -> int:
            return self._int(field(key, default)[0])

        def set_field(key: str) -> frozenset:
            words = field(key, ["empty"])
            if words == ["empty"]:
                return frozenset()
            return frozenset(self._int(word) for word in words)

        if cls == "Process":
            return model.process(
                oid,
                euid=int_field("euid"),
                ruid=int_field("ruid"),
                suid=int_field("suid"),
                egid=int_field("egid"),
                rgid=int_field("rgid"),
                sgid=int_field("sgid"),
                state=field("state", ["run"])[0],
                rdfset=set_field("rdfset"),
                wrfset=set_field("wrfset"),
                supplementary=set_field("groups"),
            )
        if cls == "File":
            return model.file_obj(
                oid,
                name=self._string(field("name")[0]),
                owner=int_field("owner"),
                group=int_field("group"),
                perms=parse_perm_mask("".join(field("perms"))),
            )
        if cls == "Dir":
            return model.dir_entry(
                oid,
                name=self._string(field("name")[0]),
                owner=int_field("owner"),
                group=int_field("group"),
                perms=parse_perm_mask("".join(field("perms"))),
                inode=int_field("inode"),
            )
        if cls == "Socket":
            pid_words = attrs.get("owner_pid") or attrs.get("owner")
            if pid_words is None:
                raise DslError(f"object {oid} (Socket) missing attribute 'owner_pid'")
            return model.socket_obj(
                oid,
                owner_pid=self._int(pid_words[0]),
                port=int_field("port", ["0"]),
            )
        if cls == "User":
            return model.user(oid, int_field("uid"))
        if cls == "Group":
            return model.group(oid, int_field("gid"))
        if cls == "Port":
            return model.port_obj(oid, int_field("port"))
        raise DslError(f"unknown object class {cls!r}")

    # -- messages ---------------------------------------------------------------------

    #: name -> (positional arg kinds before the trailing capability list)
    _MESSAGE_SHAPES = {
        "open": ("int", "int", "mode"),
        "setuid": ("int", "int"),
        "seteuid": ("int", "int"),
        "setresuid": ("int", "int", "int", "int"),
        "setgid": ("int", "int"),
        "setegid": ("int", "int"),
        "setresgid": ("int", "int", "int", "int"),
        "kill": ("int", "int", "int"),
        "chmod": ("int", "int", "perms"),
        "fchmod": ("int", "int", "perms"),
        "chown": ("int", "int", "int", "int"),
        "fchown": ("int", "int", "int", "int"),
        "unlink": ("int", "int"),
        "creat": ("int", "int", "string", "perms"),
        "link": ("int", "int", "int", "string"),
        "rename": ("int", "int", "string"),
        "socket": ("int",),
        "bind": ("int", "int", "int"),
        "connect": ("int", "int", "int"),
    }

    def parse_message(self) -> Msg:
        name = self.advance()
        if name not in self._MESSAGE_SHAPES:
            raise DslError(f"unknown system call {name!r}")
        self.expect("(")
        raw_args: List[List[str]] = [[]]
        depth = 1
        while depth:
            token = self.advance()
            if token == "(":
                depth += 1
            elif token == ")":
                depth -= 1
                continue
            elif token == "," and depth == 1:
                raw_args.append([])
                continue
            if depth:
                raw_args[-1].append(token)
        shape = self._MESSAGE_SHAPES[name]
        if len(raw_args) < len(shape):
            raise DslError(
                f"{name} expects at least {len(shape)} arguments, got {len(raw_args)}"
            )
        positional = []
        for kind, words in zip(shape, raw_args):
            positional.append(self._convert_arg(kind, words))
        caps_words = [word for group in raw_args[len(shape):] for word in group]
        caps = parse_caps_list(caps_words)
        return Msg(name, *positional, caps)

    def _convert_arg(self, kind: str, words: List[str]):
        text = "".join(words)
        if kind == "int":
            if text == "keep":
                return KEEP
            return self._int(text)
        if kind == "mode":
            # Open mode: "r - -" styles collapse to r/w flags.
            flags = set(text.replace("-", ""))
            if flags == {"r"}:
                return O_RDONLY
            if flags == {"w"}:
                return O_WRONLY
            if flags in ({"r", "w"}, set("rw")):
                return O_RDWR
            raise DslError(f"cannot parse open mode {text!r}")
        if kind == "perms":
            return parse_perm_mask(text)
        if kind == "string":
            return self._string(text)
        raise DslError(f"unknown argument kind {kind!r}")  # pragma: no cover

    # -- goals -------------------------------------------------------------------------

    def parse_goal(self):
        # Allow either "such that <cond>" directly or a Z:Configuration
        # don't-care pattern before it (as in Figure 4), which we skip.
        while self.current is not None and self.current != "such":
            self.advance()
        if self.current is None:
            raise DslError("missing 'such that' goal condition")
        self.expect("such")
        self.expect("that")
        words: List[str] = []
        while self.current is not None and self.current != ".":
            words.append(self.advance())
        return parse_goal_condition(" ".join(words))

    # -- scalars -----------------------------------------------------------------------

    @staticmethod
    def _int(text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise DslError(f"expected an integer, got {text!r}") from None

    @staticmethod
    def _string(text: str) -> str:
        if text.startswith('"') and text.endswith('"'):
            return text[1:-1]
        return text


_GOAL_PATTERNS = [
    (
        re.compile(r"^(\d+)\s+in\s+rdfset\s*\(\s*(\d+)\s*\)$"),
        lambda m: goals.file_opened_for_read(int(m.group(1)), pid=int(m.group(2))),
    ),
    (
        re.compile(r"^(\d+)\s+in\s+wrfset\s*\(\s*(\d+)\s*\)$"),
        lambda m: goals.file_opened_for_write(int(m.group(1)), pid=int(m.group(2))),
    ),
    (
        re.compile(r"^bound\s*\(\s*(\d+)\s*\)\s*<\s*(\d+)$"),
        lambda m: goals.socket_bound_to_privileged_port(
            pid=int(m.group(1)), bound=int(m.group(2))
        ),
    ),
    (
        re.compile(r"^state\s*\(\s*(\d+)\s*\)\s*==\s*dead$"),
        lambda m: goals.process_terminated(int(m.group(1))),
    ),
    (
        re.compile(r"^owner\s*\(\s*(\d+)\s*\)\s*==\s*(\d+)$"),
        lambda m: goals.file_owner_is(int(m.group(1)), int(m.group(2))),
    ),
]


def parse_goal_condition(text: str):
    """Parse one ``such that`` condition into a goal predicate."""
    text = text.strip()
    for pattern, builder in _GOAL_PATTERNS:
        match = pattern.match(text)
        if match:
            return builder(match)
    raise DslError(f"unsupported goal condition: {text!r}")


def parse_query(text: str, name: str = "query") -> RosaQuery:
    """Parse a full ROSA input (Figure 2/4 style) into a query."""
    return _Parser(_tokenize(text)).parse_query(name)


@dataclasses.dataclass(frozen=True)
class DslQuerySpec:
    """A picklable builder for one DSL query (process-pool transport).

    Queries hold goal closures, which do not pickle; the DSL *text*
    does.  This is the ``QueryRequest.spec`` that lets
    ``privanalyzer rosa --jobs N`` fan query files over a process pool —
    each worker re-parses the text, which is deterministic, so the
    rebuilt query is search-equivalent to the parent's.
    """

    text: str
    name: str = "query"

    def build(self) -> RosaQuery:
        return parse_query(self.text, name=self.name)


# -- serialisation -------------------------------------------------------------------


def render_configuration(config: Configuration) -> str:
    """Render a configuration back into the DSL's concrete syntax."""
    lines = ["search in UNIX :"]
    for obj in sorted(config.objects(), key=lambda o: o.oid):
        lines.append("  " + _render_object(obj))
    for message in sorted(config.messages(), key=lambda m: (m.name, repr(m.args))):
        for _ in range(config.count(message)):
            lines.append("  " + _render_message(message))
    return "\n".join(lines)


def _render_object(obj: Obj) -> str:
    parts = []
    for key, value in sorted(obj.attrs.items()):
        if key == "perms":
            rendered = render_perm_mask(value)
        elif isinstance(value, frozenset):
            rendered = " ".join(str(item) for item in sorted(value)) or "empty"
        elif isinstance(value, str) and key == "name":
            rendered = f'"{value}"'
        else:
            rendered = str(value)
        parts.append(f"{key} : {rendered}")
    return f"< {obj.oid} : {obj.cls} | " + " , ".join(parts) + " >"


def _render_message(message: Msg) -> str:
    shape = _Parser._MESSAGE_SHAPES.get(message.name, ())
    rendered = []
    for index, arg in enumerate(message.args):
        kind = shape[index] if index < len(shape) else "caps"
        if isinstance(arg, frozenset):
            rendered.append(
                " ".join(str(cap) for cap in sorted(arg, key=str)) or "empty"
            )
        elif arg == KEEP:
            rendered.append("keep")
        elif kind == "perms":
            rendered.append(render_perm_mask(arg))
        elif kind == "string":
            rendered.append(f'"{arg}"')
        else:
            rendered.append(str(arg))
    return f"{message.name}(" + ", ".join(rendered) + ")"
