"""The ROSA query engine: canonical keys, result caching, batch scheduling.

The pipeline asks ROSA one bounded-model-checking question per
(ChronoPriv phase × attack) pair, and the multi-process study repeats
the same questions across processes and attacks.  Distinct phases very
often share their (privileges, uids, gids, syscall-surface) tuple — the
paper's Table III rows collapse to a handful of distinct credential
states — so the searches are heavily redundant.  This module makes that
redundancy free:

* :func:`query_cache_key` derives a deterministic **canonical key** for a
  query from its initial configuration's canonical key, its goal
  identity, the rule system and the search budget;
* :class:`QueryCache` memoizes verdicts by canonical key — an in-memory
  LRU with optional on-disk JSON persistence, so repeated questions are
  answered in O(1) instead of re-running the BFS;
* :class:`QueryEngine` is the batch front end: :meth:`QueryEngine.check`
  is a cache-aware drop-in for :func:`repro.rosa.query.check`, and
  :meth:`QueryEngine.run_queries` dedupes a batch by canonical key and
  fans the distinct searches out over ``concurrent.futures`` (a process
  pool for paper-scale budgets, threads or serial execution otherwise).

Caching never changes a verdict: two queries share a cache entry only
when their initial configurations are AC-equal, their goals are
structurally identical, the rule system matches and the budget matches —
exactly the conditions under which the bounded search is deterministic.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import dataclasses
import errno
import functools
import hashlib
import json
import logging
import os
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.rewriting import (
    PROGRESS_INTERVAL,
    ProgressSample,
    SearchBudget,
    SearchStats,
)
from repro.rosa.independence import REDUCTION_MIN_SPACE, estimated_space
from repro.rosa.query import (
    DEFAULT_BUDGET,
    RosaQuery,
    RosaReport,
    Verdict,
    check,
    unix_system,
)
from repro.telemetry.capsule import (
    CAPSULE_SCHEMA_VERSION,
    CapsuleCollector,
    CapsuleRequest,
    merge_capsule,
    normalize_worker,
)
from repro.telemetry.profiler import NULL_PROFILER
from repro.telemetry.tracing import NULL_TRACER

logger = logging.getLogger("repro.rosa.engine")

#: Bump when the cache entry format or the key derivation changes;
#: persisted caches with another version are discarded, not misread.
#: Version 2: the reduction flag joined the key material and cached
#: outcomes grew the reduction counters.
#: Version 3: lazy canonicalization and working partial-order reduction
#: changed the cost counters cached entries carry (symmetry_hits /
#: por_pruned semantics), and the engine now downgrades tiny searches
#: to the raw space, so reduction=True entries for them hold raw counts.
#: Version 4: keys hash per-element digests (memoized across queries)
#: instead of re-``repr``-ing the whole configuration key per query —
#: same determinism guarantees, different bytes under the hash.
CACHE_SCHEMA_VERSION = 4


# -- cross-process file locking ----------------------------------------------


@contextlib.contextmanager
def advisory_lock(
    path: str, timeout: float = 10.0, stale_after: float = 30.0
) -> Iterator[None]:
    """An advisory cross-process lock around ``path`` (a ``.lock`` sibling).

    Lockfile-based (``O_CREAT | O_EXCL``), so it works on any filesystem
    the cache or the shared verdict store can live on — no ``fcntl``
    dependency, no byte-range semantics to get wrong over NFS.  Waiting
    processes poll; a lockfile older than ``stale_after`` seconds is
    treated as an orphan (its holder crashed between acquire and
    release) and broken.  Raises ``TimeoutError`` if the lock cannot be
    won inside ``timeout`` seconds — callers must fail loudly rather
    than scribble over a file another process is merging.
    """
    lock_path = path + ".lock"
    deadline = time.monotonic() + timeout
    while True:
        try:
            fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            break
        except OSError as error:
            if error.errno != errno.EEXIST:
                raise
        try:
            age = time.time() - os.stat(lock_path).st_mtime
            if age > stale_after:
                # The holder died without releasing; break the orphan.
                # (A racing breaker just loses the unlink — harmless.)
                logger.warning("breaking stale lock %s (age %.1fs)", lock_path, age)
                os.unlink(lock_path)
                continue
        except OSError:
            pass  # the holder released between our open and stat
        if time.monotonic() >= deadline:
            raise TimeoutError(f"could not acquire {lock_path} in {timeout}s")
        time.sleep(0.002)
    try:
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        yield
    finally:
        try:
            os.unlink(lock_path)
        except OSError:  # pragma: no cover - already broken as stale
            pass


# -- canonical query keys -----------------------------------------------------


def goal_identity(goal) -> Hashable:
    """A deterministic, structural identity for a goal predicate.

    Goals are closures (see :mod:`repro.rosa.goals`); two goals built by
    the same factory with the same arguments are the same predicate, so
    the identity is the function's qualified name plus the canonical
    description of every closed-over value, recursively (``any_of`` /
    ``all_of`` close over tuples of goals).  Queries may short-circuit
    this with :attr:`RosaQuery.goal_key`.
    """
    qualname = getattr(goal, "__qualname__", None)
    if qualname is None:  # pragma: no cover - goals are plain functions
        return repr(goal)
    cells: Tuple = ()
    closure = getattr(goal, "__closure__", None)
    if closure:
        cells = tuple(_describe_value(cell.cell_contents) for cell in closure)
    return (getattr(goal, "__module__", ""), qualname, cells)


def _describe_value(value) -> Hashable:
    if callable(value) and hasattr(value, "__qualname__"):
        return goal_identity(value)
    if isinstance(value, (tuple, list)):
        return ("seq",) + tuple(_describe_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted(repr(item) for item in value))
    if isinstance(value, dict):
        return ("map",) + tuple(
            sorted((repr(k), _describe_value(v)) for k, v in value.items())
        )
    return repr(value)


def budget_identity(budget: SearchBudget) -> Tuple:
    return (budget.max_states, budget.max_depth, budget.max_seconds)


#: The default rule set's signature, computed once — building the 17-rule
#: UNIX module per key derivation would dominate small-query lookups.
_DEFAULT_SIGNATURE = None


@functools.lru_cache(maxsize=131072)
def _element_digest(element_key: Hashable) -> bytes:
    """The sha256 digest of one element's canonical key, memoized.

    Configurations across a batch (and across batches — phases repeat
    the same users, files and capability sets endlessly) share most of
    their elements, but every query used to pay a full ``repr`` of its
    whole nested key.  Memoizing per *element key* makes the expensive
    ``repr`` a once-per-distinct-element cost fleet-wide; equal element
    keys hash to the same digest regardless of object identity, so the
    derived query key is exactly as deterministic as before.
    """
    return hashlib.sha256(repr(element_key).encode("utf-8")).digest()


def _config_digest(config) -> bytes:
    """A content digest of a configuration's canonical (AC-equality) key.

    Combines the memoized per-element digests in the key's sorted order;
    counts are length-prefixed into the stream so ``(a, 2)`` can never
    collide with ``(a, 1), (a, 1)``-style re-bracketings.
    """
    hasher = hashlib.sha256()
    for element, count in config.key:
        hasher.update(_element_digest(element))
        hasher.update(b"#%d;" % count)
    return hasher.digest()


@functools.lru_cache(maxsize=64)
def _signature_digest(signature: Hashable) -> bytes:
    """Memoized digest of a rule-system signature tuple."""
    return hashlib.sha256(repr(signature).encode("utf-8")).digest()


def system_signature(system=None) -> Hashable:
    """The rule-system signature keys and attestations bind to.

    ``None`` means the default 17-rule UNIX module (cached — building it
    per lookup would dominate small queries).
    """
    if system is not None:
        return system.signature
    global _DEFAULT_SIGNATURE
    if _DEFAULT_SIGNATURE is None:
        _DEFAULT_SIGNATURE = unix_system().signature
    return _DEFAULT_SIGNATURE


def query_cache_key(
    query: RosaQuery,
    budget: SearchBudget = DEFAULT_BUDGET,
    reduction: bool = True,
) -> str:
    """The canonical content-hash key of one (query, budget) pair.

    Derived from the initial configuration's canonical (AC-equality) key,
    the goal identity, the rule-system signature, the budget and the
    reduction flag — every input that determines the search's verdict
    *and its cost counters* (reduction never changes the verdict, but
    sharing entries across the flag would report the wrong state counts).
    The hash is stable across processes and interpreter runs (no
    ``hash()`` involvement), so it keys the on-disk cache and the
    fleet-wide :class:`~repro.rosa.store.SharedVerdictStore` too.
    """
    goal = query.goal_key if query.goal_key is not None else goal_identity(query.goal)
    tail = (
        "rosa-query",
        CACHE_SCHEMA_VERSION,
        goal,
        budget_identity(budget),
        bool(reduction),
    )
    hasher = hashlib.sha256()
    hasher.update(_config_digest(query.initial))
    hasher.update(_signature_digest(system_signature(query.system)))
    hasher.update(repr(tail).encode("utf-8"))
    return hasher.hexdigest()


# -- the result cache ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CachedOutcome:
    """The JSON-serialisable essence of one search result.

    Everything the pipeline's verdict grids and exposure metrics consume:
    the verdict, the witness rule labels, and the cost counters.  The
    compromised configuration itself is not persisted (it is a graph of
    live objects); cache-served reports carry ``compromised_state=None``
    unless the in-memory entry still holds the full report.
    """

    verdict: str
    witness: Tuple[str, ...]
    states_explored: int
    states_seen: int
    elapsed: float
    peak_frontier: int
    dedup_hits: int
    max_depth: int
    symmetry_hits: int = 0
    por_pruned: int = 0

    def to_json(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CachedOutcome":
        return cls(
            verdict=str(data["verdict"]),
            witness=tuple(data.get("witness", ())),
            states_explored=int(data.get("states_explored", 0)),
            states_seen=int(data.get("states_seen", 0)),
            elapsed=float(data.get("elapsed", 0.0)),
            peak_frontier=int(data.get("peak_frontier", 0)),
            dedup_hits=int(data.get("dedup_hits", 0)),
            max_depth=int(data.get("max_depth", 0)),
            symmetry_hits=int(data.get("symmetry_hits", 0)),
            por_pruned=int(data.get("por_pruned", 0)),
        )

    @classmethod
    def from_report(cls, report: RosaReport) -> "CachedOutcome":
        return cls(
            verdict=report.verdict.value,
            witness=tuple(report.witness),
            states_explored=report.states_explored,
            states_seen=report.states_seen,
            elapsed=report.elapsed,
            peak_frontier=report.stats.peak_frontier,
            dedup_hits=report.stats.dedup_hits,
            max_depth=report.stats.max_depth,
            symmetry_hits=report.stats.symmetry_hits,
            por_pruned=report.stats.por_pruned,
        )

    def to_report(self, query: RosaQuery) -> RosaReport:
        return RosaReport(
            query=query,
            verdict=Verdict(self.verdict),
            witness=list(self.witness),
            compromised_state=None,
            states_explored=self.states_explored,
            states_seen=self.states_seen,
            elapsed=self.elapsed,
            witness_states=[],
            stats=SearchStats(
                peak_frontier=self.peak_frontier,
                dedup_hits=self.dedup_hits,
                max_depth=self.max_depth,
                symmetry_hits=self.symmetry_hits,
                por_pruned=self.por_pruned,
            ),
            from_cache=True,
        )


@dataclasses.dataclass
class _CacheEntry:
    outcome: CachedOutcome
    #: The full report, kept for in-memory hits so witnesses'
    #: compromised states survive; dropped on disk round-trips.
    report: Optional[RosaReport] = None


def read_cache_entries(path: str) -> Dict[str, Any]:
    """Raw same-schema entry payloads from a cache file on disk.

    Unreadable, corrupt or schema-skewed files come back empty — the
    merge primitive (:meth:`QueryCache.save`, and the shared store's
    index compaction) treats anything it cannot trust as absent rather
    than propagating it forward.
    """
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        logger.warning("query cache %s unreadable, ignoring: %s", path, error)
        return {}
    if not isinstance(data, dict) or data.get("version") != CACHE_SCHEMA_VERSION:
        return {}
    entries = data.get("entries", {})
    return dict(entries) if isinstance(entries, dict) else {}


class QueryCache:
    """An LRU of search outcomes keyed by canonical query key.

    ``capacity`` bounds the in-memory entry count (least recently used
    entries evict first).  With ``path`` set, entries persist as JSON:
    :meth:`load` runs at construction, :meth:`save` writes atomically and
    is called by the engine after each batch that added entries.
    """

    def __init__(self, capacity: int = 4096, path: Optional[str] = None) -> None:
        if capacity <= 0:
            raise ValueError(f"cache capacity must be positive: {capacity}")
        self.capacity = capacity
        self.path = path
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, _CacheEntry]" = OrderedDict()
        self._dirty = False
        if path is not None:
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: str) -> Optional[_CacheEntry]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self, key: str, outcome: CachedOutcome, report: Optional[RosaReport] = None
    ) -> None:
        self._entries[key] = _CacheEntry(outcome=outcome, report=report)
        self._entries.move_to_end(key)
        self._dirty = True
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._dirty = True

    # -- persistence ----------------------------------------------------------

    def load(self) -> int:
        """Load persisted entries from ``path``; returns the count loaded."""
        if self.path is None or not os.path.exists(self.path):
            return 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError) as error:
            logger.warning("query cache %s unreadable, ignoring: %s", self.path, error)
            return 0
        if data.get("version") != CACHE_SCHEMA_VERSION:
            logger.info(
                "query cache %s has version %r, want %d; starting fresh",
                self.path, data.get("version"), CACHE_SCHEMA_VERSION,
            )
            return 0
        loaded = 0
        for key, entry in data.get("entries", {}).items():
            try:
                self._entries[key] = _CacheEntry(CachedOutcome.from_json(entry))
                loaded += 1
            except (KeyError, TypeError, ValueError):
                continue
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return loaded

    def save(self) -> bool:
        """Merge entries into ``path`` atomically; returns True if written.

        Save is load-merge-replace under an :func:`advisory_lock`, not
        last-writer-wins: same-schema entries already on disk are kept
        and this cache's entries layered on top, so two processes
        sharing one ``--query-cache`` path union their work instead of
        silently dropping each other's batches.  Only the in-memory LRU
        is capacity-bounded — the disk file keeps the fleet's union.
        """
        if self.path is None or not self._dirty:
            return False
        with advisory_lock(self.path):
            merged = read_cache_entries(self.path)
            for key, entry in self._entries.items():
                merged[key] = entry.outcome.to_json()
            payload = {"version": CACHE_SCHEMA_VERSION, "entries": merged}
            directory = os.path.dirname(os.path.abspath(self.path))
            fd, tmp_path = tempfile.mkstemp(prefix=".rosa-cache-", dir=directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(payload, handle, indent=0, sort_keys=True)
                os.replace(tmp_path, self.path)
            except OSError:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        self._dirty = False
        return True


# -- batch scheduling ---------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ParallelPolicy:
    """How :meth:`QueryEngine.run_queries` executes distinct searches.

    ``mode``:

    * ``"serial"`` — run in the calling thread (full tracing fidelity);
    * ``"thread"`` — a thread pool: useful when searches block on the
      wall-clock budget, not for CPU speedup under the GIL;
    * ``"process"`` — a process pool: real CPU parallelism; requires each
      request to carry a picklable ``spec`` builder (goal closures do not
      pickle), and pays a pool-startup cost only worth it for paper-scale
      budgets;
    * ``"auto"`` (default) — ``process`` when every distinct request has
      a spec, the batch is at least ``process_batch_min``, and the budget
      reaches ``process_min_states``; otherwise serial — at this repo's
      repro-scale budgets a pool costs more than the searches themselves.
    """

    mode: str = "auto"
    max_workers: Optional[int] = None
    process_batch_min: int = 4
    process_min_states: int = 1_000_000

    def resolve(
        self, distinct: int, budget: SearchBudget, all_have_specs: bool
    ) -> str:
        if self.mode != "auto":
            return self.mode
        if (
            all_have_specs
            and distinct >= self.process_batch_min
            and budget.max_states is not None
            and budget.max_states >= self.process_min_states
        ):
            return "process"
        return "serial"


@dataclasses.dataclass
class QueryRequest:
    """One entry of a :meth:`QueryEngine.run_queries` batch.

    ``spec``, when given, is a picklable object with a ``build()`` method
    returning an equivalent :class:`RosaQuery`; it is what travels to
    process-pool workers (queries themselves hold goal closures, which do
    not pickle).  ``budget`` overrides the engine default for this query.
    """

    query: RosaQuery
    budget: Optional[SearchBudget] = None
    spec: Optional[Any] = None


def _run_spec_in_worker(
    spec,
    budget: SearchBudget,
    reduction: bool = True,
    capsule_request: Optional[CapsuleRequest] = None,
):
    """Process-pool entry point: rebuild the query, search, return the essence.

    Without a capsule request (telemetry fully disabled) the worker
    searches dark and ships the bare :class:`CachedOutcome`.  With one,
    the search runs under a private :class:`CapsuleCollector` and the
    return value is an ``(outcome, capsule)`` pair — the parent merges
    the capsule into its own collectors (see :func:`merge_capsule`).
    """
    if capsule_request is None or not capsule_request.any:
        report = check(spec.build(), budget, tracer=NULL_TRACER, reduction=reduction)
        return CachedOutcome.from_report(report)
    collector = CapsuleCollector(capsule_request)
    report = check(
        spec.build(),
        budget,
        tracer=collector.tracer,
        progress=collector.progress,
        reduction=reduction,
        profiler=collector.profiler,
    )
    collector.observe_report(report)
    return CachedOutcome.from_report(report), collector.capsule()


class QueryEngine:
    """Cache-aware, batch-scheduling front end to :func:`repro.rosa.query.check`.

    One engine holds one :class:`QueryCache`; every pipeline stage that
    shares the engine shares the memoized verdicts, so phases (and whole
    table regenerations) that repeat a (privileges, uids, gids, surface)
    combination pay for its search exactly once.
    """

    def __init__(
        self,
        budget: SearchBudget = DEFAULT_BUDGET,
        cache: Optional[QueryCache] = None,
        parallel: Optional[ParallelPolicy] = None,
        telemetry=None,
        progress=None,
        progress_interval: int = PROGRESS_INTERVAL,
        checker=None,
        reduction: bool = True,
        profiler=None,
        capsules: bool = True,
        store=None,
    ) -> None:
        from repro.telemetry import Telemetry

        self.budget = budget
        #: Optional fleet-wide L2 behind the in-memory LRU: any object
        #: with ``get(key) -> Optional[CachedOutcome]`` and
        #: ``put(key, outcome) -> bool`` (duck-typed so this module never
        #: imports :mod:`repro.rosa.store`).  L1 misses consult it before
        #: searching; fresh outcomes publish back so sibling processes
        #: hit instead of recomputing.
        self.store = store
        #: Optional :class:`repro.telemetry.Profiler`.  When live, every
        #: serial search gets per-rule/reduction-phase attribution (the
        #: ``profiler`` kwarg is forwarded to ``checker`` — only then, so
        #: custom checkers without the parameter keep working), and batch
        #: scheduling records queue-wait versus execute time per worker
        #: under the ``engine`` root.
        self.profiler = profiler
        #: Symmetry + partial-order state-space reduction for every
        #: search this engine runs (see :mod:`repro.rosa.independence`).
        #: Verdict-preserving; disable for baselines and differential
        #: runs.  Even when enabled, searches whose estimated raw space
        #: is below :data:`~repro.rosa.independence.REDUCTION_MIN_SPACE`
        #: run unreduced — see :meth:`_effective_reduction`.
        self.reduction = reduction
        #: ``None`` disables caching entirely (every check searches).
        self.cache = cache
        self.parallel = parallel or ParallelPolicy()
        self.telemetry = telemetry or Telemetry.disabled()
        #: The search implementation behind every serial check; defaults
        #: to :func:`repro.rosa.query.check`.  The conformance testkit
        #: swaps in instrumented or reference checkers here to prove the
        #: cache and the pools never change an answer (process-pool
        #: workers always run the stock checker — closures do not pickle).
        self.checker = checker or check
        #: Live-search observability: every serially executed search
        #: forwards periodic :class:`~repro.rewriting.ProgressSample`
        #: readings here.  Pool workers sample into their telemetry
        #: capsule instead (a bounded, decimated tail reattached to the
        #: report at merge time — not live).  Cache hits emit none.
        self.progress = progress
        self.progress_interval = progress_interval
        #: Fleet telemetry: with ``capsules`` on (the default), pool
        #: workers — process *and* thread mode — run their searches
        #: under private collectors and return a
        #: :class:`~repro.telemetry.capsule.TelemetryCapsule` that the
        #: engine merges back into this session's tracer / metrics /
        #: profiler / audit ring.  Collection only actually happens when
        #: some parent collector is live (see :meth:`_capsule_request`),
        #: so dark runs stay zero-overhead.
        self.capsules = capsules
        #: Raw worker name → stable integer id, session-persistent so
        #: ``worker:N`` spellings agree across batches.
        self._worker_ids: Dict[str, int] = {}
        #: Per-worker accumulated accounting (see :meth:`fleet_stats`).
        self._fleet: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._fleet_mode: Optional[str] = None

    # -- single queries --------------------------------------------------------

    def _effective_reduction(self, query: RosaQuery) -> bool:
        """The reduction flag for one query: the engine's setting,
        downgraded to a raw search when the estimated state space is too
        small to repay the reducer's setup and per-state key derivation.

        The gate lives here, not in :func:`repro.rosa.query.check`,
        because direct ``check`` calls are the measurement surface —
        baselines, differential oracles and the reduction tests need
        ``reduction=True`` to mean the reducer actually runs.  The
        downgrade is deterministic in the query, so cache entries keyed
        with the effective flag stay consistent across runs, and it is
        verdict-neutral: both searches are exhaustive over the same
        space.
        """
        return self.reduction and (
            estimated_space(query.initial) >= REDUCTION_MIN_SPACE
        )

    def check(
        self,
        query: RosaQuery,
        budget: Optional[SearchBudget] = None,
        track_states: bool = False,
    ) -> RosaReport:
        """Cache-aware ``check``: a hit skips the search entirely.

        ``track_states`` bypasses the cache (witness configurations are
        not memoized) and always searches.
        """
        budget = budget or self.budget
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        if track_states or (self.cache is None and self.store is None):
            return self._checked(query, budget, track_states=track_states)
        reduction = self._effective_reduction(query)
        key = query_cache_key(query, budget, reduction=reduction)
        if self.cache is not None:
            entry = self.cache.get(key)
            if entry is not None:
                metrics.counter("rosa.cache.hits").inc()
                return self._served_from_cache(query, entry, tracer)
            metrics.counter("rosa.cache.misses").inc()
        outcome = self._store_get(key)
        if outcome is not None:
            if self.cache is not None:
                self.cache.put(key, outcome)
            return self._served_from_cache(
                query, _CacheEntry(outcome=outcome), tracer
            )
        report = self._checked(query, budget, reduction=reduction)
        outcome = CachedOutcome.from_report(report)
        if self.cache is not None:
            self.cache.put(key, outcome, report)
        self._store_put(key, outcome)
        return report

    def _store_get(self, key: str) -> Optional[CachedOutcome]:
        """L2 lookup with hit/miss accounting (``None`` without a store)."""
        if self.store is None:
            return None
        outcome = self.store.get(key)
        if outcome is not None:
            self.telemetry.metrics.counter("rosa.store.hits").inc()
            return outcome
        self.telemetry.metrics.counter("rosa.store.misses").inc()
        return None

    def _store_put(self, key: str, outcome: CachedOutcome) -> None:
        """Publish one fresh outcome to the L2 store (no-op without one)."""
        if self.store is None:
            return
        if self.store.put(key, outcome):
            self.telemetry.metrics.counter("rosa.store.published").inc()

    def _checked(
        self,
        query: RosaQuery,
        budget: SearchBudget,
        track_states: bool = False,
        reduction: Optional[bool] = None,
    ) -> RosaReport:
        """One live search with the engine's tracer and progress wiring.

        ``reduction`` takes the precomputed effective flag when the
        caller already derived it for key derivation — the estimate walk
        is cheap but measurable on tiny batches, so it runs once per
        query, not twice.
        """
        extra = {}
        if self.profiler is not None:
            extra["profiler"] = self.profiler
        report = self.checker(
            query,
            budget,
            track_states=track_states,
            tracer=self.telemetry.tracer,
            progress=self.progress,
            progress_interval=self.progress_interval,
            reduction=(
                self._effective_reduction(query) if reduction is None else reduction
            ),
            **extra,
        )
        metrics = self.telemetry.metrics
        if report.stats.symmetry_hits:
            metrics.counter("rosa.reduction.symmetry_hits").inc(
                report.stats.symmetry_hits
            )
        if report.stats.por_pruned:
            metrics.counter("rosa.reduction.por_pruned").inc(report.stats.por_pruned)
        return report

    def _served_from_cache(self, query: RosaQuery, entry: _CacheEntry, tracer):
        with tracer.span("rosa.query", query=query.name, cached=True) as span:
            if entry.report is not None:
                report = dataclasses.replace(
                    entry.report, query=query, from_cache=True
                )
            else:
                report = entry.outcome.to_report(query)
            span.set_attribute("verdict", report.verdict.value)
        return report

    # -- batches ---------------------------------------------------------------

    def run_queries(
        self, requests: Sequence[Union[QueryRequest, RosaQuery]]
    ) -> List[RosaReport]:
        """Answer a batch of queries; returns reports in request order.

        The batch is deduplicated by canonical key first (duplicates get
        the same search's answer re-attached to their own query), cache
        hits are served without searching, and the remaining distinct
        searches run under the engine's :class:`ParallelPolicy`.
        """
        entries = [
            request if isinstance(request, QueryRequest) else QueryRequest(request)
            for request in requests
        ]
        metrics = self.telemetry.metrics
        tracer = self.telemetry.tracer
        profiler = self.profiler if (
            self.profiler is not None and self.profiler.enabled
        ) else None
        if entries:
            metrics.counter("rosa.batch.queries").inc(len(entries))

        # Per-batch setup hoisted out of the per-query path: the effective
        # reduction flag is derived once per query (key derivation and the
        # search both need it) and the counter objects once per batch —
        # registry lookups per query were a measurable slice of the cold
        # tiny-batch tax.
        cache_hits = metrics.counter("rosa.cache.hits")
        cache_misses = metrics.counter("rosa.cache.misses")
        with (profiler or NULL_PROFILER).section("engine", "key_derivation"):
            reductions = [
                self._effective_reduction(request.query) for request in entries
            ]
            keys = [
                query_cache_key(
                    request.query, request.budget or self.budget, reduction=reduced
                )
                for request, reduced in zip(entries, reductions)
            ]
        reports: List[Optional[RosaReport]] = [None] * len(entries)

        # 1. Serve cache hits and collect the distinct misses, preserving
        #    first-occurrence order for deterministic scheduling.  A key's
        #    first L1 miss consults the shared store (once per distinct
        #    key); a store hit warms L1 so deduped siblings stay local.
        distinct: "OrderedDict[str, List[int]]" = OrderedDict()
        for index, (request, key) in enumerate(zip(entries, keys)):
            if self.cache is not None:
                lookup_start = profiler.clock() if profiler is not None else 0.0
                entry = self.cache.get(key)
                if profiler is not None:
                    profiler.account(
                        ("engine", "cache.lookup"), profiler.clock() - lookup_start
                    )
                    profiler.count(
                        ("engine", "cache.lookup"),
                        "hits" if entry is not None else "misses",
                    )
                if entry is not None:
                    cache_hits.inc()
                    reports[index] = self._served_from_cache(
                        request.query, entry, tracer
                    )
                    continue
                cache_misses.inc()
            if self.store is not None and key not in distinct:
                outcome = self._store_get(key)
                if outcome is not None:
                    if self.cache is not None:
                        self.cache.put(key, outcome)
                    reports[index] = self._served_from_cache(
                        request.query, _CacheEntry(outcome=outcome), tracer
                    )
                    continue
            distinct.setdefault(key, []).append(index)
        if distinct:
            metrics.counter("rosa.batch.unique").inc(len(distinct))

        # 2. Run each distinct search once.
        if distinct:
            leaders = [indices[0] for indices in distinct.values()]
            budget_for = lambda index: entries[index].budget or self.budget
            all_have_specs = all(
                entries[index].spec is not None for index in leaders
            )
            widest = max(
                (budget_for(index).max_states or 0 for index in leaders), default=0
            )
            mode = self.parallel.resolve(
                len(leaders),
                dataclasses.replace(self.budget, max_states=widest or None)
                if widest
                else self.budget,
                all_have_specs,
            )
            if mode == "serial" or len(leaders) == 1:
                if profiler is not None:
                    # Serial scheduling is one worker draining the queue:
                    # queue wait is time spent behind earlier searches.
                    batch_start = profiler.clock()
                    leader_reports = []
                    for index in leaders:
                        start = profiler.clock()
                        profiler.account(
                            ("engine", "worker:0", "queue_wait"), start - batch_start
                        )
                        leader_reports.append(
                            self._checked(
                                entries[index].query,
                                budget_for(index),
                                reduction=reductions[index],
                            )
                        )
                        profiler.account(
                            ("engine", "worker:0", "execute"),
                            profiler.clock() - start,
                        )
                else:
                    leader_reports = [
                        self._checked(
                            entries[index].query,
                            budget_for(index),
                            reduction=reductions[index],
                        )
                        for index in leaders
                    ]
            else:
                leader_reports = self._run_parallel(
                    mode, entries, leaders, budget_for, profiler, keys, reductions
                )
            for key_indices, report in zip(distinct.values(), leader_reports):
                if self.cache is not None or self.store is not None:
                    outcome = CachedOutcome.from_report(report)
                    if self.cache is not None:
                        self.cache.put(keys[key_indices[0]], outcome, report)
                    self._store_put(keys[key_indices[0]], outcome)
                for position, index in enumerate(key_indices):
                    if position == 0:
                        reports[index] = report
                    else:
                        # A deduped sibling: same answer, its own query.
                        metrics.counter("rosa.batch.dedup_hits").inc()
                        reports[index] = dataclasses.replace(
                            report, query=entries[index].query
                        )
        if self.cache is not None and self.cache.path is not None:
            self.cache.save()
        return [report for report in reports if report is not None]

    def _capsule_request(self, profiler) -> Optional[CapsuleRequest]:
        """What pool workers should collect, or ``None`` for nothing.

        Derived from the parent session's live collectors: no tracer →
        no span collection, and so on.  When no collector is live (the
        default dark pipeline) this returns ``None`` and workers run
        exactly the pre-capsule fast path — zero added overhead.
        """
        if not self.capsules:
            return None
        trace = self.telemetry.active
        profile = profiler is not None
        audit = self.telemetry.audit is not None
        samples = trace or self.progress is not None
        if not (trace or profile or audit or samples):
            return None
        return CapsuleRequest(
            trace=trace, profile=profile, samples=samples, audit=audit
        )

    def _record_fleet(
        self, worker, capsule, report, queue_wait: float, execute: float, mode
    ) -> None:
        """Accumulate one merged capsule into the per-worker fleet stats."""
        stats = self._fleet.get(worker)
        if stats is None:
            stats = self._fleet[worker] = {
                "tasks": 0,
                "execute_seconds": 0.0,
                "queue_wait_seconds": 0.0,
                "states_explored": 0,
                "spans": 0,
                "samples": 0,
                "profile_records": 0,
                "audit_records": 0,
                "syscalls": 0,
                "names": [],
            }
        stats["tasks"] += 1
        stats["execute_seconds"] += execute
        stats["queue_wait_seconds"] += queue_wait
        stats["states_explored"] += report.states_explored
        stats["spans"] += len(capsule.spans)
        stats["samples"] += len(capsule.samples)
        stats["profile_records"] += len(capsule.profile)
        stats["audit_records"] += len(capsule.audit_records)
        stats["syscalls"] += capsule.audit_total
        if capsule.worker not in stats["names"]:
            stats["names"].append(capsule.worker)
        self._fleet_mode = mode

    def fleet_stats(self) -> Dict[str, Any]:
        """Per-worker capsule accounting for ledgers and ``diff``.

        Empty until a pool batch has merged at least one capsule.  Keys
        are stable ``worker:N`` ids; ``names`` lists the raw worker
        identities (pool thread names, ``pid:N``) that mapped to each.
        """
        if not self._fleet:
            return {}
        return {
            "capsule_schema": CAPSULE_SCHEMA_VERSION,
            "mode": self._fleet_mode,
            "workers": {
                worker: dict(stats)
                for worker, stats in sorted(self._fleet.items())
            },
        }

    def _run_parallel(
        self,
        mode,
        entries,
        leaders,
        budget_for,
        profiler=None,
        keys=None,
        reductions=None,
    ) -> List[RosaReport]:
        """Fan distinct searches over an executor; returns leader-ordered reports.

        With capsules enabled and any parent collector live, each worker
        (process or thread) searches under a private collector set and
        its telemetry merges back here: spans adopt into the session
        tracer (clock-skew-normalized, stamped with ``worker`` +
        ``trace_id``), metrics fold in additively with per-worker labeled
        variants, profile subtrees graft under
        ``("engine", "worker:N", "execute")``, audit records re-sequence
        into the parent ring, and progress samples reattach to the
        report.  Scheduling itself is attributed per worker: queue wait
        (submit → start) versus execute (the search).
        """
        tracer = self.telemetry.tracer
        metrics = self.telemetry.metrics
        workers = self.parallel.max_workers or min(
            len(leaders), os.cpu_count() or 1
        )
        metrics.gauge("rosa.pool.workers").set_max(workers)
        request = self._capsule_request(profiler)
        timed = profiler is not None or request is not None
        clock = profiler.clock if profiler is not None else tracer.clock

        def reduction_for(index):
            if reductions is not None:
                return reductions[index]
            return self._effective_reduction(entries[index].query)

        def request_for(index):
            # Trace-context propagation: the canonical query key is the
            # capsule's trace id, shared by every span the worker emits.
            if request is None or keys is None:
                return request
            return dataclasses.replace(request, trace_id=keys[index])

        if mode == "process":
            unbuildable = [
                index for index in leaders if entries[index].spec is None
            ]
            if unbuildable:
                raise ValueError(
                    "process-pool execution needs a picklable spec on every "
                    f"request; {len(unbuildable)} request(s) have none"
                )
            executor_cls = concurrent.futures.ProcessPoolExecutor
            submit_args = [
                (
                    _run_spec_in_worker,
                    entries[index].spec,
                    budget_for(index),
                    reduction_for(index),
                    request_for(index),
                )
                for index in leaders
            ]
        elif mode == "thread":
            executor_cls = concurrent.futures.ThreadPoolExecutor

            def run_in_thread(query, budget, reduction, capsule_request):
                # Thread workers share the parent's clock, so their
                # capsules merge with anchor=None (no skew to correct).
                # Start/end come back to the scheduling thread, which
                # does all profiler accounting — the Profiler is
                # single-threaded by design (see telemetry.profiler).
                name = threading.current_thread().name
                start = clock() if timed else 0.0
                if capsule_request is None or not capsule_request.any:
                    report = check(
                        query, budget, tracer=NULL_TRACER, reduction=reduction
                    )
                    return report, None, name, start, (clock() if timed else 0.0)
                collector = CapsuleCollector(
                    capsule_request, clock=clock, worker=name
                )
                report = check(
                    query,
                    budget,
                    tracer=collector.tracer,
                    progress=collector.progress,
                    progress_interval=self.progress_interval,
                    reduction=reduction,
                    profiler=collector.profiler,
                )
                collector.observe_report(report)
                return report, collector.capsule(), name, start, clock()

            submit_args = [
                (
                    run_in_thread,
                    entries[index].query,
                    budget_for(index),
                    reduction_for(index),
                    request_for(index),
                )
                for index in leaders
            ]
        else:  # pragma: no cover - modes are validated upstream
            raise ValueError(f"unknown parallel mode {mode!r}")
        submit_time = clock() if timed else 0.0
        done_at = [0.0] * len(leaders)
        with executor_cls(max_workers=workers) as executor:
            futures = [executor.submit(fn, *args) for fn, *args in submit_args]
            if timed and mode == "process":
                # Workers are separate processes; the scheduling thread can
                # only observe each future's submit-to-done wall time.  The
                # done timestamp is captured by callback (runs off-thread,
                # writes one float slot); it anchors capsule clock-skew
                # normalization and queue-wait attribution, both done here
                # afterwards.
                for position, future in enumerate(futures):
                    future.add_done_callback(
                        lambda _future, position=position: done_at.__setitem__(
                            position, clock()
                        )
                    )
            try:
                results = [future.result() for future in futures]
            except concurrent.futures.process.BrokenProcessPool as error:
                # A worker died (OOM kill, segfault-equivalent, SIGKILL).
                # The executor has already torn the pool down; surface a
                # diagnostic naming the batch instead of the bare broken-
                # pool error, so the caller knows which searches were in
                # flight and how to retry them.
                names = ", ".join(
                    entries[index].query.name or "?" for index in leaders
                )
                raise RuntimeError(
                    f"ROSA process-pool worker crashed while answering "
                    f"{len(leaders)} quer{'y' if len(leaders) == 1 else 'ies'} "
                    f"({names}); no results were lost silently — rerun with "
                    f"--jobs 1 (serial) to isolate the failing search"
                ) from error
        reports = []
        for position, (index, result) in enumerate(zip(leaders, results)):
            query = entries[index].query
            capsule = None
            started = ended = None
            if mode == "process":
                if isinstance(result, tuple):
                    outcome, capsule = result
                else:
                    outcome = result
                report = dataclasses.replace(
                    outcome.to_report(query), from_cache=False
                )
            else:
                report, capsule, raw_name, started, ended = result
            # Stable worker identity: capsule workers carry their raw
            # name (pid:N or pool thread name); bare thread mode uses the
            # thread name directly.  Either way the session-persistent
            # map yields worker:N ids (MainThread and friends included).
            if capsule is not None:
                worker = normalize_worker(capsule.worker, self._worker_ids)
            elif mode == "thread" and timed:
                worker = normalize_worker(raw_name, self._worker_ids)
            else:
                worker = None
            # Scheduling attribution.  Process mode can only observe
            # submit-to-done from outside; a capsule's own execute window
            # splits that into queue_wait + execute.  Thread mode has the
            # worker-side start/end directly.
            execute = queue_wait = 0.0
            if mode == "process" and timed:
                inflight = max(done_at[position] - submit_time, 0.0)
                if capsule is not None:
                    execute = min(capsule.execute_seconds, inflight)
                    queue_wait = inflight - execute
                elif profiler is not None:
                    profiler.account(
                        ("engine", "worker:pool", "inflight"), inflight
                    )
            elif mode == "thread" and timed:
                queue_wait = max(started - submit_time, 0.0)
                execute = max(ended - started, 0.0)
            if profiler is not None and worker is not None:
                profiler.account(("engine", worker, "queue_wait"), queue_wait)
                profiler.account(("engine", worker, "execute"), execute)
            merged = False
            if capsule is not None:
                anchor = (
                    done_at[position] if (mode == "process" and timed) else None
                )
                merged = merge_capsule(
                    capsule,
                    worker=worker,
                    tracer=tracer if self.telemetry.active else None,
                    metrics=metrics,
                    profiler=profiler,
                    audit=self.telemetry.audit,
                    anchor=anchor,
                )
            if merged:
                if capsule.samples and not report.stats.samples:
                    # Process-mode reports cross the pool as bare
                    # outcomes; rebuild the worker's sampled progress
                    # tail (thread reports keep their own samples).
                    report.stats.samples.extend(
                        ProgressSample(**sample) for sample in capsule.samples
                    )
                self._record_fleet(
                    worker, capsule, report, queue_wait, execute, mode
                )
            if not (merged and capsule.spans):
                # No adopted worker spans to show for this search (capsules
                # off, schema skew, or tracing disabled in the worker):
                # record the synthetic span here so batched runs stay
                # observable (verdict + cost attributes).
                with tracer.span(
                    "rosa.query", query=query.name, parallel=mode
                ) as span:
                    span.set_attribute("verdict", report.verdict.value)
                    span.set_attribute("states_seen", report.states_seen)
                    span.set_attribute("states_explored", report.states_explored)
                    span.set_attribute("peak_frontier", report.stats.peak_frontier)
            reports.append(report)
        return reports

    # -- maintenance -----------------------------------------------------------

    def save_cache(self) -> bool:
        """Persist the cache now (no-op without a cache path)."""
        return self.cache.save() if self.cache is not None else False

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss counters for reports and benchmarks."""
        if self.cache is None:
            stats = {
                "enabled": False, "hits": 0, "misses": 0, "hit_rate": 0.0, "entries": 0,
            }
        else:
            stats = {
                "enabled": True,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
                "entries": len(self.cache),
            }
        if self.store is not None and hasattr(self.store, "stats"):
            stats["store"] = self.store.stats()
        return stats
