"""Human-readable witness explanations.

A ✓ verdict is only actionable if the developer understands the attack.
The paper walks its Figure 2 witness by hand (chown, then chmod, then
open — §V-B); this module automates that narration: given a report from
``check(query, track_states=True)``, it renders each step as the syscall
consumed plus the observable state changes it caused.
"""

from __future__ import annotations

from typing import List

from repro.rewriting import Configuration, Msg, Obj
from repro.rosa import model
from repro.rosa.query import RosaReport, Verdict


def _consumed_message(before: Configuration, after: Configuration) -> Msg:
    for message in before.messages():
        if after.count(message) < before.count(message):
            return message
    raise ValueError("no message was consumed between these states")


def _object_changes(before: Configuration, after: Configuration) -> List[str]:
    changes: List[str] = []
    before_ids = {obj.oid: obj for obj in before.objects()}
    after_ids = {obj.oid: obj for obj in after.objects()}
    for oid, old in before_ids.items():
        new = after_ids.get(oid)
        if new is None:
            changes.append(f"{_describe(old)} removed")
            continue
        if new == old:
            continue
        for attr, old_value in sorted(old.attrs.items()):
            new_value = new.attrs.get(attr)
            if new_value == old_value:
                continue
            if attr in ("rdfset", "wrfset"):
                gained = sorted(new_value - old_value)
                if gained:
                    changes.append(
                        f"{_describe(new)} now holds {attr.replace('fset', '')} "
                        f"access to object(s) {', '.join(map(str, gained))}"
                    )
                continue
            if attr == "perms":
                changes.append(
                    f"{_describe(new)} perms {oct(old_value)} -> {oct(new_value)}"
                )
                continue
            changes.append(f"{_describe(new)} {attr}: {old_value} -> {new_value}")
    for oid, new in after_ids.items():
        if oid not in before_ids:
            changes.append(f"{_describe(new)} created")
    return changes


def _describe(obj: Obj) -> str:
    if obj.cls == model.PROCESS:
        return f"process {obj.oid}"
    name = obj.get("name")
    if name:
        return f"{obj.cls.lower()} {obj.oid} ({name})"
    return f"{obj.cls.lower()} {obj.oid}"


def _render_message(message: Msg) -> str:
    from repro.rosa.dsl import _Parser

    shape = _Parser._MESSAGE_SHAPES.get(message.name, ())
    args = []
    for index, arg in enumerate(message.args):
        kind = shape[index] if index < len(shape) else "caps"
        if isinstance(arg, frozenset):
            caps = ",".join(str(cap) for cap in sorted(arg, key=str))
            args.append(f"[{caps or 'no privileges'}]")
        elif kind == "perms":
            args.append(oct(arg))
        else:
            args.append(str(arg))
    return f"{message.name}({', '.join(args)})"


def explain_witness(report: RosaReport) -> str:
    """A step-by-step narration of a vulnerable report's witness.

    Requires the report to have been produced with
    ``check(query, track_states=True)``.
    """
    if report.verdict is not Verdict.VULNERABLE:
        return f"{report.query.name}: {report.verdict.value} — no witness to explain."
    if len(report.witness_states) != len(report.witness) + 1:
        raise ValueError(
            "witness states missing; run check(query, track_states=True)"
        )
    lines = [
        f"Attack witness for {report.query.name} "
        f"({len(report.witness)} syscalls):"
    ]
    for index, label in enumerate(report.witness):
        before = report.witness_states[index]
        after = report.witness_states[index + 1]
        message = _consumed_message(before, after)
        lines.append(f"  step {index + 1}: {_render_message(message)}")
        for change in _object_changes(before, after):
            lines.append(f"          -> {change}")
    lines.append("  compromised state reached.")
    return "\n".join(lines)
