"""Compromised-state patterns.

A ROSA query searches for a reachable configuration matching a
*compromised system state* (§V).  The paper's Figure 4 expresses such a
pattern as a Maude term with don't-care variables plus a ``such that``
condition; in our engine a goal is a predicate over configurations.  This
module provides the patterns the paper's four modeled attacks use, plus
combinators for writing new ones.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.rewriting import Configuration
from repro.rosa import independence, model
from repro.rosa.independence import GoalFootprint

Goal = Callable[[Configuration], bool]


def _with_footprint(goal: Goal, footprint: Optional[GoalFootprint]) -> Goal:
    """Attach the reduction footprint (see :mod:`repro.rosa.independence`).

    The footprint states what the predicate reads — so partial-order
    reduction knows which messages are *visible* — and which concrete
    ids it mentions — so symmetry reduction pins them.  A goal without a
    footprint simply runs unreduced.
    """
    goal.footprint = footprint
    return goal


def file_opened_for_read(fid: int, pid: Optional[int] = None) -> Goal:
    """Some process (or process ``pid``) has file ``fid`` in its rdfset.

    This is the paper's Figure 4 pattern: ``3 in G:Set{Int}`` over the
    process's read set.
    """

    def goal(config: Configuration) -> bool:
        for proc in config.objects(model.PROCESS):
            if pid is not None and proc.oid != pid:
                continue
            if fid in proc["rdfset"]:
                return True
        return False

    oids = frozenset({fid} if pid is None else {fid, pid})
    return _with_footprint(
        goal, GoalFootprint(reads=frozenset({independence.PROC_FDS}), oids=oids)
    )


def file_opened_for_write(fid: int, pid: Optional[int] = None) -> Goal:
    """Some process (or process ``pid``) has file ``fid`` in its wrfset."""

    def goal(config: Configuration) -> bool:
        for proc in config.objects(model.PROCESS):
            if pid is not None and proc.oid != pid:
                continue
            if fid in proc["wrfset"]:
                return True
        return False

    oids = frozenset({fid} if pid is None else {fid, pid})
    return _with_footprint(
        goal, GoalFootprint(reads=frozenset({independence.PROC_FDS}), oids=oids)
    )


def socket_bound_to_privileged_port(
    pid: Optional[int] = None, bound: int = model.PRIVILEGED_PORT_BOUND
) -> Goal:
    """A socket (optionally owned by ``pid``) is bound to a port below ``bound``."""

    def goal(config: Configuration) -> bool:
        for sock in config.objects(model.SOCKET):
            if pid is not None and sock["owner_pid"] != pid:
                continue
            if 0 < sock["port"] < bound:
                return True
        return False

    return _with_footprint(
        goal,
        GoalFootprint(
            reads=frozenset({independence.POP_SOCK, independence.SOCK_PORT}),
            oids=frozenset() if pid is None else frozenset({pid}),
        ),
    )


def process_terminated(pid: int) -> Goal:
    """Process ``pid`` has been killed."""

    def goal(config: Configuration) -> bool:
        proc = config.find_object(pid)
        return proc is not None and proc["state"] == model.STATE_DEAD

    return _with_footprint(
        goal,
        GoalFootprint(
            reads=frozenset({independence.PROC_STATE}), oids=frozenset({pid})
        ),
    )


def file_owner_is(fid: int, owner: int) -> Goal:
    """File ``fid`` has been chowned to ``owner``."""

    def goal(config: Configuration) -> bool:
        target = config.find_object(fid)
        return target is not None and target["owner"] == owner

    return _with_footprint(
        goal,
        GoalFootprint(
            reads=frozenset({independence.FILE_OWNER, independence.POP_FILE}),
            oids=frozenset({fid}),
            uids=frozenset({owner}),
        ),
    )


def entry_removed(entry_id: int) -> Goal:
    """Directory entry ``entry_id`` no longer exists (unlinked)."""

    def goal(config: Configuration) -> bool:
        return config.find_object(entry_id) is None

    # The predicate tests bare oid existence, so any object creation
    # could in principle re-occupy the id: read every population token.
    return _with_footprint(
        goal,
        GoalFootprint(
            reads=frozenset(
                {
                    independence.DIRS,
                    independence.POP_FILE,
                    independence.POP_SOCK,
                    independence.OID_MAX,
                }
            ),
            oids=frozenset({entry_id}),
        ),
    )


def any_of(*goals: Goal) -> Goal:
    """Disjunction of goals."""

    def goal(config: Configuration) -> bool:
        return any(sub(config) for sub in goals)

    return _with_footprint(goal, independence.combined_footprint(goals))


def all_of(*goals: Goal) -> Goal:
    """Conjunction of goals."""

    def goal(config: Configuration) -> bool:
        return all(sub(config) for sub in goals)

    return _with_footprint(goal, independence.combined_footprint(goals))
