"""Compromised-state patterns.

A ROSA query searches for a reachable configuration matching a
*compromised system state* (§V).  The paper's Figure 4 expresses such a
pattern as a Maude term with don't-care variables plus a ``such that``
condition; in our engine a goal is a predicate over configurations.  This
module provides the patterns the paper's four modeled attacks use, plus
combinators for writing new ones.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.rewriting import Configuration
from repro.rosa import model

Goal = Callable[[Configuration], bool]


def file_opened_for_read(fid: int, pid: Optional[int] = None) -> Goal:
    """Some process (or process ``pid``) has file ``fid`` in its rdfset.

    This is the paper's Figure 4 pattern: ``3 in G:Set{Int}`` over the
    process's read set.
    """

    def goal(config: Configuration) -> bool:
        for proc in config.objects(model.PROCESS):
            if pid is not None and proc.oid != pid:
                continue
            if fid in proc["rdfset"]:
                return True
        return False

    return goal


def file_opened_for_write(fid: int, pid: Optional[int] = None) -> Goal:
    """Some process (or process ``pid``) has file ``fid`` in its wrfset."""

    def goal(config: Configuration) -> bool:
        for proc in config.objects(model.PROCESS):
            if pid is not None and proc.oid != pid:
                continue
            if fid in proc["wrfset"]:
                return True
        return False

    return goal


def socket_bound_to_privileged_port(
    pid: Optional[int] = None, bound: int = model.PRIVILEGED_PORT_BOUND
) -> Goal:
    """A socket (optionally owned by ``pid``) is bound to a port below ``bound``."""

    def goal(config: Configuration) -> bool:
        for sock in config.objects(model.SOCKET):
            if pid is not None and sock["owner_pid"] != pid:
                continue
            if 0 < sock["port"] < bound:
                return True
        return False

    return goal


def process_terminated(pid: int) -> Goal:
    """Process ``pid`` has been killed."""

    def goal(config: Configuration) -> bool:
        proc = config.find_object(pid)
        return proc is not None and proc["state"] == model.STATE_DEAD

    return goal


def file_owner_is(fid: int, owner: int) -> Goal:
    """File ``fid`` has been chowned to ``owner``."""

    def goal(config: Configuration) -> bool:
        target = config.find_object(fid)
        return target is not None and target["owner"] == owner

    return goal


def entry_removed(entry_id: int) -> Goal:
    """Directory entry ``entry_id`` no longer exists (unlinked)."""

    def goal(config: Configuration) -> bool:
        return config.find_object(entry_id) is None

    return goal


def any_of(*goals: Goal) -> Goal:
    """Disjunction of goals."""

    def goal(config: Configuration) -> bool:
        return any(sub(config) for sub in goals)

    return goal


def all_of(*goals: Goal) -> Goal:
    """Conjunction of goals."""

    def goal(config: Configuration) -> bool:
        return all(sub(config) for sub in goals)

    return goal
