"""Independence and symmetry declarations for ROSA syscall messages.

This module is the domain knowledge behind
:mod:`repro.rewriting.reduction` for the UNIX rule module:

* **Resource tokens** — every syscall message kind declares the coarse
  attribute-level tokens its rule reads (for enabledness and effect)
  and writes (:data:`MESSAGE_FOOTPRINTS`).  Two pending messages are
  independent when neither writes a token the other touches — they then
  commute: executing them in either order reaches the same state, and
  neither can enable or disable the other.

* **Identifier schema** — which object attributes and message arguments
  hold uids, gids, or object ids (:data:`CLASS_SCHEMAS`,
  :data:`MESSAGE_ARG_DOMAINS`).  Symmetry canonicalization renames the
  *anonymous* ids (those named neither by the goal nor by a concrete
  message argument) to canonical labels, collapsing states that differ
  only by such a renaming.  This is sound because the UNIX rules are
  rename-equivariant: :mod:`repro.rosa.permissions` compares ids only
  for equality (there is no uid-0 special case — root's power flows
  entirely through capabilities), and wildcard domains are sets that
  map through any renaming.

* **Goal footprints** — :class:`GoalFootprint` records what a goal
  predicate reads (for partial-order visibility) and which concrete ids
  it mentions (which must stay pinned under symmetry).  Goals without a
  footprint disable reduction for their query.

:func:`build_reducer` assembles these into a :class:`RosaReducer`, the
object :func:`repro.rosa.query.check` installs between the search and
the rule system.  Reduction preserves reachability verdicts: symmetry
merges are exact by construction, and ample sets satisfy the classic
conditions (the message commutes with every other pending message, is
invisible to the goal, and the state space is acyclic because every
rule consumes one message and none create any).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.rewriting import Configuration, MessageRule, Msg, Obj, ObjectSystem, SearchBudget
from repro.rewriting.reduction import (
    Footprint,
    LazyCanonicalKey,
    ReductionStats,
    blind_signature,
    canonical_key,
    footprint,
    typed_fset,
    typed_id,
)
from repro.rosa import model

# Identifier domains.
OID = "oid"
UID = "uid"
GID = "gid"

#: Object-class attribute schema: which attributes hold ids of which
#: domain.  Attributes not listed are plain values (names, perms,
#: states, ports — never renamed).  ``("fset", domain)`` marks a
#: frozenset of ids.
CLASS_SCHEMAS: Dict[str, Dict[str, object]] = {
    model.PROCESS: {
        "euid": UID, "ruid": UID, "suid": UID,
        "egid": GID, "rgid": GID, "sgid": GID,
        "supplementary": ("fset", GID),
        "rdfset": ("fset", OID),
        "wrfset": ("fset", OID),
    },
    model.FILE: {"owner": UID, "group": GID},
    model.DIR: {"owner": UID, "group": GID, "inode": OID},
    model.SOCKET: {"owner_pid": OID},
    model.USER: {"uid": UID},
    model.GROUP: {"gid": GID},
    model.PORT: {},
}

#: Message argument domains, by message name, in argument order.  ``None``
#: marks a plain argument (modes, perms, signals, names, ports, caps).
MESSAGE_ARG_DOMAINS: Dict[str, Tuple[Optional[str], ...]] = {
    "open": (OID, OID, None, None),
    "setuid": (OID, UID, None),
    "seteuid": (OID, UID, None),
    "setresuid": (OID, UID, UID, UID, None),
    "setgid": (OID, GID, None),
    "setegid": (OID, GID, None),
    "setresgid": (OID, GID, GID, GID, None),
    "setgroups": (OID, GID, None),
    "kill": (OID, OID, None, None),
    "chmod": (OID, OID, None, None),
    "fchmod": (OID, OID, None, None),
    "chown": (OID, OID, UID, GID, None),
    "fchown": (OID, OID, UID, GID, None),
    "unlink": (OID, OID, None),
    "creat": (OID, OID, None, None, None),
    "link": (OID, OID, OID, None, None),
    "rename": (OID, OID, None, None),
    "socket": (OID, None),
    "bind": (OID, OID, None, None),
    "connect": (OID, OID, None, None),
}

# Resource tokens (see the per-rule derivations below).  Coarse on
# purpose: a token covers one attribute family across *all* objects, so
# declared footprints safely over-approximate per-object ones.
PROC_STATE = "proc.state"
PROC_UIDS = "proc.uids"
PROC_GIDS = "proc.gids"
PROC_FDS = "proc.fds"
FILE_PERMS = "file.perms"
FILE_OWNER = "file.owner"  # owner and group bits together
DIRS = "dirs"  # directory-entry existence and attributes
POP_FILE = "pop.file"  # the File object population
POP_SOCK = "pop.sock"  # the Socket object population
SOCK_PORT = "sock.port"
OID_MAX = "oid.max"  # the fresh-oid counter (read+written by creators)

#: Read/write footprints of each syscall rule, derived from
#: :mod:`repro.rosa.rules`.  Every rule reads ``proc.state`` (the
#: dead-process check).  Reads include everything enabledness depends
#: on — permission inputs, wildcard candidate populations, skip-guard
#: comparisons — because partial-order reduction needs "m2 cannot
#: enable, disable, or alter m" exactly as much as effect disjointness.
MESSAGE_FOOTPRINTS: Dict[str, Footprint] = {
    "open": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, FILE_PERMS, FILE_OWNER, DIRS, POP_FILE},
        writes={PROC_FDS},
    ),
    "setuid": footprint(reads={PROC_STATE, PROC_UIDS}, writes={PROC_UIDS}),
    "seteuid": footprint(reads={PROC_STATE, PROC_UIDS}, writes={PROC_UIDS}),
    "setresuid": footprint(reads={PROC_STATE, PROC_UIDS}, writes={PROC_UIDS}),
    "setgid": footprint(reads={PROC_STATE, PROC_GIDS}, writes={PROC_GIDS}),
    "setegid": footprint(reads={PROC_STATE, PROC_GIDS}, writes={PROC_GIDS}),
    "setresgid": footprint(reads={PROC_STATE, PROC_GIDS}, writes={PROC_GIDS}),
    "setgroups": footprint(reads={PROC_STATE, PROC_GIDS}, writes={PROC_GIDS}),
    "kill": footprint(reads={PROC_STATE, PROC_UIDS}, writes={PROC_STATE}),
    "chmod": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, FILE_OWNER, FILE_PERMS, DIRS, POP_FILE},
        writes={FILE_PERMS},
    ),
    "fchmod": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_FDS, FILE_OWNER, FILE_PERMS, POP_FILE},
        writes={FILE_PERMS},
    ),
    "chown": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, FILE_OWNER, DIRS, POP_FILE},
        writes={FILE_OWNER},
    ),
    "fchown": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, FILE_OWNER, PROC_FDS, POP_FILE},
        writes={FILE_OWNER},
    ),
    "unlink": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, DIRS, POP_FILE, FILE_OWNER, FILE_PERMS},
        writes={DIRS, OID_MAX},
    ),
    "creat": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, DIRS, OID_MAX},
        writes={POP_FILE, DIRS, OID_MAX},
    ),
    "link": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, POP_FILE, DIRS, OID_MAX},
        writes={DIRS, OID_MAX},
    ),
    "rename": footprint(
        reads={PROC_STATE, PROC_UIDS, PROC_GIDS, DIRS, POP_FILE, FILE_OWNER, FILE_PERMS},
        writes={DIRS},
    ),
    "socket": footprint(reads={PROC_STATE, OID_MAX}, writes={POP_SOCK, OID_MAX}),
    "bind": footprint(reads={PROC_STATE, POP_SOCK, SOCK_PORT}, writes={SOCK_PORT}),
    "connect": footprint(reads={PROC_STATE, POP_SOCK}, writes=frozenset()),
}


@dataclasses.dataclass(frozen=True)
class GoalFootprint:
    """What a goal predicate depends on.

    ``reads`` are the resource tokens the predicate inspects — a message
    whose writes intersect them is *visible* and can never be deferred
    by partial-order reduction.  ``oids``/``uids``/``gids`` are the
    concrete identifiers the predicate mentions; symmetry must pin them
    (a renamed key that moved a goal-referenced id could merge a goal
    state with a non-goal state).
    """

    reads: FrozenSet[str]
    oids: FrozenSet[int] = frozenset()
    uids: FrozenSet[int] = frozenset()
    gids: FrozenSet[int] = frozenset()

    def union(self, other: "GoalFootprint") -> "GoalFootprint":
        return GoalFootprint(
            reads=self.reads | other.reads,
            oids=self.oids | other.oids,
            uids=self.uids | other.uids,
            gids=self.gids | other.gids,
        )


def combined_footprint(goals: Iterable) -> Optional[GoalFootprint]:
    """The union footprint of several goals; None if any goal lacks one."""
    merged: Optional[GoalFootprint] = None
    for goal in goals:
        fp = getattr(goal, "footprint", None)
        if not isinstance(fp, GoalFootprint):
            return None
        merged = fp if merged is None else merged.union(fp)
    return merged


def _typed_value(value, domain):
    if domain is None:
        if isinstance(value, frozenset):
            return ("frozenset",) + tuple(sorted(value, key=repr))
        if isinstance(value, tuple):
            return ("tuple",) + tuple(_typed_value(item, None) for item in value)
        return value
    if isinstance(domain, tuple):  # ("fset", inner-domain)
        inner = domain[1]
        return typed_fset(_typed_value(item, inner) for item in value)
    # Only non-negative ints are identifiers; the wildcard sentinel (-1)
    # and the KEEP sentinel ("keep") pass through untouched.
    if isinstance(value, int) and not isinstance(value, bool) and value >= 0:
        return typed_id(domain, value)
    return value


def _typed_obj_key(obj: Obj) -> Tuple:
    schema = CLASS_SCHEMAS[obj.cls]
    attrs = tuple(
        (name, _typed_value(obj.attrs[name], schema.get(name)))
        for name in sorted(obj.attrs)
    )
    return ("obj", obj.cls, typed_id(OID, obj.oid), attrs)


def _typed_msg_key(msg: Msg) -> Tuple:
    domains = MESSAGE_ARG_DOMAINS[msg.name]
    args = tuple(
        _typed_value(value, domain) for value, domain in zip(msg.args, domains)
    )
    return ("msg", msg.name, args)


#: Below this estimated raw state-space size, reduction costs more than
#: it can possibly save: the reducer's setup (inert classification) plus
#: per-state canonicalization overwhelm a search that finishes in a few
#: dozen states either way.  The query engine downgrades such searches
#: to the raw space (see :meth:`repro.rosa.engine.QueryEngine.check`);
#: direct :func:`repro.rosa.query.check` calls are never downgraded —
#: baselines, differential oracles and reduction tests rely on the flag
#: meaning exactly what it says.
REDUCTION_MIN_SPACE = 256


def estimated_space(initial: Configuration, cap: int = 1 << 20) -> int:
    """A cheap upper bound on the reachable state-space size.

    Every UNIX rule consumes one pending message and creates none, so
    each reachable state is the initial objects rewritten by some
    sub-multiset of the initial messages: the space is bounded by
    ``prod(count + 1)`` over the pending message multiset.  The product
    is clamped at ``cap`` — callers only compare it against small
    thresholds, and unclamped it grows combinatorially.
    """
    bound = 1
    for element, count in initial._counts.items():
        if isinstance(element, Msg):
            bound *= count + 1
            if bound >= cap:
                return cap
    return bound


#: Messages that write the uid triple family (``proc.uids``); no other
#: message kind can change any process's uids.
_UID_FAMILY = frozenset({"setuid", "seteuid", "setresuid"})
#: Messages that write the gid family (``proc.gids``); the only writers.
_GID_FAMILY = frozenset({"setgid", "setegid", "setresgid", "setgroups"})


class RosaReducer:
    """Symmetry-canonical visited keys plus ample-set successor filtering.

    Built per query by :func:`build_reducer`; :meth:`canonical` replaces
    the search's visited-set key extractor and :meth:`successors`
    replaces the rule system's successor function.  ``stats`` accumulates
    the reduction counters the report and telemetry surface.
    """

    def __init__(
        self,
        system: ObjectSystem,
        goal_footprint: GoalFootprint,
        pinned: Dict[str, FrozenSet],
        por: bool,
        initial: Optional[Configuration] = None,
    ) -> None:
        self.system = system
        self.goal_reads = goal_footprint.reads
        self.pinned = pinned
        self.por = por
        self.stats = ReductionStats()
        #: Typed keys are cached per element: Obj/Msg instances are shared
        #: across the many configurations a search builds, so the cache
        #: hit rate approaches 1 after the first few states.
        self._typed: Dict[object, Tuple] = {}
        #: canonical body -> incremental hash of the first raw state seen
        #: with it; a second raw hash under the same body is a symmetry
        #: merge (metrics only — correctness never consults this).
        self._first_raw: Dict[Tuple, int] = {}
        #: raw configuration -> visited-set key.  BFS canonicalizes every
        #: successor *edge*; distinct edges frequently produce the same
        #: raw configuration, and Configuration hashes in O(1) via its
        #: incremental hash, so keying finished answers by the raw state
        #: skips re-deriving the key on repeats — and, because equal raw
        #: configurations share one :class:`LazyCanonicalKey` instance,
        #: most set probes short-circuit on identity.
        self._canon: Dict[Configuration, Hashable] = {}
        #: Cross-state canonicalization memo shared by every
        #: :func:`canonical_key` call of this search (see its docstring).
        self._memo: Dict = {}
        #: Rules by the message name they consume, in rule order.
        self._rules_by_name: Dict[str, List[MessageRule]] = {}
        for rule in system.rules:
            if isinstance(rule, MessageRule) and rule.message_name:
                self._rules_by_name.setdefault(rule.message_name, []).append(rule)
        #: Pending message -> forever-inert verdict (see
        #: :meth:`_classify_inert`); filled from the first configuration
        #: :meth:`_ample` sees (the search's initial state) unless one
        #: was provided up front.  Messages never spawn during search, so
        #: the initial pending set covers every reachable state.
        self._inert: Optional[Dict[Msg, bool]] = None
        #: Cached deterministic sort keys for pending-message ordering.
        self._sort_keys: Dict[Msg, str] = {}
        if initial is not None:
            self._classify_inert(initial)

    # -- symmetry ---------------------------------------------------------------

    def _typed_key(self, element) -> Tuple:
        cached = self._typed.get(element)
        if cached is None:
            if isinstance(element, Obj):
                cached = _typed_obj_key(element)
            else:
                cached = _typed_msg_key(element)
            self._typed[element] = cached
        return cached

    def canonical(self, config: Configuration) -> Hashable:
        cached = self._canon.get(config)
        if cached is not None:
            return cached
        key = self._canonical_uncached(config)
        self._canon[config] = key
        return key

    def _canonical_uncached(self, config: Configuration) -> Hashable:
        typed_elements = [
            (self._typed_key(element), count)
            for element, count in config._counts.items()
        ]
        blind, has_anon = blind_signature(typed_elements, self.pinned, self._memo)
        if not has_anon:
            # Fast path: no anonymous ids, the configuration is its own
            # canonical representative.
            return config
        # Lazy slow path: the key hashes by the O(1)-combinable blinded
        # signature; colour refinement runs only if the visited set sees
        # a hash collision and probes equality (see LazyCanonicalKey).
        return LazyCanonicalKey(config, blind, self._canonical_body)

    def _canonical_body(self, config: Configuration) -> Tuple:
        """Full colour-refinement canonical form; collision path only."""
        typed_elements = [
            (self._typed_key(element), count)
            for element, count in config._counts.items()
        ]
        body = canonical_key(typed_elements, self.pinned, memo=self._memo)
        # ``body`` cannot be None here: lazy keys are built only for
        # states with anonymous ids.
        self.stats.canonicalized += 1
        raw = self._first_raw.setdefault(body, config._ihash)
        if raw != config._ihash:
            self.stats.symmetry_hits += 1
        return body

    # -- partial order ----------------------------------------------------------

    def successors(self, config: Configuration) -> Iterator[Tuple[str, Configuration]]:
        if self.por:
            ample = self._ample(config)
            if ample is not None:
                return iter(ample)
        return self.system.successors(config)

    def _classify_inert(self, initial: Configuration) -> Dict[Msg, bool]:
        """Which pending messages are *forever inert*: pure consumes always.

        A message is forever inert when, at every reachable state, each
        of its transitions is a pure consume — the result is exactly the
        state minus one occurrence of the message.  Such a message
        commutes with everything (consuming it first reaches ``s ∖ {m}``
        with every object untouched, and no rule reads the message
        multiset of other kinds), is invisible to goals (goals read only
        objects), and the space is acyclic (every rule consumes a
        message), so its transitions form a sound ample set.

        Classification is per message value, from the initial state:

        * ``connect`` and non-SIGKILL ``kill`` are pure consumes by rule
          construction, at any state;
        * the uid family is inert when *every* pending uid-family
          message yields only pure consumes at the initial state.  Those
          messages are the only writers of any process's uid triple and
          their enabledness reads only uids plus the capability set
          frozen inside the message args — so if none of them can move a
          uid at the start, no reachable state ever differs in uids and
          the initial classification holds everywhere;
        * the gid family is frozen analogously (sole writers of gid
          triples and supplementary groups, enabledness on gids + frozen
          caps).

        Messages with zero transitions at the initial state classify as
        pure vacuously — under a frozen family they stay disabled
        forever, so they neither write nor ever lead an ample set (ample
        selection requires an enabled transition).
        """
        purity: Dict[Msg, bool] = {}
        pending = list(initial.messages())
        for msg in pending:
            expected = None
            pure = True
            for rule in self._rules_by_name.get(msg.name, ()):
                for result in rule.rewrites_for_message(initial, msg):
                    if expected is None:
                        expected = initial.consume(msg)
                    if result != expected:
                        pure = False
                        break
                if not pure:
                    break
            purity[msg] = pure
        uid_frozen = all(
            purity[msg] for msg in pending if msg.name in _UID_FAMILY
        )
        gid_frozen = all(
            purity[msg] for msg in pending if msg.name in _GID_FAMILY
        )
        inert: Dict[Msg, bool] = {}
        for msg in pending:
            if msg.name == "connect":
                inert[msg] = True
            elif msg.name == "kill" and msg.args[2] != model.SIGKILL:
                inert[msg] = True
            elif msg.name in _UID_FAMILY:
                inert[msg] = uid_frozen
            elif msg.name in _GID_FAMILY:
                inert[msg] = gid_frozen
            else:
                inert[msg] = False
        self._inert = inert
        return inert

    def _sort_key(self, msg: Msg) -> str:
        key = self._sort_keys.get(msg)
        if key is None:
            key = repr(msg.key)
            self._sort_keys[msg] = key
        return key

    def _ample(self, config: Configuration) -> Optional[List[Tuple[str, Configuration]]]:
        pending = sorted(config.messages(), key=self._sort_key)
        if len(pending) < 2:
            return None
        inert = self._inert
        if inert is None:
            # Lazily classify from the first multi-message state the
            # search expands — that is the initial configuration, whose
            # pending set covers every reachable state's.
            inert = self._classify_inert(config)
        for msg in pending:
            if not inert.get(msg, False):
                continue
            # Forever-inert message: its transitions are the ample set.
            # Defense in depth — verify the pure-consume invariant holds
            # at *this* state before relying on it; fall through to the
            # footprint path on any mismatch (costs reduction, never
            # soundness).
            transitions = []
            expected = None
            still_pure = True
            for rule in self._rules_by_name.get(msg.name, ()):
                for result in rule.rewrites_for_message(config, msg):
                    if expected is None:
                        expected = config.consume(msg)
                    if result != expected:
                        still_pure = False
                        break
                    transitions.append((rule.label, result))
                if not still_pure:
                    break
            if still_pure and transitions:
                self.stats.ample_states += 1
                self.stats.por_pruned += len(pending) - 1
                return transitions
        for msg in pending:
            fp = MESSAGE_FOOTPRINTS.get(msg.name)
            if fp is None:
                continue
            # Visible messages (their writes reach what the goal reads)
            # can flip the goal and must never be deferred — nor lead an
            # ample set, since deferral happens to everything else.
            if fp.writes & self.goal_reads:
                continue
            compatible = True
            for other in pending:
                if other is msg:
                    # Further occurrences of the same message (repeat >= 2)
                    # need no self-independence: a persistent set only has
                    # to commute with *non-ample* actions, and consuming
                    # another instance of this very message IS the ample
                    # action — any path that executes it has already taken
                    # an ample transition.
                    continue
                other_fp = MESSAGE_FOOTPRINTS.get(other.name)
                if other_fp is None or not fp.independent(other_fp):
                    compatible = False
                    break
            if not compatible:
                continue
            transitions: List[Tuple[str, Configuration]] = []
            for rule in self._rules_by_name.get(msg.name, ()):
                for result in rule.rewrites_for_message(config, msg):
                    transitions.append((rule.label, result))
            if transitions:
                self.stats.ample_states += 1
                self.stats.por_pruned += len(pending) - 1
                return transitions
        return None


def build_reducer(
    initial: Configuration,
    goal,
    system: ObjectSystem,
    budget: SearchBudget,
) -> Optional[RosaReducer]:
    """A reducer for this query, or None when reduction cannot apply.

    Reduction is declined (returning None, the caller falls back to the
    unreduced search) when:

    * the goal carries no :class:`GoalFootprint` — visibility and
      pinning would be guesses;
    * the rule system is not the stock UNIX module (the schemas and
      footprints here describe exactly those rules);
    * the initial configuration holds a message or object class outside
      the schema — an unmarked id occurrence would break renaming.

    ``budget.max_depth`` does not decline the reducer but switches
    partial-order reduction off: a partial-order-reduced witness can be
    *longer* than the shortest one (deferred messages commute to after
    the ample message), so depth-bounded verdicts could differ.
    Symmetry stays on — isomorphic states sit at the same depths, so
    merging them never changes a depth-bounded verdict.
    """
    goal_fp = getattr(goal, "footprint", None)
    if not isinstance(goal_fp, GoalFootprint):
        return None
    if system.signature != _unix_signature():
        return None
    for name in initial.message_names():
        if name not in MESSAGE_ARG_DOMAINS or name not in MESSAGE_FOOTPRINTS:
            return None
    for obj in initial.objects():
        if obj.cls not in CLASS_SCHEMAS:
            return None
    # Distinguished ids: everything the goal or a concrete message
    # argument names.  All other ids — including ids of initial objects
    # nothing refers to, like the User/Group objects bounding wildcard
    # domains — are anonymous and fair game for renaming (rules compare
    # them only for equality, so renamed states are bisimilar).  Message
    # arguments never grow during search (no rule creates messages), so
    # the pinned sets computed here stay complete for every reachable
    # state.
    pinned_oids = set(goal_fp.oids)
    pinned_uids = set(goal_fp.uids)
    pinned_gids = set(goal_fp.gids)
    by_domain = {OID: pinned_oids, UID: pinned_uids, GID: pinned_gids}
    for msg in initial.messages():
        for value, domain in zip(msg.args, MESSAGE_ARG_DOMAINS[msg.name]):
            if domain is not None and isinstance(value, int) and value >= 0:
                by_domain[domain].add(value)
    pinned = {
        OID: frozenset(pinned_oids),
        UID: frozenset(pinned_uids),
        GID: frozenset(pinned_gids),
    }
    por = budget.max_depth is None
    return RosaReducer(system, goal_fp, pinned, por, initial=initial)


_UNIX_SIGNATURE = None


def _unix_signature():
    global _UNIX_SIGNATURE
    if _UNIX_SIGNATURE is None:
        from repro.rosa.rules import unix_rules

        _UNIX_SIGNATURE = ObjectSystem("UNIX", unix_rules()).signature
    return _UNIX_SIGNATURE
