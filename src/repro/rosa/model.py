"""ROSA's Linux object model.

ROSA (Rewrite of Objects for Syscall Analysis) models a Linux system as a
configuration of objects (§V-B):

* **Process** — one Linux task, carrying effective/real/saved uid and gid,
  a supplementary group list, a run state, and the sets of object ids it
  has opened for reading (``rdfset``) and writing (``wrfset``);
* **File** — owner, group, permission bits and a human-readable name;
* **Dir** — a directory *entry*: like a file object plus an ``inode``
  attribute naming the file object the entry refers to (pathname lookup is
  modelled on a single parent directory, as in the paper);
* **Socket** — a TCP socket with a port (0 while unbound) and the pid of
  its creating process;
* **User** / **Group** — the uid/gid values that may replace wildcard
  arguments, constraining the search space.

Messages represent system calls; see :mod:`repro.rosa.syscalls`.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.rewriting import Configuration, Obj

# Object class names.
PROCESS = "Process"
FILE = "File"
DIR = "Dir"
SOCKET = "Socket"
USER = "User"
GROUP = "Group"
PORT = "Port"

# Process run states.
STATE_RUN = "run"
STATE_DEAD = "dead"

#: Signal number of SIGKILL, the only signal whose delivery we model as
#: fatal (the paper's attack 4 sends SIGKILL to sshd).
SIGKILL = 9

#: Ports below this bound require CAP_NET_BIND_SERVICE to bind.
PRIVILEGED_PORT_BOUND = 1024


def process(
    oid: int,
    *,
    euid: int,
    ruid: int,
    suid: int,
    egid: int,
    rgid: int,
    sgid: int,
    supplementary: Iterable[int] = (),
    state: str = STATE_RUN,
    rdfset: Iterable[int] = (),
    wrfset: Iterable[int] = (),
) -> Obj:
    """Build a Process object.

    Mirrors the paper's Figure 2 ``< 1 : Process | euid : 10, ... >``.
    """
    return Obj(
        oid,
        PROCESS,
        euid=euid,
        ruid=ruid,
        suid=suid,
        egid=egid,
        rgid=rgid,
        sgid=sgid,
        supplementary=frozenset(supplementary),
        state=state,
        rdfset=frozenset(rdfset),
        wrfset=frozenset(wrfset),
    )


def process_for_user(oid: int, uid: int, gid: int, **overrides) -> Obj:
    """A process whose six ids are all ``uid``/``gid`` (a plain login shell)."""
    fields = dict(
        euid=uid, ruid=uid, suid=uid, egid=gid, rgid=gid, sgid=gid
    )
    fields.update(overrides)
    return process(oid, **fields)


def file_obj(oid: int, *, name: str, owner: int, group: int, perms: int) -> Obj:
    """Build a File object.  ``perms`` is a Unix mode, e.g. ``0o640``."""
    _check_perms(perms)
    return Obj(oid, FILE, name=name, owner=owner, group=group, perms=perms)


def dir_entry(
    oid: int, *, name: str, owner: int, group: int, perms: int, inode: int
) -> Obj:
    """Build a Dir (directory entry) object pointing at file ``inode``."""
    _check_perms(perms)
    return Obj(oid, DIR, name=name, owner=owner, group=group, perms=perms, inode=inode)


def socket_obj(oid: int, *, owner_pid: int, port: int = 0) -> Obj:
    """Build a Socket object; ``port`` 0 means unbound."""
    return Obj(oid, SOCKET, owner_pid=owner_pid, port=port)


def user(oid: int, uid: int) -> Obj:
    """A User object: one uid wildcards may take (paper Figure 2 ``< 4 : User | uid : 10 >``)."""
    return Obj(oid, USER, uid=uid)


def group(oid: int, gid: int) -> Obj:
    """A Group object: one gid wildcards may take."""
    return Obj(oid, GROUP, gid=gid)


def port_obj(oid: int, port: int) -> Obj:
    """A Port object: one TCP port number wildcards may take."""
    return Obj(oid, PORT, port=port)


def _check_perms(perms: int) -> None:
    if not 0 <= perms <= 0o7777:
        raise ValueError(f"perms must be a Unix mode in [0, 0o7777]: {oct(perms)}")


# -- domain extraction (wildcard candidate values) ---------------------------


def candidate_uids(config: Configuration) -> frozenset:
    """All uids a wildcard uid argument may take, from User objects."""
    return frozenset(obj["uid"] for obj in config.objects(USER))


def candidate_gids(config: Configuration) -> frozenset:
    """All gids a wildcard gid argument may take, from Group objects."""
    return frozenset(obj["gid"] for obj in config.objects(GROUP))


def candidate_files(config: Configuration) -> frozenset:
    """All file object ids a wildcard file argument may take."""
    return frozenset(obj.oid for obj in config.objects(FILE))


def candidate_dirs(config: Configuration) -> frozenset:
    """All directory-entry object ids a wildcard argument may take."""
    return frozenset(obj.oid for obj in config.objects(DIR))


def candidate_processes(config: Configuration) -> frozenset:
    """All process ids a wildcard pid argument may take."""
    return frozenset(obj.oid for obj in config.objects(PROCESS))


#: Default wildcard port domain when the configuration has no Port objects:
#: one privileged and one unprivileged port.
DEFAULT_PORTS = frozenset({22, 8080})


def candidate_ports(config: Configuration) -> frozenset:
    """All ports a wildcard port argument may take."""
    ports = frozenset(obj["port"] for obj in config.objects(PORT))
    return ports or DEFAULT_PORTS


def fresh_oid(config: Configuration) -> int:
    """A deterministic object id not used by any object in ``config``."""
    highest = 0
    for obj in config.objects():
        highest = max(highest, obj.oid)
    return highest + 1


def parent_entries(config: Configuration, fid: int) -> list:
    """Directory entries whose inode refers to file ``fid``.

    Several entries may refer to the same file (hard links); pathname
    lookup succeeds if any reachable entry grants search permission.
    """
    return [entry for entry in config.objects(DIR) if entry["inode"] == fid]


def find_process(config: Configuration, pid: int) -> Optional[Obj]:
    """The Process object with id ``pid``, or None."""
    obj = config.find_object(pid)
    if obj is not None and obj.cls == PROCESS:
        return obj
    return None
