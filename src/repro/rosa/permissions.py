"""Discretionary access control checks with capability overrides.

This module centralises the Linux permission rules that ROSA's syscall
rewrite rules consult.  The rules come from path_resolution(7),
capabilities(7) and credentials(7):

* DAC class selection is *exclusive*: if the effective uid owns the
  object, only the owner bits apply (a mode like ``0o077`` locks the owner
  out even though "other" could read);
* ``CAP_DAC_OVERRIDE`` bypasses read, write and search checks;
* ``CAP_DAC_READ_SEARCH`` bypasses read checks on files and read/search
  checks on directories (but never write checks);
* ``CAP_FOWNER`` bypasses the "must own the file" check of ``chmod``;
* ``CAP_CHOWN`` allows arbitrary owner/group changes;
* ``CAP_KILL`` bypasses the signal-delivery uid check;
* ``CAP_NET_BIND_SERVICE`` allows binding ports below 1024;
* ``CAP_SETUID``/``CAP_SETGID`` allow arbitrary id changes, while
  unprivileged processes may only permute their current ids.

The functions take the capability set *granted to the specific system
call* (ROSA attaches privileges to messages, not processes — §V-B) so
attacks that use a privilege with only certain syscalls can be modelled.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.caps import Capability
from repro.rewriting import Obj

# Permission bit masks within a class.
READ_BIT = 0o4
WRITE_BIT = 0o2
EXEC_BIT = 0o1


def _class_bits(obj: Obj, euid: int, groups: FrozenSet[int]) -> int:
    """The 3-bit rwx class that applies to ``euid``/``groups`` for ``obj``."""
    perms = obj["perms"]
    if euid == obj["owner"]:
        return (perms >> 6) & 0o7
    if obj["group"] in groups:
        return (perms >> 3) & 0o7
    return perms & 0o7


def _process_groups(proc: Obj) -> FrozenSet[int]:
    return proc["supplementary"] | {proc["egid"]}


def may_read(proc: Obj, target: Obj, caps: FrozenSet[Capability]) -> bool:
    """May the process read ``target`` (a File or Dir object)?"""
    if Capability.CAP_DAC_OVERRIDE in caps:
        return True
    if Capability.CAP_DAC_READ_SEARCH in caps:
        return True
    return bool(_class_bits(target, proc["euid"], _process_groups(proc)) & READ_BIT)


def may_write(proc: Obj, target: Obj, caps: FrozenSet[Capability]) -> bool:
    """May the process write ``target``?

    ``CAP_DAC_READ_SEARCH`` deliberately does *not* grant write access —
    the distinction drives several verdicts in the paper's Table III.
    """
    if Capability.CAP_DAC_OVERRIDE in caps:
        return True
    return bool(_class_bits(target, proc["euid"], _process_groups(proc)) & WRITE_BIT)


def may_search(proc: Obj, directory: Obj, caps: FrozenSet[Capability]) -> bool:
    """May the process traverse (search) ``directory`` during lookup?"""
    if Capability.CAP_DAC_OVERRIDE in caps:
        return True
    if Capability.CAP_DAC_READ_SEARCH in caps:
        return True
    return bool(_class_bits(directory, proc["euid"], _process_groups(proc)) & EXEC_BIT)


def lookup_permits(config_entries, proc: Obj, caps: FrozenSet[Capability]) -> bool:
    """Pathname lookup: may the process reach a file via its parent entries?

    ROSA models lookup on a single parent directory (§V-B).  If the file
    has no directory entry in the configuration, lookup is unconstrained
    (the model simply did not include a parent).  With entries present,
    any searchable entry suffices (hard links).
    """
    entries = list(config_entries)
    if not entries:
        return True
    return any(may_search(proc, entry, caps) for entry in entries)


#: The restricted-deletion (sticky) bit, as on /tmp.
STICKY_BIT = 0o1000


def sticky_permits_removal(
    proc: Obj,
    entry: Obj,
    target_file: "Obj | None",
    caps: FrozenSet[Capability],
) -> bool:
    """The sticky-bit rule for unlink/rename (unlink(2)).

    In a restricted-deletion directory, write permission is not enough:
    the remover must own the directory or the file itself, or hold
    ``CAP_FOWNER``.
    """
    if not entry["perms"] & STICKY_BIT:
        return True
    if Capability.CAP_FOWNER in caps:
        return True
    if proc["euid"] == entry["owner"]:
        return True
    return target_file is not None and proc["euid"] == target_file["owner"]


def may_chmod(proc: Obj, target: Obj, caps: FrozenSet[Capability]) -> bool:
    """``chmod`` requires file ownership or ``CAP_FOWNER``."""
    if Capability.CAP_FOWNER in caps:
        return True
    return proc["euid"] == target["owner"]


def may_chown(
    proc: Obj,
    target: Obj,
    new_owner: int,
    new_group: int,
    caps: FrozenSet[Capability],
) -> bool:
    """``chown`` permission rule.

    With ``CAP_CHOWN`` anything goes.  Without it, Linux only permits the
    owner of a file to change the file's *group*, and only to a group the
    process belongs to; the owner may never be changed.
    """
    if Capability.CAP_CHOWN in caps:
        return True
    if new_owner != target["owner"]:
        return False
    if proc["euid"] != target["owner"]:
        return False
    return new_group == target["group"] or new_group in _process_groups(proc)


def may_signal(sender: Obj, victim: Obj, caps: FrozenSet[Capability]) -> bool:
    """May ``sender`` deliver a signal to ``victim``?

    kill(2): the sender needs ``CAP_KILL`` or its real or effective uid
    must equal the victim's real or saved uid.
    """
    if Capability.CAP_KILL in caps:
        return True
    sender_ids = {sender["euid"], sender["ruid"]}
    victim_ids = {victim["ruid"], victim["suid"]}
    return bool(sender_ids & victim_ids)


def may_set_uid(proc: Obj, uid: int, caps: FrozenSet[Capability]) -> bool:
    """May one uid slot be set to ``uid``?

    With ``CAP_SETUID`` any value is allowed; otherwise only the current
    real, effective or saved uid (setresuid(2)).
    """
    if Capability.CAP_SETUID in caps:
        return True
    return uid in (proc["ruid"], proc["euid"], proc["suid"])


def may_set_gid(proc: Obj, gid: int, caps: FrozenSet[Capability]) -> bool:
    """The group analogue of :func:`may_set_uid` (``CAP_SETGID``)."""
    if Capability.CAP_SETGID in caps:
        return True
    return gid in (proc["rgid"], proc["egid"], proc["sgid"])


def may_bind(port: int, caps: FrozenSet[Capability], privileged_bound: int = 1024) -> bool:
    """May a socket be bound to ``port``?"""
    if port <= 0:
        return False
    if port < privileged_bound:
        return Capability.CAP_NET_BIND_SERVICE in caps
    return True
