"""Per-rule and per-reduction-phase cost attribution for ROSA search.

:class:`ProfiledSearch` wraps the three callables
:func:`repro.rewriting.breadth_first_search` already takes — successor
function, canonical-key extractor, goal predicate — with timed versions
that attribute every expansion's wall time to named frames under the
``rosa.search`` root:

``rule:<label>``
    Enumerating one rule's rewrites at one state.  ``attempts`` counts
    states where the rule was tried, ``applications`` the configurations
    it yielded.  The enumeration replicates
    :meth:`repro.rewriting.ObjectSystem.successors` element for element
    (same trigger index, same rule order), so the successor stream the
    search consumes is identical to the unprofiled one.
``reduction.ample``
    Partial-order ample-set computation (:meth:`RosaReducer._ample`).
    ``selected`` counts states where an ample set fired and every other
    pending message was deferred; at repro scale this stays 0 because
    every pending syscall message writes tokens the goal reads.
``reduction.canonical.cache_hit`` / ``.fast_path`` / ``.canonicalize``
    The symmetry layer's three outcomes: raw-configuration cache hit,
    no-anonymous-ids fast path (the key *is* the configuration), and
    lazy-key construction (the O(state) blinded signature).  The full
    colour refinement is collision-triggered — it runs inside the
    visited set's equality probes — so its wall time lands in
    ``search.loop``; :meth:`ProfiledSearch.finish` surfaces its volume
    as the ``resolved`` (bodies computed) and ``merges``
    (``symmetry_hits``) counters on the canonicalize frame.
``hash.incremental``
    Hashing the visited-set key — O(1) by construction (configurations
    carry an incremental multiset hash), and the profile proves it.
``goal``
    Goal-predicate evaluations (``hits`` counts true answers).
``search.loop``
    The derived remainder: BFS bookkeeping (frontier, visited set,
    budget checks) computed as elapsed minus everything measured above,
    so the root's attribution always covers 100% of search wall time
    while the measured fraction stays honest in the counters
    (``derived`` marks the bucket as computed, not timed).

Wrapping the injectable callables — instead of forking the search loop —
is what keeps profiler-on and profiler-off verdicts bit-identical: the
search itself never changes, and parity tests in
``tests/test_rosa_profile.py`` hold it to that.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.rewriting import Configuration, ObjectSystem
from repro.telemetry.profiler import Profiler

#: The root frame every search-phase record nests under.
SEARCH_ROOT = "rosa.search"

_AMPLE = (SEARCH_ROOT, "reduction.ample")
_CACHE_HIT = (SEARCH_ROOT, "reduction.canonical.cache_hit")
_FAST_PATH = (SEARCH_ROOT, "reduction.canonical.fast_path")
_CANONICALIZE = (SEARCH_ROOT, "reduction.canonical.canonicalize")
_HASH = (SEARCH_ROOT, "hash.incremental")
_GOAL = (SEARCH_ROOT, "goal")
_LOOP = (SEARCH_ROOT, "search.loop")


class ProfiledSearch:
    """Profiled successor/canonical/goal wrappers for one search.

    Build one per :func:`repro.rosa.query.check` call, hand its bound
    methods to ``breadth_first_search``, then call :meth:`finish` with
    the search's elapsed wall time to account the root and the derived
    remainder bucket.
    """

    def __init__(
        self,
        profiler: Profiler,
        system: ObjectSystem,
        reducer,  # Optional[RosaReducer]; untyped to avoid a cycle
        goal: Callable[[Configuration], bool],
    ) -> None:
        self.profiler = profiler
        self.system = system
        self.reducer = reducer
        self.goal_fn = goal
        #: Wall seconds attributed to named frames so far; finish() turns
        #: the gap to the search's elapsed time into ``search.loop``.
        self.measured = 0.0

    def _account(self, stack: Tuple[str, ...], seconds: float) -> None:
        self.profiler.account(stack, seconds)
        self.measured += seconds

    # -- the three injected callables -----------------------------------------

    def successors(self, config: Configuration) -> List[Tuple[str, Configuration]]:
        profiler = self.profiler
        clock = profiler.clock
        reducer = self.reducer
        if reducer is not None and reducer.por:
            start = clock()
            ample = reducer._ample(config)
            self._account(_AMPLE, clock() - start)
            if ample is not None:
                profiler.count(_AMPLE, "selected")
                profiler.count(_AMPLE, "applications", len(ample))
                return ample
        # Replicate ObjectSystem.successors (trigger index, rule order)
        # with the per-rule enumeration materialised so each timed window
        # covers exactly one rule's rewrites — a generator would charge
        # the consumer's work between yields to the rule.
        out: List[Tuple[str, Configuration]] = []
        system = self.system
        if system.indexed:
            present = config.message_names()
            pairs = system._triggers
        else:
            present = None
            pairs = tuple((rule, None) for rule in system.rules)
        for rule, trigger in pairs:
            if trigger is not None and trigger not in present:
                continue
            start = clock()
            results = list(rule.rewrites(config))
            self._account((SEARCH_ROOT, "rule:" + rule.label), clock() - start)
            profiler.count((SEARCH_ROOT, "rule:" + rule.label), "attempts")
            if results:
                profiler.count(
                    (SEARCH_ROOT, "rule:" + rule.label), "applications", len(results)
                )
                for result in results:
                    out.append((rule.label, result))
        return out

    def canonical(self, config: Configuration):
        clock = self.profiler.clock
        reducer = self.reducer
        if reducer is None:
            # Unreduced searches key the visited set by the configuration
            # itself; time the (incremental, O(1)) hash the set will take.
            start = clock()
            hash(config)
            self._account(_HASH, clock() - start)
            return config
        start = clock()
        if config in reducer._canon:
            key = reducer.canonical(config)
            self._account(_CACHE_HIT, clock() - start)
        else:
            key = reducer.canonical(config)
            elapsed = clock() - start
            if key is config:
                self._account(_FAST_PATH, elapsed)
            else:
                # Lazy-key construction: the blinded signature only.  The
                # colour refinement itself now runs inside the visited
                # set's equality probes (hash collisions), which land in
                # the search.loop remainder; finish() surfaces its volume
                # via the ``resolved``/``merges`` counters.
                self._account(_CANONICALIZE, elapsed)
        start = clock()
        hash(key)
        self._account(_HASH, clock() - start)
        return key

    def goal(self, config: Configuration) -> bool:
        clock = self.profiler.clock
        start = clock()
        hit = self.goal_fn(config)
        self._account(_GOAL, clock() - start)
        if hit:
            self.profiler.count(_GOAL, "hits")
        return hit

    # -- closing the books -----------------------------------------------------

    def finish(self, elapsed: float) -> None:
        """Account the search root and the derived bookkeeping remainder.

        ``elapsed`` is the search's wall time on the profiler's clock.
        The remainder (elapsed minus all measured frames) is the BFS
        loop's own bookkeeping; accounting it under a named frame keeps
        the root 100% attributed without pretending it was timed —
        the ``derived`` counter marks it as computed.
        """
        profiler = self.profiler
        profiler.account((SEARCH_ROOT,), elapsed)
        remainder = elapsed - self.measured
        if remainder > 0.0:
            profiler.account(_LOOP, remainder)
            profiler.count(_LOOP, "derived")
        reducer = self.reducer
        if reducer is not None:
            # Colour refinement is collision-triggered under lazy keys and
            # runs inside set equality probes; report its totals here.
            if reducer.stats.canonicalized:
                profiler.count(
                    _CANONICALIZE, "resolved", reducer.stats.canonicalized
                )
            if reducer.stats.symmetry_hits:
                profiler.count(
                    _CANONICALIZE, "merges", reducer.stats.symmetry_hits
                )


def profiled_callables(
    profiler: Optional[Profiler],
    system: ObjectSystem,
    reducer,
    goal: Callable[[Configuration], bool],
) -> Optional[ProfiledSearch]:
    """A :class:`ProfiledSearch` when profiling is live, else ``None``."""
    if profiler is None or not profiler.enabled:
        return None
    return ProfiledSearch(profiler, system, reducer, goal)
