"""ROSA queries: bounded search for a compromised state.

A query bundles an initial configuration (objects plus the syscall
messages the attacker may consume) with a compromised-state goal.
:func:`check` runs the bounded breadth-first search and classifies the
outcome into the paper's three verdicts:

* ✓ **VULNERABLE** — a compromised state is reachable; the result carries
  the witness syscall sequence (the paper walks such a witness for the
  /etc/passwd example in §V-B);
* ✗ **INVULNERABLE** — the whole reachable space was searched and no
  compromised state exists;
* ⊙ **TIMEOUT** — a budget ran out first (the paper's 5-hour limit and
  out-of-memory kills, §VII-D / §VIII).
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Optional

from repro.rewriting import (
    Configuration,
    ObjectSystem,
    SearchBudget,
    SearchOutcome,
    SearchResult,
    breadth_first_search,
)
from repro.rosa.goals import Goal
from repro.rosa.rules import unix_rules


class Verdict(enum.Enum):
    """ROSA's answer about one (attack, privilege set, credentials) triple."""

    VULNERABLE = "vulnerable"
    INVULNERABLE = "invulnerable"
    TIMEOUT = "timeout"

    @property
    def symbol(self) -> str:
        """The paper's table glyphs: ✓ / ✗ / ⊙."""
        return {"vulnerable": "✓", "invulnerable": "✗", "timeout": "⊙"}[self.value]


#: The default UNIX rewrite system (all 17 syscall rules).
def unix_system() -> ObjectSystem:
    """The UNIX module: every syscall rule from :mod:`repro.rosa.rules`."""
    return ObjectSystem("UNIX", unix_rules())


@dataclasses.dataclass
class RosaQuery:
    """One bounded-model-checking question."""

    name: str
    initial: Configuration
    goal: Goal
    description: str = ""
    #: Optionally restrict the rule set (defaults to the full UNIX module).
    system: Optional[ObjectSystem] = None


@dataclasses.dataclass
class RosaReport:
    """The verdict plus the evidence behind it."""

    query: RosaQuery
    verdict: Verdict
    #: Rule labels of the witness path when vulnerable (attack recipe).
    witness: List[str]
    #: The compromised configuration, when found.
    compromised_state: Optional[Configuration]
    states_explored: int
    states_seen: int
    elapsed: float
    #: With ``check(..., track_states=True)``: every configuration along
    #: the witness, initial state first.  Empty otherwise.
    witness_states: List[Configuration] = dataclasses.field(default_factory=list)

    @property
    def vulnerable(self) -> bool:
        return self.verdict is Verdict.VULNERABLE

    def summary(self) -> str:
        """One-line human-readable summary."""
        head = f"{self.query.name}: {self.verdict.symbol} {self.verdict.value}"
        if self.verdict is Verdict.VULNERABLE and self.witness:
            head += " via " + " -> ".join(self.witness)
        return head + f" ({self.states_seen} states, {self.elapsed * 1000:.1f} ms)"


#: Budget mirroring the paper's setup, scaled to our smaller state spaces.
DEFAULT_BUDGET = SearchBudget(max_states=500_000, max_depth=None, max_seconds=300.0)


def check(
    query: RosaQuery,
    budget: SearchBudget = DEFAULT_BUDGET,
    track_states: bool = False,
) -> RosaReport:
    """Run one bounded model-checking query and classify the outcome.

    With ``track_states`` the report carries every configuration along
    the witness path, enabling :func:`repro.rosa.explain.explain_witness`.
    """
    system = query.system or unix_system()
    result: SearchResult = breadth_first_search(
        query.initial,
        system.successors,
        query.goal,
        budget=budget,
        canonical=lambda config: config.key,
        track_states=track_states,
    )
    if result.outcome is SearchOutcome.FOUND:
        verdict = Verdict.VULNERABLE
    elif result.outcome is SearchOutcome.EXHAUSTED:
        verdict = Verdict.INVULNERABLE
    else:
        verdict = Verdict.TIMEOUT
    return RosaReport(
        query=query,
        verdict=verdict,
        witness=result.path,
        compromised_state=result.state,
        states_explored=result.states_explored,
        states_seen=result.states_seen,
        elapsed=result.elapsed,
        witness_states=result.path_states,
    )
