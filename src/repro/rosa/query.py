"""ROSA queries: bounded search for a compromised state.

A query bundles an initial configuration (objects plus the syscall
messages the attacker may consume) with a compromised-state goal.
:func:`check` runs the bounded breadth-first search and classifies the
outcome into the paper's three verdicts:

* ✓ **VULNERABLE** — a compromised state is reachable; the result carries
  the witness syscall sequence (the paper walks such a witness for the
  /etc/passwd example in §V-B);
* ✗ **INVULNERABLE** — the whole reachable space was searched and no
  compromised state exists;
* ⊙ **TIMEOUT** — a budget ran out first (the paper's 5-hour limit and
  out-of-memory kills, §VII-D / §VIII).
"""

from __future__ import annotations

import dataclasses
import enum
import logging
import time
from typing import Callable, Hashable, List, Optional

from repro.rewriting import (
    Configuration,
    ObjectSystem,
    PROGRESS_INTERVAL,
    ProgressSample,
    SearchBudget,
    SearchOutcome,
    SearchResult,
    SearchStats,
    breadth_first_search,
)
from repro.rosa.goals import Goal
from repro.rosa.independence import build_reducer
from repro.rosa.rules import unix_rules
from repro.telemetry.profiler import Profiler
from repro.telemetry.tracing import NULL_TRACER, Tracer

logger = logging.getLogger("repro.rosa")


class Verdict(enum.Enum):
    """ROSA's answer about one (attack, privilege set, credentials) triple."""

    VULNERABLE = "vulnerable"
    INVULNERABLE = "invulnerable"
    TIMEOUT = "timeout"

    @property
    def symbol(self) -> str:
        """The paper's table glyphs: ✓ / ✗ / ⊙."""
        return {"vulnerable": "✓", "invulnerable": "✗", "timeout": "⊙"}[self.value]


#: The default UNIX rewrite system (all 17 syscall rules).
def unix_system() -> ObjectSystem:
    """The UNIX module: every syscall rule from :mod:`repro.rosa.rules`."""
    return ObjectSystem("UNIX", unix_rules())


@dataclasses.dataclass
class RosaQuery:
    """One bounded-model-checking question."""

    name: str
    initial: Configuration
    goal: Goal
    description: str = ""
    #: Optionally restrict the rule set (defaults to the full UNIX module).
    system: Optional[ObjectSystem] = None
    #: Stable identity of ``goal`` for result caching.  Builders that know
    #: what the goal means (e.g. attacks) set this; when ``None`` the query
    #: engine derives an identity from the goal closure's structure.
    goal_key: Optional[Hashable] = None


@dataclasses.dataclass
class RosaReport:
    """The verdict plus the evidence behind it."""

    query: RosaQuery
    verdict: Verdict
    #: Rule labels of the witness path when vulnerable (attack recipe).
    witness: List[str]
    #: The compromised configuration, when found.
    compromised_state: Optional[Configuration]
    states_explored: int
    states_seen: int
    elapsed: float
    #: With ``check(..., track_states=True)``: every configuration along
    #: the witness, initial state first.  Empty otherwise.
    witness_states: List[Configuration] = dataclasses.field(default_factory=list)
    #: Search cost accounting (peak frontier, dedup hits, progress samples).
    stats: SearchStats = dataclasses.field(default_factory=SearchStats)
    #: True when the query engine served this report from its result cache
    #: instead of searching (see :mod:`repro.rosa.engine`).
    from_cache: bool = False

    @property
    def vulnerable(self) -> bool:
        return self.verdict is Verdict.VULNERABLE

    def summary(self) -> str:
        """One-line human-readable summary."""
        head = f"{self.query.name}: {self.verdict.symbol} {self.verdict.value}"
        if self.verdict is Verdict.VULNERABLE and self.witness:
            head += " via " + " -> ".join(self.witness)
        return head + f" ({self.states_seen} states, {self.elapsed * 1000:.1f} ms)"

    def cost_line(self) -> str:
        """The search's cost, for ✗/⊙ verdicts that would otherwise hide it."""
        return (
            f"search cost: {self.states_explored} states explored, "
            f"{self.states_seen} seen, peak frontier {self.stats.peak_frontier}, "
            f"{self.stats.dedup_hits} dedup hits, depth {self.stats.max_depth}, "
            f"{self.elapsed * 1000:.1f} ms"
        )


#: Budget mirroring the paper's setup, scaled to our smaller state spaces.
DEFAULT_BUDGET = SearchBudget(max_states=500_000, max_depth=None, max_seconds=300.0)


def check(
    query: RosaQuery,
    budget: SearchBudget = DEFAULT_BUDGET,
    track_states: bool = False,
    tracer: Tracer = NULL_TRACER,
    progress: Optional[Callable[[ProgressSample], None]] = None,
    progress_interval: int = PROGRESS_INTERVAL,
    clock: Callable[[], float] = time.monotonic,
    reduction: bool = True,
    profiler: Optional[Profiler] = None,
) -> RosaReport:
    """Run one bounded model-checking query and classify the outcome.

    With ``track_states`` the report carries every configuration along
    the witness path, enabling :func:`repro.rosa.explain.explain_witness`.
    ``tracer`` wraps the search in a ``rosa.query`` span; ``progress``
    receives periodic :class:`~repro.rewriting.ProgressSample` readings
    so long-running searches (the paper's 5-hour budgets) are observable
    while they run.

    ``reduction`` enables symmetry + partial-order state-space reduction
    (:mod:`repro.rosa.independence`) when the query is eligible — the
    goal declares a footprint and the system is the stock UNIX module.
    Reduction preserves the verdict and witness existence; pass
    ``reduction=False`` to search the raw state space (baselines,
    differential testing).

    ``profiler``, when live, attributes the search's wall time to named
    rules and reduction phases (:mod:`repro.rosa.profile`) by wrapping
    the three injectable callables — the search loop itself is
    unchanged, so the verdict and every cost counter are bit-identical
    with or without it.
    """
    system = query.system or unix_system()
    reducer = (
        build_reducer(query.initial, query.goal, system, budget)
        if reduction
        else None
    )
    goal = query.goal
    if reducer is not None:
        successors = reducer.successors
        canonical = reducer.canonical
    else:
        successors = system.successors
        # Configurations hash incrementally (see rewriting.objects), so
        # the state itself is its visited-set key — no full-key
        # materialisation per successor.
        canonical = lambda config: config  # noqa: E731
    profiled = None
    if profiler is not None and profiler.enabled:
        from repro.rosa.profile import profiled_callables

        profiled = profiled_callables(profiler, system, reducer, query.goal)
        successors = profiled.successors
        canonical = profiled.canonical
        goal = profiled.goal
    with tracer.span("rosa.query", query=query.name) as span:
        search_start = profiler.clock() if profiled is not None else 0.0
        result: SearchResult = breadth_first_search(
            query.initial,
            successors,
            goal,
            budget=budget,
            canonical=canonical,
            track_states=track_states,
            progress=progress,
            progress_interval=progress_interval,
            clock=clock,
        )
        if profiled is not None:
            profiled.finish(profiler.clock() - search_start)
        if reducer is not None:
            result.stats.symmetry_hits = reducer.stats.symmetry_hits
            result.stats.por_pruned = reducer.stats.por_pruned
        if result.outcome is SearchOutcome.FOUND:
            verdict = Verdict.VULNERABLE
        elif result.outcome is SearchOutcome.EXHAUSTED:
            verdict = Verdict.INVULNERABLE
        else:
            verdict = Verdict.TIMEOUT
        span.set_attribute("verdict", verdict.value)
        span.set_attribute("states_seen", result.states_seen)
        span.set_attribute("states_explored", result.states_explored)
        span.set_attribute("peak_frontier", result.stats.peak_frontier)
        span.set_attribute("reduction", reducer is not None)
        if reducer is not None:
            span.set_attribute("symmetry_hits", reducer.stats.symmetry_hits)
            span.set_attribute("por_pruned", reducer.stats.por_pruned)
    logger.debug(
        "query %s: %s (%d states, %.1f ms)",
        query.name, verdict.value, result.states_seen, result.elapsed * 1000,
    )
    return RosaReport(
        query=query,
        verdict=verdict,
        witness=result.path,
        compromised_state=result.state,
        states_explored=result.states_explored,
        states_seen=result.states_seen,
        elapsed=result.elapsed,
        witness_states=result.path_states,
        stats=result.stats,
    )
