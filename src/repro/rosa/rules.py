"""Rewrite rules: how consuming a syscall message changes the system.

Each rule follows the Object Maude idiom the paper describes (§V-B): a
Process object consumes one pending message; if the Linux permission rules
(with the message's privilege set) allow the call, the rule yields the
rewritten configuration.  A call whose permission check fails simply never
fires — the message stays pending, modelling an attacker who would not
bother issuing a call that must fail.

Wildcard arguments (:data:`~repro.rosa.syscalls.WILDCARD`) are expanded
during matching over the candidate domains carried by the configuration's
User/Group/Port objects and by the object population itself, exactly as
Maude would enumerate matches of an unbound variable against the object
multiset.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.rewriting import Configuration, MessageRule, Msg, Obj
from repro.rosa import model, permissions
from repro.rosa.syscalls import KEEP, O_RDONLY, O_RDWR, O_WRONLY, WILDCARD


def _expand(value, domain: Iterable) -> List:
    """Expand a wildcard argument over ``domain`` (sorted for determinism)."""
    if value == WILDCARD:
        return sorted(domain)
    return [value]


class SyscallRule(MessageRule):
    """Base class: resolves the calling process and skips dead ones."""

    def rewrites_for_message(
        self, config: Configuration, message: Msg
    ) -> Iterator[Configuration]:
        pid = message.args[0]
        proc = model.find_process(config, pid)
        if proc is None or proc["state"] != model.STATE_RUN:
            return
        yield from self.fire(config, message, proc)

    def fire(
        self, config: Configuration, message: Msg, proc: Obj
    ) -> Iterator[Configuration]:
        raise NotImplementedError


class OpenRule(SyscallRule):
    """``open(pid, fid, mode, privs)`` — DAC check plus pathname lookup."""

    label = "open"
    message_name = "open"

    def fire(self, config, message, proc):
        _, fid_arg, mode, privs = message.args
        for fid in _expand(fid_arg, model.candidate_files(config)):
            target = config.find_object(fid)
            if target is None or target.cls != model.FILE:
                continue
            entries = model.parent_entries(config, fid)
            if not permissions.lookup_permits(entries, proc, privs):
                continue
            want_read = mode in (O_RDONLY, O_RDWR)
            want_write = mode in (O_WRONLY, O_RDWR)
            if want_read and not permissions.may_read(proc, target, privs):
                continue
            if want_write and not permissions.may_write(proc, target, privs):
                continue
            rdfset = proc["rdfset"] | {fid} if want_read else proc["rdfset"]
            wrfset = proc["wrfset"] | {fid} if want_write else proc["wrfset"]
            yield config.consume(message, proc.update(rdfset=rdfset, wrfset=wrfset))


class SetuidRule(SyscallRule):
    """``setuid(pid, uid, privs)``.

    setuid(2): with CAP_SETUID all three uids become ``uid``; without it,
    ``uid`` must be the current real or saved uid and only the effective
    uid changes.
    """

    label = "setuid"
    message_name = "setuid"

    def fire(self, config, message, proc):
        from repro.caps import Capability

        _, uid_arg, privs = message.args
        domain = model.candidate_uids(config)
        for uid in _expand(uid_arg, domain):
            if Capability.CAP_SETUID in privs:
                yield config.consume(
                    message, proc.update(ruid=uid, euid=uid, suid=uid)
                )
            elif uid in (proc["ruid"], proc["suid"]):
                yield config.consume(message, proc.update(euid=uid))


class SeteuidRule(SyscallRule):
    """``seteuid(pid, uid, privs)`` — change the effective uid only."""

    label = "seteuid"
    message_name = "seteuid"

    def fire(self, config, message, proc):
        from repro.caps import Capability

        _, uid_arg, privs = message.args
        for uid in _expand(uid_arg, model.candidate_uids(config)):
            allowed = Capability.CAP_SETUID in privs or uid in (
                proc["ruid"],
                proc["suid"],
            )
            if allowed:
                yield config.consume(message, proc.update(euid=uid))


class SetresuidRule(SyscallRule):
    """``setresuid(pid, ruid, euid, suid, privs)``.

    Each id may be :data:`KEEP` (kernel's −1), a concrete uid, or a
    wildcard.  Unprivileged processes may only assign values drawn from
    their current real/effective/saved uids (setresuid(2)).
    """

    label = "setresuid"
    message_name = "setresuid"

    def fire(self, config, message, proc):
        _, r_arg, e_arg, s_arg, privs = message.args
        domain = model.candidate_uids(config)
        for new_r in _expand(r_arg, domain):
            for new_e in _expand(e_arg, domain):
                for new_s in _expand(s_arg, domain):
                    values = dict(ruid=new_r, euid=new_e, suid=new_s)
                    updates = {}
                    allowed = True
                    for field, value in values.items():
                        if value == KEEP:
                            continue
                        if not permissions.may_set_uid(proc, value, privs):
                            allowed = False
                            break
                        updates[field] = value
                    if allowed and updates:
                        yield config.consume(message, proc.update(**updates))


class SetgidRule(SyscallRule):
    """``setgid(pid, gid, privs)`` — the group analogue of setuid."""

    label = "setgid"
    message_name = "setgid"

    def fire(self, config, message, proc):
        from repro.caps import Capability

        _, gid_arg, privs = message.args
        for gid in _expand(gid_arg, model.candidate_gids(config)):
            if Capability.CAP_SETGID in privs:
                yield config.consume(
                    message, proc.update(rgid=gid, egid=gid, sgid=gid)
                )
            elif gid in (proc["rgid"], proc["sgid"]):
                yield config.consume(message, proc.update(egid=gid))


class SetegidRule(SyscallRule):
    """``setegid(pid, gid, privs)`` — change the effective gid only."""

    label = "setegid"
    message_name = "setegid"

    def fire(self, config, message, proc):
        from repro.caps import Capability

        _, gid_arg, privs = message.args
        for gid in _expand(gid_arg, model.candidate_gids(config)):
            allowed = Capability.CAP_SETGID in privs or gid in (
                proc["rgid"],
                proc["sgid"],
            )
            if allowed:
                yield config.consume(message, proc.update(egid=gid))


class SetresgidRule(SyscallRule):
    """``setresgid(pid, rgid, egid, sgid, privs)``."""

    label = "setresgid"
    message_name = "setresgid"

    def fire(self, config, message, proc):
        _, r_arg, e_arg, s_arg, privs = message.args
        domain = model.candidate_gids(config)
        for new_r in _expand(r_arg, domain):
            for new_e in _expand(e_arg, domain):
                for new_s in _expand(s_arg, domain):
                    values = dict(rgid=new_r, egid=new_e, sgid=new_s)
                    updates = {}
                    allowed = True
                    for field, value in values.items():
                        if value == KEEP:
                            continue
                        if not permissions.may_set_gid(proc, value, privs):
                            allowed = False
                            break
                        updates[field] = value
                    if allowed and updates:
                        yield config.consume(message, proc.update(**updates))


class SetgroupsRule(SyscallRule):
    """``setgroups(pid, gid, privs)`` — join a supplementary group.

    setgroups(2) requires ``CAP_SETGID``; the effect here is additive
    (one group per message), which is what an attacker would do with it.
    """

    label = "setgroups"
    message_name = "setgroups"

    def fire(self, config, message, proc):
        from repro.caps import Capability

        _, gid_arg, privs = message.args
        if Capability.CAP_SETGID not in privs:
            return
        for gid in _expand(gid_arg, model.candidate_gids(config)):
            if gid in proc["supplementary"]:
                continue
            yield config.consume(
                message, proc.update(supplementary=proc["supplementary"] | {gid})
            )


class KillRule(SyscallRule):
    """``kill(pid, target, sig, privs)`` — SIGKILL terminates the target."""

    label = "kill"
    message_name = "kill"

    def fire(self, config, message, proc):
        _, target_arg, signal, privs = message.args
        for target_pid in _expand(target_arg, model.candidate_processes(config)):
            victim = model.find_process(config, target_pid)
            if victim is None or victim["state"] != model.STATE_RUN:
                continue
            if not permissions.may_signal(proc, victim, privs):
                continue
            if signal == model.SIGKILL:
                yield config.consume(message, victim.update(state=model.STATE_DEAD))
            else:
                # Delivery of a non-fatal signal: observable only as message
                # consumption (we do not model handlers inside ROSA).
                yield config.consume(message)


class ChmodRule(SyscallRule):
    """``chmod(pid, fid, perms, privs)`` — ownership or CAP_FOWNER."""

    label = "chmod"
    message_name = "chmod"
    #: fchmod additionally requires the file to be open; chmod requires lookup.
    requires_open = False

    def fire(self, config, message, proc):
        _, fid_arg, new_perms, privs = message.args
        for fid in _expand(fid_arg, model.candidate_files(config)):
            target = config.find_object(fid)
            if target is None or target.cls != model.FILE:
                continue
            if self.requires_open:
                if fid not in (proc["rdfset"] | proc["wrfset"]):
                    continue
            else:
                entries = model.parent_entries(config, fid)
                if not permissions.lookup_permits(entries, proc, privs):
                    continue
            if not permissions.may_chmod(proc, target, privs):
                continue
            if target["perms"] == new_perms:
                continue
            yield config.consume(message).update_object(
                target.update(perms=new_perms)
            )


class FchmodRule(ChmodRule):
    label = "fchmod"
    message_name = "fchmod"
    requires_open = True


class ChownRule(SyscallRule):
    """``chown(pid, fid, owner, group, privs)`` — CAP_CHOWN for owner changes."""

    label = "chown"
    message_name = "chown"
    requires_open = False

    def fire(self, config, message, proc):
        _, fid_arg, owner_arg, group_arg, privs = message.args
        for fid in _expand(fid_arg, model.candidate_files(config)):
            target = config.find_object(fid)
            if target is None or target.cls != model.FILE:
                continue
            if self.requires_open:
                if fid not in (proc["rdfset"] | proc["wrfset"]):
                    continue
            else:
                entries = model.parent_entries(config, fid)
                if not permissions.lookup_permits(entries, proc, privs):
                    continue
            for new_owner in _expand(owner_arg, model.candidate_uids(config)):
                for new_group in _expand(group_arg, model.candidate_gids(config)):
                    if new_owner == target["owner"] and new_group == target["group"]:
                        continue
                    if not permissions.may_chown(
                        proc, target, new_owner, new_group, privs
                    ):
                        continue
                    yield config.consume(message).update_object(
                        target.update(owner=new_owner, group=new_group)
                    )


class FchownRule(ChownRule):
    label = "fchown"
    message_name = "fchown"
    requires_open = True


class UnlinkRule(SyscallRule):
    """``unlink(pid, entry, privs)`` — needs write+search on the directory,
    and satisfies the sticky-bit rule in restricted-deletion directories."""

    label = "unlink"
    message_name = "unlink"

    def fire(self, config, message, proc):
        _, entry_arg, privs = message.args
        for entry_id in _expand(entry_arg, model.candidate_dirs(config)):
            entry = config.find_object(entry_id)
            if entry is None or entry.cls != model.DIR:
                continue
            if not permissions.may_write(proc, entry, privs):
                continue
            if not permissions.may_search(proc, entry, privs):
                continue
            target_file = config.find_object(entry["inode"])
            if target_file is not None and target_file.cls != model.FILE:
                target_file = None
            if not permissions.sticky_permits_removal(proc, entry, target_file, privs):
                continue
            yield config.consume(message).remove(entry)


class CreatRule(SyscallRule):
    """``creat(pid, parent_entry, name, perms, privs)`` — an extension
    beyond the paper's ROSA (§VI notes creat was unsupported).

    Creating a file requires write+search permission on the parent
    directory; the new file is owned by the process's effective ids and
    gets both a File object and a Dir entry (sharing the parent entry's
    directory attributes).
    """

    label = "creat"
    message_name = "creat"

    def fire(self, config, message, proc):
        _, parent_arg, name, perms, privs = message.args
        for parent_id in _expand(parent_arg, model.candidate_dirs(config)):
            parent = config.find_object(parent_id)
            if parent is None or parent.cls != model.DIR:
                continue
            if not permissions.may_write(proc, parent, privs):
                continue
            if not permissions.may_search(proc, parent, privs):
                continue
            fid = model.fresh_oid(config)
            new_file = model.file_obj(
                fid, name=name, owner=proc["euid"], group=proc["egid"], perms=perms
            )
            with_file = config.consume(message).add(new_file)
            entry = model.dir_entry(
                model.fresh_oid(with_file),
                name=name,
                owner=parent["owner"],
                group=parent["group"],
                perms=parent["perms"],
                inode=fid,
            )
            yield with_file.add(entry)


class LinkRule(SyscallRule):
    """``link(pid, fid, parent_entry, name, privs)`` — hard links, an
    extension beyond the paper's ROSA (§VI notes link was unsupported).

    Requires write+search on the target directory.  The new entry refers
    to the *same* file object, so a later privileged write through the
    benign-looking name reaches the linked file — the classic hard-link
    attack shape.
    """

    label = "link"
    message_name = "link"

    def fire(self, config, message, proc):
        _, fid_arg, parent_arg, name, privs = message.args
        for fid in _expand(fid_arg, model.candidate_files(config)):
            target = config.find_object(fid)
            if target is None or target.cls != model.FILE:
                continue
            for parent_id in _expand(parent_arg, model.candidate_dirs(config)):
                parent = config.find_object(parent_id)
                if parent is None or parent.cls != model.DIR:
                    continue
                if not permissions.may_write(proc, parent, privs):
                    continue
                if not permissions.may_search(proc, parent, privs):
                    continue
                entry = model.dir_entry(
                    model.fresh_oid(config),
                    name=name,
                    owner=parent["owner"],
                    group=parent["group"],
                    perms=parent["perms"],
                    inode=fid,
                )
                yield config.consume(message).add(entry)


class RenameRule(SyscallRule):
    """``rename(pid, entry, new_name, privs)`` — modify a directory entry;
    subject to the sticky-bit rule like unlink."""

    label = "rename"
    message_name = "rename"

    def fire(self, config, message, proc):
        _, entry_arg, new_name, privs = message.args
        for entry_id in _expand(entry_arg, model.candidate_dirs(config)):
            entry = config.find_object(entry_id)
            if entry is None or entry.cls != model.DIR:
                continue
            if not permissions.may_write(proc, entry, privs):
                continue
            if not permissions.may_search(proc, entry, privs):
                continue
            target_file = config.find_object(entry["inode"])
            if target_file is not None and target_file.cls != model.FILE:
                target_file = None
            if not permissions.sticky_permits_removal(proc, entry, target_file, privs):
                continue
            if entry["name"] == new_name:
                continue
            yield config.consume(message).update_object(entry.update(name=new_name))


class SocketRule(SyscallRule):
    """``socket(pid, privs)`` — create a fresh unbound TCP socket."""

    label = "socket"
    message_name = "socket"

    def fire(self, config, message, proc):
        sock = model.socket_obj(model.fresh_oid(config), owner_pid=proc.oid)
        yield config.consume(message).add(sock)


class BindRule(SyscallRule):
    """``bind(pid, sock, port, privs)`` — privileged ports need the capability."""

    label = "bind"
    message_name = "bind"

    def fire(self, config, message, proc):
        _, sock_arg, port_arg, privs = message.args
        own_sockets = {
            sock.oid
            for sock in config.objects(model.SOCKET)
            if sock["owner_pid"] == proc.oid
        }
        bound_ports = {
            sock["port"] for sock in config.objects(model.SOCKET) if sock["port"]
        }
        for sock_id in _expand(sock_arg, own_sockets):
            sock = config.find_object(sock_id)
            if sock is None or sock.cls != model.SOCKET or sock.oid not in own_sockets:
                continue
            if sock["port"] != 0:
                continue  # already bound
            for port in _expand(port_arg, model.candidate_ports(config)):
                if port in bound_ports:
                    continue  # EADDRINUSE
                if not permissions.may_bind(port, privs):
                    continue
                yield config.consume(message).update_object(sock.update(port=port))


class ConnectRule(SyscallRule):
    """``connect(pid, sock, port, privs)`` — always permitted on own sockets."""

    label = "connect"
    message_name = "connect"

    def fire(self, config, message, proc):
        _, sock_arg, port_arg, _privs = message.args
        own_sockets = {
            sock.oid
            for sock in config.objects(model.SOCKET)
            if sock["owner_pid"] == proc.oid
        }
        for sock_id in _expand(sock_arg, own_sockets):
            sock = config.find_object(sock_id)
            if sock is None or sock.cls != model.SOCKET:
                continue
            # Connecting has no access-control consequence in our model;
            # the rewrite just consumes the message.
            yield config.consume(message)


def unix_rules() -> tuple:
    """All syscall rules of the UNIX module, in deterministic order."""
    return (
        OpenRule(),
        SetuidRule(),
        SeteuidRule(),
        SetresuidRule(),
        SetgidRule(),
        SetegidRule(),
        SetresgidRule(),
        SetgroupsRule(),
        KillRule(),
        ChmodRule(),
        FchmodRule(),
        ChownRule(),
        FchownRule(),
        UnlinkRule(),
        CreatRule(),
        LinkRule(),
        RenameRule(),
        SocketRule(),
        BindRule(),
        ConnectRule(),
    )
