"""Fleet-wide, content-addressed shared verdict store.

:class:`SharedVerdictStore` turns per-process query caching into
compute-once across a whole fleet: every verdict lives as one JSON
object named by its canonical query key (sha256 — see
:func:`repro.rosa.engine.query_cache_key`), sharded into fanout
directories, published atomically, and attested.  Any process — engine
batches, corpus sweep workers, ``privanalyzer serve`` request handlers —
that derives the same key reads the same object instead of re-running
the BFS.

Design rules, following the fail-closed promotion discipline of the
Crypto-Anaylzer exemplar (SNIPPETS.md):

* **Content addressing.** The object path is a pure function of the
  canonical query key; the key already binds the initial configuration,
  goal, rule-system signature, budget, reduction flag and cache schema
  version, so two processes cannot disagree about where a verdict lives.
* **Atomic publish.** Objects are written tempfile-then-``os.replace``
  in the destination shard, so readers never observe a torn entry and
  concurrent publishers of the same key are harmless (same content —
  last replace wins bit-identically).
* **Fail closed.** An entry is served only if its recorded rule-system
  signature matches this store's, its schema versions match, and its
  attestation (a sha256 over the canonical entry material) re-validates.
  Anything else — corruption, tampering, version skew, a foreign rule
  system — is *rejected*: counted, skipped, and recomputed live by the
  caller, never trusted.
* **Append-only lineage.** Every publish appends one JSON line to
  ``lineage.jsonl`` under the same advisory lock primitive the query
  cache's merge-on-save uses, so the store's history is auditable
  (who published what, when, under which signature).

The store is deliberately engine-shaped: ``get(key)`` returns a
:class:`~repro.rosa.engine.CachedOutcome` or ``None`` and
``put(key, outcome)`` returns whether a fresh object was published —
exactly the duck type :class:`~repro.rosa.engine.QueryEngine` consults
as its L2 behind the in-memory LRU.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.rosa.engine import (
    CACHE_SCHEMA_VERSION,
    CachedOutcome,
    advisory_lock,
    system_signature,
)

logger = logging.getLogger("repro.rosa.store")

#: Bump when the on-disk entry layout or the attestation material
#: changes; entries with another version are rejected (recomputed and
#: republished), never misread.
STORE_SCHEMA_VERSION = 1

#: Subdirectory holding the sharded verdict objects.
OBJECTS_DIR = "objects"

#: Append-only publish history, one JSON line per published object.
LINEAGE_FILE = "lineage.jsonl"


def rule_signature_hex(system=None) -> str:
    """Hex digest of the rule-system signature entries bind to.

    ``None`` means the default UNIX module.  Stored in every entry and
    checked on every read: a store written under one rule set is never
    served under another.
    """
    signature = system_signature(system)
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


def attest(key: str, outcome: CachedOutcome, signature: str) -> str:
    """The attestation digest of one store entry.

    A sha256 over the canonical JSON of everything the entry asserts:
    both schema versions, the canonical query key, the rule-system
    signature digest, and the full outcome.  Readers recompute this and
    compare; a single flipped byte anywhere in the served material
    changes the digest and the entry is rejected (fail closed).
    """
    material = json.dumps(
        {
            "schema": STORE_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "signature": signature,
            "outcome": outcome.to_json(),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class SharedVerdictStore:
    """A directory of attested, content-addressed search outcomes.

    Layout::

        <root>/objects/<key[:2]>/<key>.json   one verdict per canonical key
        <root>/lineage.jsonl                  append-only publish history

    Safe for any number of concurrent reader and writer processes: reads
    never block, publishes are atomic replaces, and the only lock taken
    is around the lineage append.
    """

    def __init__(self, root: Union[str, Path], system=None) -> None:
        self.root = Path(root)
        self.objects = self.root / OBJECTS_DIR
        self.objects.mkdir(parents=True, exist_ok=True)
        self.signature = rule_signature_hex(system)
        self.hits = 0
        self.misses = 0
        self.published = 0
        self.rejected = 0

    def _path(self, key: str) -> Path:
        return self.objects / key[:2] / f"{key}.json"

    # -- reads -----------------------------------------------------------------

    def get(self, key: str) -> Optional[CachedOutcome]:
        """The attested outcome under ``key``, or ``None``.

        A missing object is a plain miss.  A present-but-invalid object
        (corrupt JSON, schema skew, foreign rule signature, attestation
        mismatch) is a *rejection*: counted separately, logged once, and
        reported as a miss so the caller recomputes live — the
        fail-closed path never serves what it cannot re-validate.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            logger.warning("store entry %s unreadable; rejecting", path)
            self.rejected += 1
            self.misses += 1
            return None
        outcome = self._validate(key, entry)
        if outcome is None:
            logger.warning("store entry %s failed attestation; rejecting", path)
            self.rejected += 1
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def _validate(self, key: str, entry: Any) -> Optional[CachedOutcome]:
        """Re-derive the entry's attestation; ``None`` on any mismatch."""
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != STORE_SCHEMA_VERSION:
            return None
        if entry.get("cache_schema") != CACHE_SCHEMA_VERSION:
            return None
        if entry.get("key") != key:
            return None
        if entry.get("signature") != self.signature:
            return None
        try:
            outcome = CachedOutcome.from_json(entry["outcome"])
        except (KeyError, TypeError, ValueError):
            return None
        if entry.get("attestation") != attest(key, outcome, self.signature):
            return None
        return outcome

    # -- writes ----------------------------------------------------------------

    def put(self, key: str, outcome: CachedOutcome) -> bool:
        """Publish ``outcome`` under ``key``; True if a fresh object landed.

        Re-publishing a key whose on-disk object already validates is a
        no-op (the content is identical by construction — the key binds
        every search input).  An invalid object in the way is replaced:
        publishing is also the repair path for rejected entries.
        """
        path = self._path(key)
        if path.exists():
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    if self._validate(key, json.load(handle)) is not None:
                        return False
            except (OSError, ValueError):
                pass  # torn or corrupt: fall through and replace it
        entry = {
            "schema": STORE_SCHEMA_VERSION,
            "cache_schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "signature": self.signature,
            "outcome": outcome.to_json(),
            "attestation": attest(key, outcome, self.signature),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=str(path.parent), prefix=".verdict-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self.published += 1
        self._append_lineage(key, outcome, entry["attestation"])
        return True

    def _append_lineage(
        self, key: str, outcome: CachedOutcome, attestation: str
    ) -> None:
        """One publish record into the append-only history, under the lock."""
        record = {
            "ts": round(time.time(), 3),
            "pid": os.getpid(),
            "key": key,
            "verdict": outcome.verdict,
            "signature": self.signature,
            "attestation": attestation,
        }
        lineage = self.root / LINEAGE_FILE
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        try:
            with advisory_lock(str(lineage)):
                with open(lineage, "a", encoding="utf-8") as handle:
                    handle.write(line)
        except (OSError, TimeoutError) as error:  # pragma: no cover - contention
            # Lineage is an audit trail, not a correctness dependency:
            # losing one record under extreme contention must not fail
            # the publish that already landed.
            logger.warning("lineage append failed for %s: %s", key, error)

    # -- introspection ---------------------------------------------------------

    def entry_count(self) -> int:
        """Objects on disk right now (walks the fanout dirs)."""
        count = 0
        try:
            with os.scandir(self.objects) as shards:
                for shard in shards:
                    if not shard.is_dir():
                        continue
                    with os.scandir(shard.path) as objects:
                        count += sum(
                            1 for obj in objects if obj.name.endswith(".json")
                        )
        except OSError:
            return 0
        return count

    def lineage(self) -> list:
        """All parseable lineage records, oldest first."""
        path = self.root / LINEAGE_FILE
        records = []
        try:
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    try:
                        records.append(json.loads(line))
                    except ValueError:
                        continue
        except OSError:
            return []
        return records

    def stats(self) -> Dict[str, Any]:
        """This handle's counters plus the store's on-disk entry count."""
        total = self.hits + self.misses
        return {
            "root": str(self.root),
            "schema": STORE_SCHEMA_VERSION,
            "signature": self.signature,
            "entries": self.entry_count(),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hits / total, 4) if total else 0.0,
            "published": self.published,
            "rejected": self.rejected,
        }


class SingleFlight:
    """In-process request coalescing in front of a shared store.

    ``privanalyzer serve`` answers many concurrent clients; without
    coalescing, N simultaneous requests for the same cold key would all
    miss the store and run N identical searches.  The first thread to
    miss becomes the *leader* (gets ``None`` back and is expected to
    search and :meth:`put`); threads that miss the same key while the
    leader is in flight *join*: they block until the leader publishes,
    then read the published object.  A leader that dies without
    publishing stops nobody — joiners time out and compute the answer
    themselves (the store's idempotent publish makes the duplicate
    harmless).

    Wraps — and duck-types — the store interface, so it drops into
    :class:`~repro.rosa.engine.QueryEngine` as the ``store`` unchanged.
    """

    def __init__(self, store: SharedVerdictStore, timeout: float = 60.0) -> None:
        self.store = store
        self.timeout = timeout
        self._lock = threading.Lock()
        self._inflight: Dict[str, threading.Event] = {}
        self.leaders = 0
        self.joined = 0

    def get(self, key: str) -> Optional[CachedOutcome]:
        outcome = self.store.get(key)
        if outcome is not None:
            return outcome
        with self._lock:
            event = self._inflight.get(key)
            if event is None:
                self._inflight[key] = threading.Event()
                self.leaders += 1
                return None  # this caller is the leader: search, then put()
        if event.wait(self.timeout):
            outcome = self.store.get(key)
            if outcome is not None:
                self.joined += 1
                return outcome
        # The leader timed out or its publish was rejected: fall back to
        # computing live — correctness over coalescing.
        return None

    def put(self, key: str, outcome: CachedOutcome) -> bool:
        published = self.store.put(key, outcome)
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()
        return published

    def stats(self) -> Dict[str, Any]:
        stats = self.store.stats()
        stats["single_flight"] = {
            "leaders": self.leaders,
            "joined": self.joined,
            "inflight": len(self._inflight),
        }
        return stats
