"""System-call message constructors.

A ROSA message specifies the system call name, the pid allowed to execute
it, the call's arguments and the privilege set the call may use (§V-B).
Including a message N times in a configuration allows the attacker to
execute that call up to N times — the bound of the bounded model checker.

Two sentinels appear in arguments:

* :data:`WILDCARD` (−1, as in the paper's Figure 2) — "try every candidate
  value": file ids range over File objects, uids over User objects, gids
  over Group objects, pids over Process objects, ports over Port objects.
  Wildcards model attacks that corrupt system-call arguments (§III).
* :data:`KEEP` — "leave this id unchanged" in ``setres[ug]id``, mirroring
  the kernel's use of −1 (which ROSA reserves for wildcards).

The privilege argument is any iterable of capabilities (or their names);
it is normalised to a frozenset so messages hash canonically.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Union

from repro.caps import Capability, parse_capability
from repro.rewriting import Msg

#: Wildcard argument marker (the paper's ``-1``).
WILDCARD = -1

#: "Do not change this id" marker for setresuid/setresgid.
KEEP = "keep"

#: Open modes.
O_RDONLY = "r"
O_WRONLY = "w"
O_RDWR = "rw"

CapsLike = Iterable[Union[Capability, str]]


def caps(privs: CapsLike = ()) -> FrozenSet[Capability]:
    """Normalise a privilege iterable into a frozenset of capabilities."""
    return frozenset(
        cap if isinstance(cap, Capability) else parse_capability(cap) for cap in privs
    )


def sys_open(pid: int, fid: int, mode: str, privs: CapsLike = ()) -> Msg:
    """``open()``: open file ``fid`` with ``mode`` (:data:`O_RDONLY` etc.)."""
    if mode not in (O_RDONLY, O_WRONLY, O_RDWR):
        raise ValueError(f"invalid open mode: {mode!r}")
    return Msg("open", pid, fid, mode, caps(privs))


def sys_setuid(pid: int, uid: int, privs: CapsLike = ()) -> Msg:
    """``setuid()``: privileged form sets all three uids; unprivileged sets euid."""
    return Msg("setuid", pid, uid, caps(privs))


def sys_seteuid(pid: int, uid: int, privs: CapsLike = ()) -> Msg:
    return Msg("seteuid", pid, uid, caps(privs))


def sys_setresuid(pid: int, ruid, euid, suid, privs: CapsLike = ()) -> Msg:
    return Msg("setresuid", pid, ruid, euid, suid, caps(privs))


def sys_setgid(pid: int, gid: int, privs: CapsLike = ()) -> Msg:
    return Msg("setgid", pid, gid, caps(privs))


def sys_setegid(pid: int, gid: int, privs: CapsLike = ()) -> Msg:
    return Msg("setegid", pid, gid, caps(privs))


def sys_setresgid(pid: int, rgid, egid, sgid, privs: CapsLike = ()) -> Msg:
    return Msg("setresgid", pid, rgid, egid, sgid, caps(privs))


def sys_setgroups(pid: int, gid, privs: CapsLike = ()) -> Msg:
    """``setgroups()``: add ``gid`` to the supplementary group list.

    Modeled as single-group additions (each message grants one group);
    requires ``CAP_SETGID`` like the real call.
    """
    return Msg("setgroups", pid, gid, caps(privs))


def sys_kill(pid: int, target_pid: int, signal: int, privs: CapsLike = ()) -> Msg:
    return Msg("kill", pid, target_pid, signal, caps(privs))


def sys_chmod(pid: int, fid: int, perms: int, privs: CapsLike = ()) -> Msg:
    """``chmod()``: attackers conventionally pass ``0o777`` (paper §V-B)."""
    return Msg("chmod", pid, fid, perms, caps(privs))


def sys_fchmod(pid: int, fid: int, perms: int, privs: CapsLike = ()) -> Msg:
    """``fchmod()``: like chmod but requires the file already open."""
    return Msg("fchmod", pid, fid, perms, caps(privs))


def sys_chown(pid: int, fid: int, owner: int, group: int, privs: CapsLike = ()) -> Msg:
    return Msg("chown", pid, fid, owner, group, caps(privs))


def sys_fchown(pid: int, fid: int, owner: int, group: int, privs: CapsLike = ()) -> Msg:
    return Msg("fchown", pid, fid, owner, group, caps(privs))


def sys_unlink(pid: int, entry_id: int, privs: CapsLike = ()) -> Msg:
    """``unlink()``: remove directory entry ``entry_id``."""
    return Msg("unlink", pid, entry_id, caps(privs))


def sys_creat(
    pid: int, parent_entry_id: int, name: str, perms: int, privs: CapsLike = ()
) -> Msg:
    """``creat()``: make a new file, linked beside directory entry
    ``parent_entry_id`` (sharing its directory permissions).

    An extension beyond the paper's ROSA, which lacked file-creating
    syscalls (§VI).
    """
    return Msg("creat", pid, parent_entry_id, name, perms, caps(privs))


def sys_link(
    pid: int, fid: int, parent_entry_id: int, name: str, privs: CapsLike = ()
) -> Msg:
    """``link()``: create a new directory entry (hard link) for file
    ``fid`` beside directory entry ``parent_entry_id``.

    An extension beyond the paper's ROSA (§VI); enables modeling the
    classic hard-link attacks on privileged writers.
    """
    return Msg("link", pid, fid, parent_entry_id, name, caps(privs))


def sys_rename(pid: int, entry_id: int, new_name: str, privs: CapsLike = ()) -> Msg:
    """``rename()``: rename directory entry ``entry_id`` to ``new_name``."""
    return Msg("rename", pid, entry_id, new_name, caps(privs))


def sys_socket(pid: int, privs: CapsLike = ()) -> Msg:
    """``socket()``: create a fresh unbound TCP socket owned by ``pid``."""
    return Msg("socket", pid, caps(privs))


def sys_bind(pid: int, sock_id: int, port: int, privs: CapsLike = ()) -> Msg:
    return Msg("bind", pid, sock_id, port, caps(privs))


def sys_connect(pid: int, sock_id: int, port: int, privs: CapsLike = ()) -> Msg:
    return Msg("connect", pid, sock_id, port, caps(privs))


#: All syscall names ROSA models, grouped as in the paper (§VI).
PROCESS_SYSCALLS = frozenset(
    {"setuid", "seteuid", "setresuid", "setgid", "setegid", "setresgid",
     "setgroups", "kill"}
)
FILE_SYSCALLS = frozenset(
    {"open", "chmod", "fchmod", "chown", "fchown", "unlink", "rename",
     "creat", "link"}
)
SOCKET_SYSCALLS = frozenset({"socket", "bind", "connect"})
ALL_SYSCALLS = PROCESS_SYSCALLS | FILE_SYSCALLS | SOCKET_SYSCALLS
