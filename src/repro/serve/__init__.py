"""``privanalyzer serve``: the analysis-as-a-service control plane.

A stdlib-only asyncio server (:mod:`repro.serve.server`) admits
analyze / ROSA / corpus requests from many concurrent clients over a
line-delimited JSON socket protocol (:mod:`repro.serve.protocol`),
coalesces in-flight misses by canonical query key (single-flight), and
backs every request's query engine with the fleet-wide
:class:`~repro.rosa.store.SharedVerdictStore` — so each distinct search
runs exactly once across all clients, sweeps and server restarts.
:mod:`repro.serve.client` is the matching blocking client.

See ``docs/SERVING.md`` for the protocol, the store layout and the
operational runbook.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode,
    encode,
)
from repro.serve.server import VerdictServer

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeClient",
    "ServeError",
    "VerdictServer",
    "decode",
    "encode",
]
