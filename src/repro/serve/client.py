"""A blocking client for the ``privanalyzer serve`` protocol.

Small on purpose — a socket, a buffered line reader, and one method per
operation — so tests, the serve-smoke gate, and scripts talk to the
server without pulling in asyncio.  Any process (or many threads of
one) can hold its own client; the server handles each connection's
requests off-loop, so concurrent clients genuinely overlap.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Optional

from repro.serve import protocol


class ServeError(RuntimeError):
    """The server answered ``ok: false`` (the connection is still fine)."""


class ServeClient:
    """One connection to a :class:`~repro.serve.server.VerdictServer`."""

    def __init__(self, host: str, port: int, timeout: float = 120.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- plumbing --------------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request, wait for its response, return the envelope.

        Raises :class:`ServeError` on an ``ok: false`` answer and
        :class:`~repro.serve.protocol.ProtocolError` on garbage.
        """
        self._next_id += 1
        message = {"op": op, "id": self._next_id, **fields}
        self._sock.sendall(protocol.encode(message))
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection mid-request")
        response = protocol.decode(line)
        if not response.get("ok"):
            raise ServeError(str(response.get("error", "unknown server error")))
        return response

    # -- operations ------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")["result"]

    def stats(self) -> Dict[str, Any]:
        return self.request("stats")["result"]

    def metrics_text(self) -> str:
        """The server's Prometheus text exposition (the live dashboard)."""
        return self.request("metrics")["result"]["text"]

    def rosa(
        self,
        text: str,
        name: str = "query",
        max_states: int = 200_000,
        max_seconds: float = 60.0,
        reduction: bool = True,
    ) -> Dict[str, Any]:
        return self.request(
            "rosa",
            text=text,
            name=name,
            max_states=max_states,
            max_seconds=max_seconds,
            reduction=reduction,
        )

    def analyze(self, program: str, **fields: Any) -> Dict[str, Any]:
        return self.request("analyze", program=program, **fields)

    def corpus(
        self,
        seed: int = 0,
        generated: int = 4,
        exemplars: bool = False,
        builtins: bool = False,
        limit: Optional[int] = None,
    ) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "seed": seed,
            "generated": generated,
            "exemplars": exemplars,
            "builtins": builtins,
        }
        if limit is not None:
            fields["limit"] = limit
        return self.request("corpus", **fields)

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")["result"]
