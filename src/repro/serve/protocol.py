"""The serve wire protocol: one JSON object per line, both directions.

Requests::

    {"op": "ping"}
    {"op": "stats"}
    {"op": "metrics"}
    {"op": "rosa", "text": "<Figure 2/4 query source>",
     "max_states": 200000, "max_seconds": 60.0, "reduction": true}
    {"op": "analyze", "program": "passwd"}
    {"op": "corpus", "seed": 0, "generated": 4, "exemplars": false,
     "builtins": false, "limit": 8}
    {"op": "shutdown"}

Every request may carry a client-chosen ``"id"``; the response echoes
it.  Responses::

    {"ok": true,  "op": <op>, "id": <id>, "result": <op-specific>,
     "served": {"store_hits": H, "store_misses": M, "published": P}}
    {"ok": false, "op": <op>, "id": <id>, "error": "<message>"}

``served`` carries the request's own shared-store accounting — how many
of its distinct searches were read from the store versus computed live
and published — so clients can verify compute-once behaviour themselves
(the serve-smoke gate asserts ``store_hits / (store_hits +
store_misses) >= 0.9`` for a second client over a warm store).

The framing is deliberately trivial: UTF-8 JSON, ``\\n``-terminated, no
length prefixes, no binary.  Any line that does not decode to a JSON
object with a known ``op`` produces an ``ok: false`` response (never a
dropped connection), and lines over :data:`MAX_LINE_BYTES` are refused
by the server's stream limit.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

#: Bump on any incompatible change to the envelope or an op's fields.
PROTOCOL_VERSION = 1

#: Upper bound on one request or response line.  Corpus responses carry
#: whole profile tables; queries carry whole configurations.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Every operation the server admits.
OPS = ("ping", "stats", "metrics", "rosa", "analyze", "corpus", "shutdown")


class ProtocolError(ValueError):
    """A line that is not a well-formed protocol message."""


def encode(message: Dict[str, Any]) -> bytes:
    """One message as its wire line (UTF-8 JSON + newline)."""
    return (json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


def decode(line: bytes) -> Dict[str, Any]:
    """The message on one wire line; raises :class:`ProtocolError`."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(f"undecodable message line: {error}") from error
    if not isinstance(message, dict):
        raise ProtocolError(f"message is {type(message).__name__}, want object")
    return message


def ok(
    op: str,
    result: Any,
    request_id: Optional[Any] = None,
    served: Optional[Dict[str, int]] = None,
) -> Dict[str, Any]:
    """A success response envelope."""
    response: Dict[str, Any] = {"ok": True, "op": op, "result": result}
    if request_id is not None:
        response["id"] = request_id
    if served is not None:
        response["served"] = served
    return response


def error(
    op: Optional[str], message: str, request_id: Optional[Any] = None
) -> Dict[str, Any]:
    """A failure response envelope (the connection stays up)."""
    response: Dict[str, Any] = {"ok": False, "op": op, "error": message}
    if request_id is not None:
        response["id"] = request_id
    return response
