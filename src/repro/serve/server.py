"""The ``privanalyzer serve`` control plane.

One :class:`VerdictServer` owns one :class:`~repro.rosa.store.
SharedVerdictStore` (wrapped in :class:`~repro.rosa.store.SingleFlight`
so concurrent cold misses for the same canonical key run one search,
not N) and admits requests over the line protocol in
:mod:`repro.serve.protocol`.  The asyncio loop only frames and
dispatches; the actual analysis work runs on a thread per request, so
many connections progress concurrently and the single-flight window is
real.

Every request gets a *fresh* :class:`~repro.rosa.engine.QueryEngine`
(empty in-memory LRU) over the shared store, behind a per-request
accounting wrapper — the ``served`` field of each response therefore
reports honestly how many of that request's distinct searches were
store-served versus computed live, with zero help from warm process
state.  After each request the counts fold into the server's metrics
registry, so ``{"op": "metrics"}`` (Prometheus text exposition) is the
live service dashboard: ``serve.*`` request counters plus
``rosa.store.*`` fleet-wide compute-once counters.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Dict, Optional, Tuple

from repro.rosa.store import SharedVerdictStore, SingleFlight
from repro.serve import protocol
from repro.telemetry import Telemetry, metrics_to_prometheus

logger = logging.getLogger("repro.serve")


class _RequestStore:
    """Per-request accounting shim over the shared (single-flight) store."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.hits = 0
        self.misses = 0
        self.published = 0

    def get(self, key):
        outcome = self.inner.get(key)
        if outcome is not None:
            self.hits += 1
        else:
            self.misses += 1
        return outcome

    def put(self, key, outcome):
        published = self.inner.put(key, outcome)
        if published:
            self.published += 1
        return published

    def served(self) -> Dict[str, int]:
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "published": self.published,
        }


class VerdictServer:
    """An asyncio socket server sharing one verdict store across clients."""

    def __init__(
        self,
        store_root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.jobs = jobs
        self.store = SingleFlight(SharedVerdictStore(store_root))
        #: The dashboard registry; request engines run their own private
        #: telemetry, and their store accounting folds in here after
        #: every response (see :meth:`_account`).
        self.telemetry = telemetry or Telemetry.enabled()
        self._started = time.monotonic()
        self._requests: Dict[str, int] = {}
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        logger.info("serving on %s:%d (store %s)", self.host, self.port,
                    self.store.store.root)
        return self.host, self.port

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` request arrives, then close."""
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    async def serve_until_shutdown(self) -> Tuple[str, int]:
        address = await self.start()
        await self.wait_closed()
        return address

    def run(self, port_file: Optional[str] = None) -> None:
        """Start, optionally publish the bound port, serve until shutdown."""

        async def main() -> None:
            host, port = await self.start()
            if port_file is not None:
                with open(port_file, "w", encoding="utf-8") as handle:
                    handle.write(f"{host}:{port}\n")
            await self.wait_closed()

        asyncio.run(main())

    # -- the connection loop ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        peer = writer.get_extra_info("peername")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode(
                        protocol.error(None, "request line too long")
                    ))
                    await writer.drain()
                    break
                if not line:
                    break
                response = await asyncio.to_thread(self._dispatch, line)
                writer.write(protocol.encode(response))
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self._shutdown.set()
                    break
        except ConnectionError:  # pragma: no cover - client went away
            pass
        finally:
            logger.debug("connection from %s closed", peer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover
                pass

    # -- dispatch (thread side) ------------------------------------------------

    def _dispatch(self, line: bytes) -> Dict[str, Any]:
        request_id = None
        op = None
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            op = message.get("op")
            if op not in protocol.OPS:
                raise protocol.ProtocolError(
                    f"unknown op {op!r}; known: {', '.join(protocol.OPS)}"
                )
            self._requests[op] = self._requests.get(op, 0) + 1
            self.telemetry.metrics.counter("serve.requests").inc()
            handler = getattr(self, f"_op_{op}")
            result, served = handler(message)
            self._account(served)
            return protocol.ok(op, result, request_id, served)
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            logger.warning("request failed (%s): %s", op, exc)
            self.telemetry.metrics.counter("serve.errors").inc()
            return protocol.error(op, str(exc), request_id)

    def _account(self, served: Optional[Dict[str, int]]) -> None:
        """Fold one request's store accounting into the dashboard."""
        if not served:
            return
        metrics = self.telemetry.metrics
        if served.get("store_hits"):
            metrics.counter("rosa.store.hits").inc(served["store_hits"])
        if served.get("store_misses"):
            metrics.counter("rosa.store.misses").inc(served["store_misses"])
        if served.get("published"):
            metrics.counter("rosa.store.published").inc(served["published"])

    def _fresh_engine_kwargs(self) -> Dict[str, Any]:
        """Per-request engine configuration: empty L1, shared L2, jobs."""
        kwargs: Dict[str, Any] = {}
        if self.jobs > 1:
            from repro.rosa.engine import ParallelPolicy

            kwargs["parallel"] = ParallelPolicy(
                mode="process", max_workers=self.jobs
            )
        return kwargs

    # -- operations ------------------------------------------------------------

    def _op_ping(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}, None

    def _op_stats(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        stats = self.store.stats()
        stats["rejected_total"] = stats.get("rejected", 0)
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "jobs": self.jobs,
            "requests": dict(sorted(self._requests.items())),
            "store": stats,
        }, None

    def _op_metrics(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        # The single-flight coalescing gauges refresh on read, so the
        # dashboard shows them without a request having to fold them.
        flight = self.store.stats()["single_flight"]
        metrics = self.telemetry.metrics
        metrics.gauge("serve.single_flight.leaders").set(flight["leaders"])
        metrics.gauge("serve.single_flight.joined").set(flight["joined"])
        metrics.gauge("rosa.store.entries").set(self.store.store.entry_count())
        return {"text": metrics_to_prometheus(metrics)}, None

    def _op_shutdown(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        return {"stopping": True}, None

    def _op_rosa(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        from repro.rewriting import SearchBudget
        from repro.rosa.dsl import parse_query
        from repro.rosa.engine import QueryCache, QueryEngine

        text = message.get("text")
        if not isinstance(text, str) or not text.strip():
            raise protocol.ProtocolError("rosa needs a non-empty 'text' field")
        query = parse_query(text, name=str(message.get("name", "query")))
        budget = SearchBudget(
            max_states=int(message.get("max_states", 200_000)),
            max_seconds=float(message.get("max_seconds", 60.0)),
        )
        store = _RequestStore(self.store)
        engine = QueryEngine(
            budget=budget,
            cache=QueryCache(),
            store=store,
            reduction=bool(message.get("reduction", True)),
            **self._fresh_engine_kwargs(),
        )
        report = engine.check(query)
        return {
            "name": report.query.name,
            "verdict": report.verdict.value,
            "witness": list(report.witness),
            "states_explored": report.states_explored,
            "states_seen": report.states_seen,
            "from_cache": report.from_cache,
        }, store.served()

    def _op_analyze(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        from repro.core.pipeline import PrivAnalyzer
        from repro.core.report import analysis_to_dict
        from repro.programs import spec_by_name
        from repro.rewriting import SearchBudget

        program = message.get("program")
        if not isinstance(program, str):
            raise protocol.ProtocolError("analyze needs a 'program' name")
        spec = spec_by_name(program)
        budget = None
        if "max_states" in message or "max_seconds" in message:
            budget = SearchBudget(
                max_states=int(message.get("max_states", 200_000)),
                max_seconds=float(message.get("max_seconds", 60.0)),
            )
        store = _RequestStore(self.store)
        analyzer = PrivAnalyzer(
            budget=budget, verdict_store=store, **self._fresh_engine_kwargs()
        )
        analysis = analyzer.analyze(spec)
        return analysis_to_dict(analysis), store.served()

    def _op_corpus(self, message) -> Tuple[Any, Optional[Dict[str, int]]]:
        from repro.core.pipeline import PrivAnalyzer
        from repro.core.report import analysis_to_dict
        from repro.corpus.build import CorpusSpec, generate_corpus
        from repro.corpus.sweep import DEFAULT_SWEEP_BUDGET

        spec = CorpusSpec(
            seed=int(message.get("seed", 0)),
            size=int(message.get("generated", 4)),
            violators=min(int(message.get("generated", 4)), 1),
            include_exemplars=bool(message.get("exemplars", False)),
            include_builtins=bool(message.get("builtins", False)),
        )
        entries = generate_corpus(spec)
        limit = message.get("limit")
        if limit is not None:
            entries = entries[: int(limit)]
        store = _RequestStore(self.store)
        programs = []
        for entry in entries:
            analyzer = PrivAnalyzer(
                budget=DEFAULT_SWEEP_BUDGET,
                verdict_store=store,
                **self._fresh_engine_kwargs(),
            )
            analysis = analyzer.analyze(entry.spec())
            programs.append(analysis_to_dict(analysis))
        return {"corpus_seed": spec.seed, "programs": programs}, store.served()
