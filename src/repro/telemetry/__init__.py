"""Zero-dependency observability for the PrivAnalyzer reproduction.

Three pillars (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.telemetry.tracing` — nested span tracing with a no-op fast
  path, exported as JSONL or a human-readable tree;
* :mod:`repro.telemetry.metrics` — counters / gauges / histograms in a
  flat named registry (VM instruction counts, syscall dispatches, ROSA
  search costs, AutoPriv pass timings);
* :mod:`repro.telemetry.audit` — a ring-buffer syscall audit trail on
  the simulated kernel, the raw material for seccomp-style policy
  extraction.

:class:`Telemetry` bundles all three plus the injectable clock; the
pipeline, VM, kernel and CLI all accept one.  ``Telemetry.disabled()``
is the default everywhere and costs nothing on hot paths.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.telemetry.audit import AuditRecord, SyscallAuditTrail
from repro.telemetry.capsule import (
    CAPSULE_SCHEMA_VERSION,
    CapsuleCollector,
    CapsuleRequest,
    TelemetryCapsule,
    merge_capsule,
    normalize_worker,
    worker_index,
)
from repro.telemetry.clock import Clock, ManualClock, MONOTONIC
from repro.telemetry.export import (
    metrics_to_jsonl,
    render_metrics,
    render_profile,
    render_progress,
    render_span_tree,
    span_to_dict,
    spans_from_jsonl,
    spans_to_jsonl,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labeled_name,
)
from repro.telemetry.profiler import (
    NULL_PROFILER,
    PROFILE_SCHEMA_VERSION,
    ProfileRecord,
    Profiler,
)
from repro.telemetry.prometheus import metrics_to_prometheus, prometheus_name
from repro.telemetry.trace_event import spans_to_trace_events, trace_event_json
from repro.telemetry.tracing import NULL_TRACER, Span, Tracer


@dataclasses.dataclass
class Telemetry:
    """Everything one pipeline run records, behind one handle."""

    tracer: Tracer
    metrics: MetricsRegistry
    audit: Optional[SyscallAuditTrail] = None

    @property
    def active(self) -> bool:
        """True when spans are actually being recorded."""
        return self.tracer.enabled

    @classmethod
    def enabled(
        cls,
        clock: Clock = MONOTONIC,
        audit: bool = False,
        audit_capacity: int = 4096,
    ) -> "Telemetry":
        """A fully live bundle; ``audit=True`` adds the syscall recorder."""
        metrics = MetricsRegistry()
        return cls(
            tracer=Tracer(clock=clock),
            metrics=metrics,
            audit=SyscallAuditTrail(
                capacity=audit_capacity, clock=clock, metrics=metrics
            )
            if audit
            else None,
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The default: span calls are no-ops, nothing else is wired."""
        return cls(tracer=Tracer(enabled=False), metrics=MetricsRegistry(), audit=None)


__all__ = [
    "AuditRecord",
    "CAPSULE_SCHEMA_VERSION",
    "CapsuleCollector",
    "CapsuleRequest",
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "MONOTONIC",
    "NULL_PROFILER",
    "NULL_TRACER",
    "PROFILE_SCHEMA_VERSION",
    "ProfileRecord",
    "Profiler",
    "Span",
    "SyscallAuditTrail",
    "Telemetry",
    "TelemetryCapsule",
    "Tracer",
    "labeled_name",
    "merge_capsule",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "normalize_worker",
    "prometheus_name",
    "render_metrics",
    "render_profile",
    "render_progress",
    "render_span_tree",
    "span_to_dict",
    "spans_from_jsonl",
    "spans_to_jsonl",
    "spans_to_trace_events",
    "trace_event_json",
    "worker_index",
]
