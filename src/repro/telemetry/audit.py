"""A kernel syscall audit trail, seccomp-filter-generation style.

Related work (Canella et al.'s automated seccomp filter generation, and
the BEACON line of environment-aware dynamic analysis) derives sandbox
policy from *observed* syscall traces.  :class:`SyscallAuditTrail` is the
raw material for that on our simulated kernel: a bounded ring buffer of
:class:`AuditRecord` entries, one per syscall, each carrying the calling
pid, the caller's credentials and capability sets *at call time*, the
arguments, and the result (or errno on failure).

The trail is pure data — it never imports the kernel.  The kernel wraps
its ``sys_*`` methods and feeds records in (see
:meth:`repro.oskernel.kernel.Kernel.enable_audit`); a ``None`` trail is
the disabled fast path.
"""

from __future__ import annotations

import dataclasses
import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.telemetry.clock import Clock, MONOTONIC
from repro.telemetry.metrics import MetricsRegistry


def sanitize(value: Any) -> Any:
    """Make one syscall argument or result JSON-safe without losing much."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [sanitize(item) for item in value]
    return repr(value)


@dataclasses.dataclass(frozen=True)
class AuditRecord:
    """One syscall as the kernel saw it."""

    #: Monotone sequence number — total syscalls issued, including any
    #: that have since been evicted from the ring.
    seq: int
    #: Clock reading when the syscall entered the kernel.
    time: float
    syscall: str
    pid: int
    args: Tuple[Any, ...]
    #: Sanitized return value on success, ``None`` on failure.
    result: Any
    #: errno number on failure, ``None`` on success.
    errno: Optional[int]
    #: Kernel's failure message, ``None`` on success.
    error: Optional[str]
    #: Caller's (ruid, euid, suid) / (rgid, egid, sgid) at call time.
    uids: Optional[Tuple[int, int, int]]
    gids: Optional[Tuple[int, int, int]]
    #: Caller's effective / permitted capability sets at call time.
    caps_effective: Optional[str]
    caps_permitted: Optional[str]

    @property
    def ok(self) -> bool:
        return self.errno is None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        data = self.to_dict()
        data["args"] = list(data["args"])
        return json.dumps(data, sort_keys=True)


class SyscallAuditTrail:
    """Bounded recorder: the newest ``capacity`` syscalls, oldest evicted."""

    def __init__(
        self,
        capacity: int = 4096,
        clock: Clock = MONOTONIC,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("audit capacity must be positive")
        self.capacity = capacity
        self.clock = clock
        self._ring: Deque[AuditRecord] = deque(maxlen=capacity)
        self.total = 0
        # With a registry attached, ring evictions surface as the
        # ``kernel.audit.dropped`` gauge, so a silently truncated trail
        # is visible in every metrics snapshot, not just on the trail.
        self._dropped_gauge = (
            metrics.gauge("kernel.audit.dropped") if metrics is not None else None
        )

    def record(
        self,
        syscall: str,
        pid: int,
        args: Tuple[Any, ...],
        result: Any = None,
        errno: Optional[int] = None,
        error: Optional[str] = None,
        uids: Optional[Tuple[int, int, int]] = None,
        gids: Optional[Tuple[int, int, int]] = None,
        caps_effective: Optional[str] = None,
        caps_permitted: Optional[str] = None,
    ) -> AuditRecord:
        self.total += 1
        entry = AuditRecord(
            seq=self.total,
            time=self.clock(),
            syscall=syscall,
            pid=pid,
            args=tuple(sanitize(arg) for arg in args),
            result=sanitize(result) if errno is None else None,
            errno=errno,
            error=error,
            uids=uids,
            gids=gids,
            caps_effective=caps_effective,
            caps_permitted=caps_permitted,
        )
        self._ring.append(entry)
        if self._dropped_gauge is not None:
            self._dropped_gauge.set(self.total - len(self._ring))
        return entry

    def publish_dropped(self) -> int:
        """Refresh the ``kernel.audit.dropped`` gauge; returns the count.

        :meth:`record` keeps the gauge current while records append, but
        :meth:`clear` (and any direct ring manipulation) would otherwise
        leave it stale — exporters call this at snapshot time so a
        ledger written after the last append reports the true figure.
        """
        dropped = self.total - len(self._ring)
        if self._dropped_gauge is not None:
            self._dropped_gauge.set(dropped)
        return dropped

    def absorb(self, records, total: Optional[int] = None) -> int:
        """Fold another trail's records (a worker capsule's) into this ring.

        ``records`` are :class:`AuditRecord` instances or their
        :meth:`~AuditRecord.to_dict` dicts; they re-sequence into this
        trail's monotone ``seq`` space in the order given.  ``total``,
        when it exceeds ``len(records)``, accounts the source ring's own
        evictions as drops here too, so fleet-wide totals stay honest.
        Returns the number of records absorbed.
        """
        absorbed = 0
        for data in records:
            if isinstance(data, AuditRecord):
                data = data.to_dict()
            self.total += 1
            self._ring.append(
                AuditRecord(
                    seq=self.total,
                    time=float(data.get("time", 0.0)),
                    syscall=str(data.get("syscall", "?")),
                    pid=int(data.get("pid", 0)),
                    args=tuple(data.get("args", ())),
                    result=data.get("result"),
                    errno=data.get("errno"),
                    error=data.get("error"),
                    uids=tuple(data["uids"]) if data.get("uids") else None,
                    gids=tuple(data["gids"]) if data.get("gids") else None,
                    caps_effective=data.get("caps_effective"),
                    caps_permitted=data.get("caps_permitted"),
                )
            )
            absorbed += 1
        if total is not None and total > absorbed:
            self.total += total - absorbed
        self.publish_dropped()
        return absorbed

    # -- reading ----------------------------------------------------------------

    @property
    def records(self) -> List[AuditRecord]:
        """Retained records, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Syscalls evicted because the ring was full."""
        return self.total - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def syscall_names(self) -> List[str]:
        """Retained syscall names in call order (test/assertion helper)."""
        return [entry.syscall for entry in self._ring]

    def denials(self) -> List[AuditRecord]:
        """Retained records that failed — the interesting ones for policy."""
        return [entry for entry in self._ring if entry.errno is not None]

    def to_jsonl(self) -> str:
        """One JSON object per line, oldest record first."""
        return "\n".join(entry.to_json() for entry in self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.publish_dropped()
