"""Telemetry capsules: fleet observability across pool workers.

The query engine fans distinct ROSA searches out over thread and process
pools (:mod:`repro.rosa.engine`), and before this module those workers
searched dark — spans, metrics, hot-path profiles, progress samples and
the audit ring never crossed the pool boundary.  A
:class:`TelemetryCapsule` is the fix: each worker runs its search under
its own private collector set (:class:`CapsuleCollector`) and returns
one compact, schema-versioned, picklable capsule alongside its result;
the parent session folds every capsule back in with
:func:`merge_capsule`.

Design points:

* **picklable by construction** — a capsule is plain data (dicts, lists,
  numbers, strings); spans travel as
  :func:`~repro.telemetry.export.span_to_dict` dicts, profiles as
  exported record rows, metrics as registry snapshots.  Nothing in it
  references live tracer/kernel objects.
* **clock-skew normalization** — worker clocks are not the parent's
  clock.  The merge anchors a capsule by the parent-side completion
  timestamp: ``offset = anchor - capsule.clock_end`` shifts every worker
  span into the parent clock domain (thread-mode capsules share the
  parent clock and merge with ``anchor=None`` → offset 0).
* **trace-context propagation** — the engine stamps each capsule with
  the canonical query key as its ``trace_id``; merged spans carry it
  plus a ``worker`` attribute, which is what gives each worker its own
  track in the Perfetto export (:mod:`repro.telemetry.trace_event`).
* **schema-versioned** — a capsule whose ``schema`` is not
  :data:`CAPSULE_SCHEMA_VERSION` is skipped (never half-merged) and the
  skew surfaces as the ``rosa.capsule.schema_skew`` counter.

:func:`worker_index` / :func:`normalize_worker` turn raw worker names
(pool thread names, ``pid:N``) into the stable ``worker:N`` ids every
downstream surface keys on — profiler stacks, Perfetto tracks, metric
labels and the ledger's per-worker section.
"""

from __future__ import annotations

import dataclasses
import logging
import os
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.audit import SyscallAuditTrail
from repro.telemetry.clock import Clock, MONOTONIC
from repro.telemetry.export import span_to_dict
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import Profiler
from repro.telemetry.tracing import NULL_TRACER, Tracer

logger = logging.getLogger("repro.telemetry.capsule")

#: Bump when the capsule layout changes; the parent refuses to merge
#: capsules written under another version (a mixed-version pool, e.g.
#: during a rolling deploy of the analysis service, must not corrupt the
#: parent session's telemetry).
CAPSULE_SCHEMA_VERSION = 1

#: The :class:`~repro.rewriting.ProgressSample` fields a capsule carries.
#: Kept as an explicit tuple so the telemetry layer never imports the
#: rewriting layer; the engine reconstructs samples from these dicts.
SAMPLE_FIELDS = (
    "states_explored",
    "states_seen",
    "frontier",
    "depth",
    "elapsed",
    "states_per_second",
    "budget_used",
)

#: Per-capsule cap on retained progress samples.  Workers see every
#: sample live; the capsule keeps an endpoint-preserving decimation so
#: pickling cost stays bounded however long the search ran.
MAX_CAPSULE_SAMPLES = 64

_POOL_THREAD = re.compile(r"^ThreadPoolExecutor-\d+_(\d+)$")


# -- worker identity ----------------------------------------------------------


def worker_index(name: str, assigned: Dict[str, int]) -> int:
    """The stable integer id for one raw worker name.

    Pool thread names carry their pool slot (``ThreadPoolExecutor-0_3``
    → 3) and keep it when free; every other name (``MainThread``, a
    process worker's ``pid:4242``) gets the first unused integer, in
    first-seen order.  ``assigned`` is the caller's persistent
    name→index map, so ids are stable across batches of one session.
    """
    index = assigned.get(name)
    if index is not None:
        return index
    match = _POOL_THREAD.match(name)
    used = set(assigned.values())
    if match:
        index = int(match.group(1))
        if index not in used:
            assigned[name] = index
            return index
    index = 0
    while index in used:
        index += 1
    assigned[name] = index
    return index


def normalize_worker(name: str, assigned: Dict[str, int]) -> str:
    """``worker:N`` for one raw worker name (see :func:`worker_index`)."""
    return f"worker:{worker_index(name, assigned)}"


def worker_label(worker: str) -> str:
    """The metric label value for a ``worker:N`` id (the bare ``N``)."""
    return worker.split(":", 1)[1] if ":" in worker else worker


# -- the capsule --------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CapsuleRequest:
    """Picklable instructions telling a worker what to collect.

    The engine derives one per batch from its live collectors (no
    tracer → no span collection, and so on), then stamps each
    submission's copy with the query's canonical key as ``trace_id``.
    """

    trace: bool = True
    profile: bool = False
    samples: bool = False
    audit: bool = False
    trace_id: Optional[str] = None
    max_samples: int = MAX_CAPSULE_SAMPLES

    @property
    def any(self) -> bool:
        return self.trace or self.profile or self.samples or self.audit


@dataclasses.dataclass
class TelemetryCapsule:
    """One worker's telemetry for one search, as plain picklable data."""

    schema: int
    #: Raw worker identity (pool thread name or ``pid:N``); the parent
    #: normalizes it to a stable ``worker:N`` id at merge time.
    worker: str
    pid: int
    #: Worker-clock readings bracketing the search (build + check).
    clock_start: float
    clock_end: float
    #: Trace-context id — the engine's canonical query key.
    trace_id: Optional[str] = None
    #: Finished spans as :func:`~repro.telemetry.export.span_to_dict` dicts.
    spans: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: The worker registry's :meth:`~MetricsRegistry.snapshot`.
    metrics: Dict[str, Dict[str, Any]] = dataclasses.field(default_factory=dict)
    #: Exported profiler rows (see :meth:`Profiler.export_records`).
    profile: List[List[Any]] = dataclasses.field(default_factory=list)
    #: Bounded progress samples as :data:`SAMPLE_FIELDS` dicts.
    samples: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    #: The worker audit ring's retained tail plus its true total.
    audit_records: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    audit_total: int = 0

    @property
    def execute_seconds(self) -> float:
        """Worker-side wall time, immune to cross-process clock skew."""
        return max(self.clock_end - self.clock_start, 0.0)

    def stats(self) -> Dict[str, Any]:
        """Size accounting for ledgers and fleet dashboards."""
        return {
            "schema": self.schema,
            "worker": self.worker,
            "pid": self.pid,
            "execute_seconds": self.execute_seconds,
            "trace_id": self.trace_id,
            "spans": len(self.spans),
            "metrics": len(self.metrics),
            "profile_records": len(self.profile),
            "samples": len(self.samples),
            "audit_records": len(self.audit_records),
            "audit_total": self.audit_total,
        }


class CapsuleCollector:
    """The worker-side collector set behind one capsule.

    Builds private instances of exactly the collectors the request asks
    for — tracer, metrics registry, profiler, audit ring — plus a
    bounded progress buffer, all on one injectable clock.  The worker
    runs its search against these, then calls :meth:`capsule` to pack
    everything for the trip home.
    """

    def __init__(
        self,
        request: CapsuleRequest,
        clock: Clock = MONOTONIC,
        worker: Optional[str] = None,
    ) -> None:
        self.request = request
        self.clock = clock
        self.worker = worker or f"pid:{os.getpid()}"
        self.clock_start = clock()
        self.tracer = Tracer(clock=clock) if request.trace else NULL_TRACER
        self.metrics = MetricsRegistry()
        self.profiler = Profiler(clock=clock) if request.profile else None
        self.audit = (
            SyscallAuditTrail(clock=clock, metrics=self.metrics)
            if request.audit
            else None
        )
        self._samples: Optional[List[Dict[str, Any]]] = (
            [] if request.samples else None
        )

    @property
    def progress(self):
        """The progress callback to install, or ``None`` when not asked."""
        return self.on_sample if self._samples is not None else None

    def on_sample(self, sample) -> None:
        """Record one progress reading, decimating beyond ``max_samples``."""
        samples = self._samples
        if samples is None:
            return
        samples.append({field: getattr(sample, field) for field in SAMPLE_FIELDS})
        if len(samples) > self.request.max_samples:
            # Endpoint-preserving decimation, mirroring the search's own
            # retention policy: halve the interior, keep first and last.
            del samples[1:-1:2]

    def observe_report(self, report) -> None:
        """Fold one search report's counters into the worker registry.

        Mirrors what the engine's serial path records, so aggregate
        counters (reduction hits, states explored) come out identical
        whether a search ran in-process or on a pool worker.
        """
        metrics = self.metrics
        metrics.counter("rosa.worker.queries").inc()
        metrics.counter("rosa.worker.states_explored").inc(report.states_explored)
        stats = getattr(report, "stats", None)
        if stats is not None:
            if stats.symmetry_hits:
                metrics.counter("rosa.reduction.symmetry_hits").inc(
                    stats.symmetry_hits
                )
            if stats.por_pruned:
                metrics.counter("rosa.reduction.por_pruned").inc(stats.por_pruned)

    def capsule(self) -> TelemetryCapsule:
        """Pack everything collected so far into one picklable capsule."""
        if self.audit is not None:
            self.audit.publish_dropped()
        return TelemetryCapsule(
            schema=CAPSULE_SCHEMA_VERSION,
            worker=self.worker,
            pid=os.getpid(),
            clock_start=self.clock_start,
            clock_end=self.clock(),
            trace_id=self.request.trace_id,
            spans=(
                [span_to_dict(span) for span in self.tracer.finished]
                if self.request.trace
                else []
            ),
            metrics=self.metrics.snapshot(),
            profile=(
                self.profiler.export_records() if self.profiler is not None else []
            ),
            samples=list(self._samples) if self._samples else [],
            audit_records=(
                [record.to_dict() for record in self.audit.records]
                if self.audit is not None
                else []
            ),
            audit_total=self.audit.total if self.audit is not None else 0,
        )


# -- merging ------------------------------------------------------------------


def merge_capsule(
    capsule: TelemetryCapsule,
    *,
    worker: str,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    profiler: Optional[Profiler] = None,
    audit: Optional[SyscallAuditTrail] = None,
    anchor: Optional[float] = None,
    graft_under: Optional[Tuple[str, ...]] = None,
) -> bool:
    """Fold one worker capsule into the parent session's collectors.

    ``worker`` is the normalized ``worker:N`` id.  ``anchor`` is the
    parent-clock timestamp at which the worker's result arrived; the
    capsule's spans shift by ``anchor - capsule.clock_end`` into the
    parent clock domain (``None`` means the clocks are shared — thread
    mode — and spans merge unshifted).  Span adoption hangs worker roots
    under the parent tracer's innermost open span and stamps every
    adopted span with ``worker`` (the Perfetto track key) and the
    capsule's ``trace_id``.  Metrics merge additively into both the base
    instrument and a ``name{worker="N"}`` labeled variant; profile
    records graft under ``graft_under`` (default
    ``("engine", worker, "execute")``) with a derived
    ``capsule.overhead`` remainder frame so worker attribution coverage
    stays complete; audit records re-sequence into the parent ring.

    Returns ``False`` (and merges nothing) on schema skew.
    """
    if capsule.schema != CAPSULE_SCHEMA_VERSION:
        logger.warning(
            "skipping telemetry capsule from %s: schema %r, want %d",
            capsule.worker, capsule.schema, CAPSULE_SCHEMA_VERSION,
        )
        if metrics is not None:
            metrics.counter("rosa.capsule.schema_skew").inc()
        return False
    offset = (anchor - capsule.clock_end) if anchor is not None else 0.0
    if tracer is not None and tracer.enabled and capsule.spans:
        stamp: Dict[str, Any] = {"worker": worker}
        if capsule.trace_id is not None:
            stamp["trace_id"] = capsule.trace_id
        tracer.adopt_spans(capsule.spans, offset=offset, attributes=stamp)
    if metrics is not None and capsule.metrics:
        metrics.merge_snapshot(
            capsule.metrics, labels={"worker": worker_label(worker)}
        )
        metrics.counter("rosa.capsule.merged").inc()
    if profiler is not None and profiler.enabled and capsule.profile:
        under = graft_under or ("engine", worker, "execute")
        profiler.graft(capsule.profile, under)
        # The worker's profile roots cover the search itself; whatever
        # the capsule's execute window spent outside them (query build,
        # reducer setup, capsule assembly) becomes one derived remainder
        # frame, so the worker's execute time stays fully attributed.
        rooted = sum(row[2] for row in capsule.profile if len(row[0]) == 1)
        overhead = capsule.execute_seconds - rooted
        if overhead > 0.0:
            profiler.account(under + ("capsule.overhead",), overhead)
    if audit is not None and (capsule.audit_records or capsule.audit_total):
        audit.absorb(capsule.audit_records, total=capsule.audit_total)
    return True
