"""Clocks for the telemetry layer.

All telemetry timing goes through an injectable *clock* — any zero-argument
callable returning seconds as a float.  Production code uses
:data:`MONOTONIC` (``time.monotonic``, immune to wall-clock steps);
tests inject a :class:`ManualClock` so span durations, search progress
samples and audit timestamps are exactly reproducible.
"""

from __future__ import annotations

import time
from typing import Callable

#: A clock is any ``() -> float`` returning seconds.
Clock = Callable[[], float]

#: The production clock.
MONOTONIC: Clock = time.monotonic


class ManualClock:
    """A deterministic clock that only moves when told to.

    ``tick`` advances the reading by a fixed amount *after* every call,
    which gives strictly increasing timestamps without any test having
    to interleave explicit ``advance`` calls:

    >>> clock = ManualClock(start=10.0, tick=1.0)
    >>> clock(), clock(), clock()
    (10.0, 11.0, 12.0)
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self.now = float(start)
        self.tick = float(tick)

    def __call__(self) -> float:
        reading = self.now
        self.now += self.tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds``."""
        if seconds < 0:
            raise ValueError("clocks only run forward")
        self.now += seconds
