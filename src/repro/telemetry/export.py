"""Exporters: JSONL for machines, indented trees and tables for humans.

Span JSONL is one object per finished span, in end order (children
before parents), each carrying ``span_id``/``parent_id`` so consumers
can rebuild the tree; :func:`spans_from_jsonl` does exactly that for
round-trip tests.  The human renderers re-sort by start time so the
tree reads in execution order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Span, Tracer


def span_to_dict(span: Span) -> Dict[str, Any]:
    return {
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "duration": span.duration,
        "attributes": dict(span.attributes),
    }


def spans_to_jsonl(tracer: Tracer) -> str:
    """Every finished span as one JSON line, end order."""
    return "\n".join(
        json.dumps(span_to_dict(span), sort_keys=True, default=repr)
        for span in tracer.finished
    )


def spans_from_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse span JSONL back into dicts (blank lines ignored)."""
    return [json.loads(line) for line in text.splitlines() if line.strip()]


def _children_by_parent(spans: Sequence[Dict[str, Any]]) -> Dict[Optional[int], List[Dict[str, Any]]]:
    children: Dict[Optional[int], List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span["parent_id"], []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: (span["start"], span["span_id"]))
    return children


def render_span_tree(tracer: Tracer) -> str:
    """The trace as an indented tree with per-span durations.

    ::

        pipeline.analyze                      412.1 ms  program=passwd
          compile                              31.9 ms
            autopriv.transform                  8.4 ms
    """
    spans = [span_to_dict(span) for span in tracer.finished]
    if not spans:
        return "(no spans recorded)"
    children = _children_by_parent(spans)
    lines: List[str] = []

    def walk(parent_id: Optional[int], depth: int) -> None:
        for span in children.get(parent_id, ()):
            label = "  " * depth + span["name"]
            attrs = " ".join(
                f"{key}={value}" for key, value in sorted(span["attributes"].items())
            )
            lines.append(
                f"{label:<44} {span['duration'] * 1000:10.2f} ms"
                + (f"  {attrs}" if attrs else "")
            )
            walk(span["span_id"], depth + 1)

    # Roots include spans whose parents were never finished/exported.
    known = {span["span_id"] for span in spans}
    roots = sorted(
        {parent for parent in children if parent is None or parent not in known},
        key=lambda parent: (parent is not None, parent),
    )
    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_profile(tracer: Tracer) -> str:
    """Aggregate finished spans by name: calls, total, mean, share.

    The share column is each name's total as a percentage of the longest
    root span — the per-stage timing table ``--profile`` prints.
    """
    spans = tracer.finished
    if not spans:
        return "(no spans recorded)"
    totals: Dict[str, List[float]] = {}
    order: List[str] = []
    for span in spans:
        if span.name not in totals:
            totals[span.name] = []
            order.append(span.name)
        totals[span.name].append(span.duration)
    root_duration = max(
        (span.duration for span in spans if span.parent_id is None),
        default=max(span.duration for span in spans),
    )
    header = f"{'stage':<32} {'calls':>6} {'total ms':>10} {'mean ms':>10} {'share':>7}"
    lines = [header, "-" * len(header)]
    for name in sorted(order, key=lambda name: -sum(totals[name])):
        durations = totals[name]
        total = sum(durations)
        share = (100.0 * total / root_duration) if root_duration else 0.0
        lines.append(
            f"{name:<32} {len(durations):>6} {total * 1000:>10.2f} "
            f"{(total / len(durations)) * 1000:>10.2f} {share:>6.1f}%"
        )
    return "\n".join(lines)


def render_progress(sample, label: str = "search") -> str:
    """One :class:`~repro.rewriting.ProgressSample` as a live status line.

    Duck-typed (no import of the rewriting layer): anything with the
    sample's fields renders.  This is what ``--progress`` writes to
    stderr while a long ROSA search runs.
    """
    return (
        f"{label}: {sample.states_explored:,} explored | "
        f"{sample.states_seen:,} seen | frontier {sample.frontier:,} | "
        f"depth {sample.depth} | {sample.states_per_second:,.0f} states/s | "
        f"budget {sample.budget_used:.0%}"
    )


def metrics_to_jsonl(metrics: MetricsRegistry) -> str:
    """Every instrument as one JSON line: ``{"name": ..., "type": ..., ...}``."""
    lines = []
    for name, snapshot in metrics.snapshot().items():
        entry = {"name": name}
        entry.update(snapshot)
        lines.append(json.dumps(entry, sort_keys=True))
    return "\n".join(lines)


def render_metrics(metrics: MetricsRegistry) -> str:
    """A compact human table of every instrument."""
    rows: List[str] = []
    for name, snap in metrics.snapshot().items():
        if snap["type"] == "histogram":
            detail = (
                f"count={snap['count']} sum={snap['sum']:.6g} "
                f"mean={snap['mean']:.6g} min={snap['min']:.6g} max={snap['max']:.6g}"
            )
        else:
            detail = f"value={snap['value']}"
        rows.append(f"{name:<36} {snap['type']:<10} {detail}")
    return "\n".join(rows) if rows else "(no metrics recorded)"
