"""Counters, gauges and histograms with a flat named registry.

The registry is deliberately small: metric names are plain dotted
strings (``vm.syscall_dispatches``, ``rosa.query_seconds``), instruments
are created on first use, and :meth:`MetricsRegistry.snapshot` renders
everything into one JSON-able dict.  Labels exist only as a naming
convention: :func:`labeled_name` spells a label set into the instrument
name (``rosa.cache.hits{worker="3"}``), which is how
:meth:`MetricsRegistry.merge_snapshot` keeps per-worker breakdowns when
folding pool-worker telemetry capsules into the parent registry.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Union


def labeled_name(name: str, labels: Mapping[str, str]) -> str:
    """A label-qualified instrument name: ``rosa.cache.hits{worker="3"}``.

    The registry stays flat — a labeled variant is just another named
    instrument — but exporters (Prometheus, the fleet ledger) recognise
    the ``name{key="value"}`` spelling and render real label sets.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that is set, not accumulated (e.g. peak frontier size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        """Keep the running maximum — handy for high-water marks."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming aggregate of observations: count/sum/min/max/mean/stddev.

    Keeps Welford running moments rather than the raw samples, so a
    million observations cost the same as ten; percentile needs are
    served well enough by mean ± stddev for profile tables.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_mean", "_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self._m2 / self.count) if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "stddev": self.stddev,
        }

    def merge_snapshot(self, snap: Mapping[str, Any]) -> None:
        """Fold another histogram's snapshot into this one.

        Chan et al.'s parallel-moments merge: the combined mean/M2 are
        exact (up to float rounding), so a fleet of per-worker Welford
        aggregates merges into the same moments one registry observing
        every value would hold.  Empty snapshots are no-ops.
        """
        count = int(snap.get("count", 0))
        if count <= 0:
            return
        mean = float(snap.get("mean", 0.0))
        stddev = float(snap.get("stddev", 0.0))
        m2 = stddev * stddev * count
        total = float(snap.get("sum", mean * count))
        low = float(snap.get("min", mean))
        high = float(snap.get("max", mean))
        if self.count == 0:
            self.count = count
            self.total = total
            self.min = low
            self.max = high
            self._mean = mean
            self._m2 = m2
            return
        combined = self.count + count
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * self.count * count / combined
        self._mean += delta * count / combined
        self.count = combined
        self.total += total
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high


class MetricsRegistry:
    """Named instruments, created on first use, snapshot in name order."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as ``{name: {"type": ..., ...}}``, name-sorted."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    def merge_snapshot(
        self,
        snapshot: Mapping[str, Mapping[str, Any]],
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Fold another registry's snapshot (a worker capsule's) into this one.

        Counters add, gauges keep the running maximum (high-water
        semantics — gauges like peak frontier sizes cannot be summed
        across workers), histograms merge their streaming moments.  With
        ``labels`` (e.g. ``{"worker": "3"}``) every instrument *also*
        merges into a :func:`labeled_name` variant, so fleet totals and
        per-worker breakdowns coexist in one flat registry.
        """
        for name, snap in snapshot.items():
            targets = [name]
            if labels:
                targets.append(labeled_name(name, labels))
            kind = snap.get("type")
            for target in targets:
                if kind == "counter":
                    self.counter(target).inc(int(snap.get("value", 0)))
                elif kind == "gauge":
                    self.gauge(target).set_max(snap.get("value", 0))
                elif kind == "histogram":
                    self.histogram(target).merge_snapshot(snap)
