"""Counters, gauges and histograms with a flat named registry.

The registry is deliberately small: metric names are plain dotted
strings (``vm.syscall_dispatches``, ``rosa.query_seconds``), instruments
are created on first use, and :meth:`MetricsRegistry.snapshot` renders
everything into one JSON-able dict.  No labels, no exemplars — the
pipeline is single-process and the consumers are the CLI profile table,
the benchmark harness and tests.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that is set, not accumulated (e.g. peak frontier size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def set_max(self, value: Union[int, float]) -> None:
        """Keep the running maximum — handy for high-water marks."""
        if value > self.value:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming aggregate of observations: count/sum/min/max/mean/stddev.

    Keeps Welford running moments rather than the raw samples, so a
    million observations cost the same as ten; percentile needs are
    served well enough by mean ± stddev for profile tables.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_mean", "_m2")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self._m2 / self.count) if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "stddev": self.stddev,
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot in name order."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get(self, name: str, kind):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as ``{name: {"type": ..., ...}}``, name-sorted."""
        return {name: self._instruments[name].snapshot() for name in self.names()}
