"""Hot-path profiler: deterministic cost attribution by stack path.

The span tracer (:mod:`repro.telemetry.tracing`) answers "how long did
each pipeline *stage* take"; this module answers "where inside the hot
loops did the time go" — per rewrite rule, per reduction phase, per VM
opcode, per engine worker.  The design constraints mirror the tracer's:

* **zero dependencies, injectable clock** — all timing goes through a
  ``() -> float`` clock, so tests with a
  :class:`~repro.telemetry.clock.ManualClock` get bit-identical reports;
* **off by default, near-zero overhead when disabled** — a disabled
  profiler allocates no attribution records: :meth:`Profiler.account`
  returns immediately and :meth:`Profiler.section` hands back one shared
  inert context manager;
* **aggregated, not evented** — attribution is keyed by a *stack path*
  (a tuple of frame names such as ``("rosa.search", "rule:setuid")``),
  and each key accumulates call counts, wall seconds and named counters.
  A million rule applications cost one dict entry, not a million span
  objects.

Exporters: :meth:`Profiler.to_collapsed` renders the classic
collapsed-stack format (``frame;frame <count>``, one sample unit per
microsecond of *self* time) that ``flamegraph.pl``, speedscope and
friends consume directly; :meth:`Profiler.to_report` renders a
schema-versioned JSON document the run ledger embeds and
``privanalyzer diff`` compares.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.telemetry.clock import Clock, MONOTONIC

#: Bump when the report layout changes; the ledger differ refuses to
#: compare profile sections written under different versions.
PROFILE_SCHEMA_VERSION = 1

#: One microsecond: the collapsed-stack sample unit (flamegraph counts
#: must be integers, and whole milliseconds would flatten repro-scale
#: searches to zero).
_COLLAPSED_UNIT = 1e6

StackPath = Tuple[str, ...]


class ProfileRecord:
    """Accumulated cost of one stack path: calls, seconds, counters."""

    __slots__ = ("calls", "seconds", "counters")

    def __init__(self) -> None:
        self.calls = 0
        self.seconds = 0.0
        self.counters: Dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProfileRecord calls={self.calls} seconds={self.seconds:.6f} "
            f"counters={self.counters}>"
        )


class _NullSection:
    """The inert section a disabled profiler returns.  One shared instance."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SECTION = _NullSection()


class _Section:
    """A timed region that accounts its wall time to one stack path."""

    __slots__ = ("profiler", "stack", "start")

    def __init__(self, profiler: "Profiler", stack: StackPath) -> None:
        self.profiler = profiler
        self.stack = stack
        self.start = 0.0

    def __enter__(self) -> "_Section":
        self.start = self.profiler.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.profiler.account(self.stack, self.profiler.clock() - self.start)


class Profiler:
    """Accumulates wall time and counts per stack path.

    Single-threaded by design, like the tracer: the hot paths it
    instruments (BFS expansion, VM dispatch) run in one thread.  Pool
    wrappers account whole-future wall times from the scheduling thread
    instead of instrumenting workers.
    """

    def __init__(self, clock: Clock = MONOTONIC, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.records: Dict[StackPath, ProfileRecord] = {}

    # -- recording ------------------------------------------------------------

    def record(self, stack: StackPath) -> ProfileRecord:
        """The record for ``stack``, created on first use."""
        record = self.records.get(stack)
        if record is None:
            record = ProfileRecord()
            self.records[stack] = record
        return record

    def account(self, stack: StackPath, seconds: float, calls: int = 1) -> None:
        """Add ``seconds`` of wall time (and ``calls`` invocations) to ``stack``."""
        if not self.enabled:
            return
        record = self.record(stack)
        record.calls += calls
        record.seconds += seconds

    def count(self, stack: StackPath, counter: str, amount: int = 1) -> None:
        """Bump a named counter on ``stack`` (hits, misses, applications...)."""
        if not self.enabled:
            return
        counters = self.record(stack).counters
        counters[counter] = counters.get(counter, 0) + amount

    def section(self, *stack: str):
        """A context manager timing one region: ``with profiler.section("vm"):``."""
        if not self.enabled:
            return _NULL_SECTION
        return _Section(self, stack)

    def clear(self) -> None:
        self.records.clear()

    # -- capsule transport ----------------------------------------------------

    def export_records(self) -> List[List]:
        """Every record as plain picklable data, stack-sorted.

        One row per stack path: ``[frames, calls, seconds, counters]``.
        This is the shape telemetry capsules carry across the pool
        boundary; :meth:`graft` is the inverse on the parent side.
        """
        return [
            [list(stack), record.calls, record.seconds, dict(record.counters)]
            for stack, record in sorted(self.records.items())
        ]

    def graft(self, rows: List[List], under: Tuple[str, ...]) -> None:
        """Re-root exported records beneath the ``under`` stack prefix.

        A worker's profile roots (``rosa.search`` and friends) become
        children of e.g. ``("engine", "worker:3", "execute")``, so
        process-mode attribution coverage holds: the engine's per-worker
        execute frames explain their time through the grafted subtrees.
        """
        if not self.enabled:
            return
        prefix = tuple(under)
        for frames, calls, seconds, counters in rows:
            record = self.record(prefix + tuple(frames))
            record.calls += calls
            record.seconds += seconds
            for key, amount in counters.items():
                record.counters[key] = record.counters.get(key, 0) + amount

    # -- derived views --------------------------------------------------------

    def self_seconds(self) -> Dict[StackPath, float]:
        """Exclusive (self) seconds per stack: total minus direct children.

        Collapsed-stack semantics: a line's count covers exactly that
        stack, so a parent whose children were timed separately must not
        re-count their share.  Overlap from measurement jitter clamps at
        zero rather than going negative.
        """
        selfs = {stack: record.seconds for stack, record in self.records.items()}
        for stack, record in self.records.items():
            if len(stack) > 1:
                parent = stack[:-1]
                if parent in selfs:
                    selfs[parent] -= record.seconds
        return {stack: max(seconds, 0.0) for stack, seconds in selfs.items()}

    def to_collapsed(self) -> str:
        """The profile in collapsed-stack (``flamegraph.pl``) format.

        One line per stack path, frames joined by ``;``, the trailing
        integer is self time in microseconds.  Lines are sorted for
        deterministic output; zero-weight stacks are dropped (flamegraph
        tools ignore them anyway).
        """
        lines: List[str] = []
        for stack, seconds in sorted(self.self_seconds().items()):
            weight = int(round(seconds * _COLLAPSED_UNIT))
            if weight > 0:
                lines.append(";".join(stack) + f" {weight}")
        return "\n".join(lines)

    def to_report(self) -> Dict:
        """The schema-versioned JSON document (dict) of the whole profile.

        ``records`` is stack-sorted; ``roots`` carries, per top-level
        frame, total seconds and the fraction attributed to named child
        frames — the coverage figure the acceptance gate checks.  When
        pool-worker capsules were grafted in (process/thread batch
        runs), a ``workers`` section reports the same coverage per
        ``("engine", "worker:N", "execute")`` subtree.
        """
        selfs = self.self_seconds()
        records = []
        child_seconds: Dict[str, float] = {}
        worker_child_seconds: Dict[StackPath, float] = {}
        for stack in sorted(self.records):
            record = self.records[stack]
            entry = {
                "stack": list(stack),
                "name": stack[-1],
                "calls": record.calls,
                "seconds": record.seconds,
                "self_seconds": selfs[stack],
            }
            if record.counters:
                entry["counters"] = dict(sorted(record.counters.items()))
            records.append(entry)
            if len(stack) == 2:
                root = stack[0]
                child_seconds[root] = child_seconds.get(root, 0.0) + record.seconds
            elif len(stack) == 4 and stack[0] == "engine" and stack[2] == "execute":
                parent = stack[:3]
                worker_child_seconds[parent] = (
                    worker_child_seconds.get(parent, 0.0) + record.seconds
                )
        roots = {}
        for stack, record in sorted(self.records.items()):
            if len(stack) != 1:
                continue
            root = stack[0]
            attributed = child_seconds.get(root, 0.0)
            roots[root] = {
                "seconds": record.seconds,
                "attributed_seconds": attributed,
                "attributed_fraction": (
                    min(attributed / record.seconds, 1.0) if record.seconds > 0 else 0.0
                ),
            }
        # Per-worker coverage, present only when execute frames have
        # grafted children — serial profiles keep their existing shape.
        workers = {}
        for parent, attributed in sorted(worker_child_seconds.items()):
            record = self.records.get(parent)
            if record is None:
                continue
            workers[parent[1]] = {
                "seconds": record.seconds,
                "attributed_seconds": attributed,
                "attributed_fraction": (
                    min(attributed / record.seconds, 1.0) if record.seconds > 0 else 0.0
                ),
            }
        report = {
            "schema": PROFILE_SCHEMA_VERSION,
            "unit": "seconds",
            "records": records,
            "roots": roots,
        }
        if workers:
            report["workers"] = workers
        return report

    def to_json(self) -> str:
        """:meth:`to_report` serialised deterministically."""
        return json.dumps(self.to_report(), indent=2, sort_keys=True)

    def render(self, limit: Optional[int] = None) -> str:
        """A human table, hottest self-time first (``privanalyzer profile``)."""
        if not self.records:
            return "(no profile records)"
        selfs = self.self_seconds()
        rows = sorted(
            self.records.items(), key=lambda item: (-selfs[item[0]], item[0])
        )
        if limit is not None:
            rows = rows[:limit]
        header = f"{'stack':<52} {'calls':>9} {'total ms':>10} {'self ms':>10}"
        lines = [header, "-" * len(header)]
        for stack, record in rows:
            label = ";".join(stack)
            if len(label) > 52:
                label = "..." + label[-49:]
            extra = ""
            if record.counters:
                extra = "  " + " ".join(
                    f"{key}={value}" for key, value in sorted(record.counters.items())
                )
            lines.append(
                f"{label:<52} {record.calls:>9} {record.seconds * 1000:>10.2f} "
                f"{selfs[stack] * 1000:>10.2f}{extra}"
            )
        return "\n".join(lines)


#: Shared disabled profiler for code paths that want "no profiling".
NULL_PROFILER = Profiler(enabled=False)
