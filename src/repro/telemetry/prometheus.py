"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders every instrument in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
Prometheus scraper (or ``promtool check metrics``) accepts:

* counters become ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* gauges become ``<ns>_<name>`` with ``# TYPE ... gauge``;
* histograms (streaming Welford aggregates, no buckets) become a
  ``summary`` pair ``_count``/``_sum`` plus ``_min``/``_max`` gauges —
  everything the snapshot retains.

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(dots in our dotted names become underscores) and prefixed with a
namespace, ``privanalyzer`` by default.  Labeled instrument names
(:func:`repro.telemetry.metrics.labeled_name` spellings such as
``rosa.cache.hits{worker="3"}``, the per-worker variants telemetry
capsules merge in) split into a sanitised family name plus a verbatim
label set, and the family's ``HELP``/``TYPE`` header is emitted once
however many label series it has.
"""

from __future__ import annotations

import math
import re
from typing import List, Tuple, Union

from repro.telemetry.metrics import MetricsRegistry

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABELED = re.compile(r"^(?P<base>[^{]+)(?P<labels>\{.*\})$")


def split_labels(name: str) -> Tuple[str, str]:
    """Split ``name{worker="3"}`` into ``("name", '{worker="3"}')``.

    Unlabeled names return an empty label part.
    """
    match = _LABELED.match(name)
    if match is None:
        return name, ""
    return match.group("base"), match.group("labels")


def prometheus_name(name: str, namespace: str = "privanalyzer") -> str:
    """Sanitise one dotted metric name into the Prometheus grammar.

    A label part (``{key="value"}``), if present, survives verbatim —
    only the family name is sanitised.
    """
    base, labels = split_labels(name)
    safe = _INVALID_CHARS.sub("_", base)
    if namespace:
        safe = f"{namespace}_{safe}"
    if not safe or not (safe[0].isalpha() or safe[0] in "_:"):
        safe = "_" + safe
    return safe + labels


def _escape_help(text: str) -> str:
    """HELP text per the exposition format: escape backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    """One sample value, with the format's spellings for the specials."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def metrics_to_prometheus(
    metrics: MetricsRegistry, namespace: str = "privanalyzer"
) -> str:
    """The whole registry in text exposition format (empty registry → '')."""
    lines: List[str] = []
    seen_meta: set = set()

    def series(family: str, labels: str, kind: str, value, help_text: str) -> None:
        # One HELP/TYPE header per family: the registry stores labeled
        # variants as separate instruments, but the exposition format
        # wants one family carrying many label sets.  Snapshot order is
        # name-sorted, so the unlabeled series (if any) leads its family.
        if family not in seen_meta:
            lines.append(f"# HELP {family} {_escape_help(help_text)}")
            lines.append(f"# TYPE {family} {kind}")
            seen_meta.add(family)
        lines.append(f"{family}{labels} {_format_value(value)}")

    for name, snapshot in metrics.snapshot().items():
        raw_base, labels = split_labels(name)
        base, _ = split_labels(prometheus_name(name, namespace))
        if snapshot["type"] == "counter":
            series(f"{base}_total", labels, "counter", snapshot["value"], raw_base)
        elif snapshot["type"] == "gauge":
            series(base, labels, "gauge", snapshot["value"], raw_base)
        else:  # histogram → summary (_sum/_count) plus min/max gauges
            # Canonical summary series order: _sum then _count.
            if base not in seen_meta:
                lines.append(f"# HELP {base} {_escape_help(raw_base)}")
                lines.append(f"# TYPE {base} summary")
                seen_meta.add(base)
            lines.append(f"{base}_sum{labels} {_format_value(snapshot['sum'])}")
            lines.append(f"{base}_count{labels} {_format_value(snapshot['count'])}")
            series(f"{base}_min", labels, "gauge", snapshot["min"], f"{raw_base} minimum")
            series(f"{base}_max", labels, "gauge", snapshot["max"], f"{raw_base} maximum")
    return "\n".join(lines) + "\n" if lines else ""
