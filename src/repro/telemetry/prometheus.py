"""Prometheus text exposition of a :class:`MetricsRegistry`.

Renders every instrument in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ a
Prometheus scraper (or ``promtool check metrics``) accepts:

* counters become ``<ns>_<name>_total`` with ``# TYPE ... counter``;
* gauges become ``<ns>_<name>`` with ``# TYPE ... gauge``;
* histograms (streaming Welford aggregates, no buckets) become a
  ``summary`` pair ``_count``/``_sum`` plus ``_min``/``_max`` gauges —
  everything the snapshot retains.

Metric names are sanitised to the ``[a-zA-Z_:][a-zA-Z0-9_:]*`` grammar
(dots in our dotted names become underscores) and prefixed with a
namespace, ``privanalyzer`` by default.
"""

from __future__ import annotations

import math
import re
from typing import List, Union

from repro.telemetry.metrics import MetricsRegistry

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, namespace: str = "privanalyzer") -> str:
    """Sanitise one dotted metric name into the Prometheus grammar."""
    safe = _INVALID_CHARS.sub("_", name)
    if namespace:
        safe = f"{namespace}_{safe}"
    if not safe or not (safe[0].isalpha() or safe[0] in "_:"):
        safe = "_" + safe
    return safe


def _escape_help(text: str) -> str:
    """HELP text per the exposition format: escape backslash and newline."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Union[int, float]) -> str:
    """One sample value, with the format's spellings for the specials."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def metrics_to_prometheus(
    metrics: MetricsRegistry, namespace: str = "privanalyzer"
) -> str:
    """The whole registry in text exposition format (empty registry → '')."""
    lines: List[str] = []

    def series(full_name: str, kind: str, value, help_text: str) -> None:
        lines.append(f"# HELP {full_name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {full_name} {kind}")
        lines.append(f"{full_name} {_format_value(value)}")

    for name, snapshot in metrics.snapshot().items():
        base = prometheus_name(name, namespace)
        if snapshot["type"] == "counter":
            series(f"{base}_total", "counter", snapshot["value"], name)
        elif snapshot["type"] == "gauge":
            series(base, "gauge", snapshot["value"], name)
        else:  # histogram → summary (_sum/_count) plus min/max gauges
            # Canonical summary series order: _sum then _count.
            lines.append(f"# HELP {base} {_escape_help(name)}")
            lines.append(f"# TYPE {base} summary")
            lines.append(f"{base}_sum {_format_value(snapshot['sum'])}")
            lines.append(f"{base}_count {_format_value(snapshot['count'])}")
            series(f"{base}_min", "gauge", snapshot["min"], f"{name} minimum")
            series(f"{base}_max", "gauge", snapshot["max"], f"{name} maximum")
    return "\n".join(lines) + "\n" if lines else ""
