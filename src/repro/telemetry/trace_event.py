"""Chrome trace-event / Perfetto JSON export of finished spans.

The trace-event format (the ``chrome://tracing`` JSON schema, which
Perfetto's UI and ``trace_processor`` ingest directly) is an array of
event objects.  We emit:

* one ``ph: "M"`` *metadata* event naming the process, so viewers show
  ``privanalyzer`` instead of ``pid 1``;
* one ``ph: "X"`` *complete* event per finished span — ``ts``/``dur``
  are **microseconds** (the format's unit), span attributes travel in
  ``args``;
* optionally one ``ph: "C"`` *counter* event per counter/gauge metric,
  stamped at the end of the trace, so the registry's final readings
  render as counter tracks alongside the spans.

Main-session spans share one ``pid``/``tid``: the pipeline is
single-threaded and complete events nest by their timestamps, so the
viewer rebuilds the same tree ``render_span_tree`` prints.  Spans merged
from pool-worker telemetry capsules carry a ``worker`` attribute
(``worker:N``); each distinct worker gets its own ``tid`` track, named
by a ``thread_name`` metadata event, so a ``--jobs 4`` run renders as
one process with a ``main`` track plus one track per worker.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

#: The trace-event clock unit is microseconds.
_MICROSECONDS = 1_000_000.0

_WORKER_ID = re.compile(r"^worker:(\d+)$")


def _worker_tid(worker: Any, assigned: Dict[str, int], tid: int) -> int:
    """The track id for one span's ``worker`` attribute.

    ``worker:N`` maps to ``tid + 1 + N`` (track order matches worker
    ids); any other spelling gets the next free track, first seen first.
    """
    name = str(worker)
    track = assigned.get(name)
    if track is not None:
        return track
    match = _WORKER_ID.match(name)
    if match is not None:
        track = tid + 1 + int(match.group(1))
    else:
        track = tid + 1 + len(assigned)
        while track in assigned.values():
            track += 1
    assigned[name] = track
    return track


def spans_to_trace_events(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    pid: int = 1,
    tid: int = 1,
    process_name: str = "privanalyzer",
) -> List[Dict[str, Any]]:
    """Finished spans (and final metric readings) as trace-event dicts."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        }
    ]
    trace_end = 0.0
    worker_tids: Dict[str, int] = {}
    for span in tracer.finished:
        end = span.end if span.end is not None else span.start
        if end > trace_end:
            trace_end = end
        worker = span.attributes.get("worker")
        span_tid = (
            _worker_tid(worker, worker_tids, tid) if worker is not None else tid
        )
        events.append(
            {
                "name": span.name,
                "cat": "pipeline",
                "ph": "X",
                "ts": span.start * _MICROSECONDS,
                "dur": span.duration * _MICROSECONDS,
                "pid": pid,
                "tid": span_tid,
                "args": dict(span.attributes),
            }
        )
    if worker_tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": "main"},
            }
        )
        for name, worker_tid in sorted(worker_tids.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": worker_tid,
                    "args": {"name": name},
                }
            )
    if metrics is not None:
        for name, snapshot in metrics.snapshot().items():
            if snapshot["type"] not in ("counter", "gauge"):
                continue  # histograms have no single track value
            events.append(
                {
                    "name": name,
                    "cat": "metrics",
                    "ph": "C",
                    "ts": trace_end * _MICROSECONDS,
                    "pid": pid,
                    "tid": tid,
                    "args": {"value": snapshot["value"]},
                }
            )
    return events


def trace_event_json(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    pid: int = 1,
    tid: int = 1,
    process_name: str = "privanalyzer",
) -> str:
    """The trace as one JSON array — the file a trace viewer opens.

    Non-JSON attribute values degrade to their ``repr``, mirroring
    :func:`repro.telemetry.export.spans_to_jsonl`.
    """
    events = spans_to_trace_events(
        tracer, metrics, pid=pid, tid=tid, process_name=process_name
    )
    return json.dumps(events, sort_keys=True, default=repr)
