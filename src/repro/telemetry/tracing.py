"""Structured span tracing for the PrivAnalyzer pipeline.

A :class:`Span` is one named, timed region of work with arbitrary
key/value attributes; spans nest, forming the trace tree of one pipeline
run (``pipeline.analyze`` → ``compile`` → ``autopriv.transform`` …).
A :class:`Tracer` hands out spans as context managers and keeps every
finished span, in end order, for the exporters in
:mod:`repro.telemetry.export`.

Two properties the rest of the codebase relies on:

* **no-op fast path** — a disabled tracer returns one preallocated inert
  span, records nothing, and allocates nothing, so instrumented code can
  call ``tracer.span(...)`` unconditionally in hot paths;
* **deterministic timing** — the tracer timestamps through an injectable
  clock (:mod:`repro.telemetry.clock`), so tests assert exact durations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.telemetry.clock import Clock, MONOTONIC


class Span:
    """One timed region: name, parent, start/end, attributes."""

    __slots__ = ("tracer", "span_id", "parent_id", "name", "start", "end", "attributes", "depth")

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        depth: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes
        self.depth = depth

    @property
    def duration(self) -> float:
        """Seconds between start and end (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    def set_attribute(self, key: str, value: Any) -> "Span":
        self.attributes[key] = value
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", f"{exc_type.__name__}: {exc}")
        self.tracer._finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1000:.3f} ms" if self.end is not None else "open"
        return f"<Span {self.name!r} {state} attrs={self.attributes}>"


class _NullSpan:
    """The inert span a disabled tracer returns.  One shared instance."""

    __slots__ = ()
    name = ""
    attributes: Dict[str, Any] = {}
    duration = 0.0

    def set_attribute(self, key: str, value: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Tracer:
    """Hands out nested spans and retains the finished ones.

    Single-threaded by design (the pipeline is single-threaded); the
    open-span stack is a plain list.  ``finished`` holds spans in *end*
    order — children before parents — which JSONL exports preserve;
    tree renderers re-sort by start time.
    """

    def __init__(self, clock: Clock = MONOTONIC, enabled: bool = True) -> None:
        self.clock = clock
        self.enabled = enabled
        self.finished: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    def span(self, name: str, **attributes: Any):
        """Open a span as a context manager: ``with tracer.span("compile"):``."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(
            tracer=self,
            span_id=self._next_id,
            parent_id=self._stack[-1].span_id if self._stack else None,
            name=name,
            start=self.clock(),
            depth=len(self._stack),
            attributes=dict(attributes),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        # Close abandoned inner spans too (an exception may have skipped
        # their __exit__ when raised between sibling spans).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
                self.finished.append(dangling)
        if self._stack:
            self._stack.pop()
        self.finished.append(span)

    def adopt_spans(
        self,
        span_dicts,
        offset: float = 0.0,
        parent: Optional[Span] = None,
        attributes: Optional[Dict[str, Any]] = None,
    ) -> int:
        """Re-home finished spans recorded by another tracer.

        ``span_dicts`` are :func:`~repro.telemetry.export.span_to_dict`
        dicts (the shape telemetry capsules carry).  Foreign span ids
        are remapped into this tracer's id space with parent/child
        structure preserved; foreign roots attach under ``parent``
        (default: the innermost open span).  ``offset`` shifts the
        foreign clock readings into this tracer's clock domain, and
        ``attributes`` (e.g. ``{"worker": "worker:3"}``) are stamped
        onto every adopted span.  Returns the number adopted.
        """
        if not self.enabled or not span_dicts:
            return 0
        if parent is None:
            parent = self.current
        local_parent_id = parent.span_id if parent is not None else None
        base_depth = parent.depth + 1 if parent is not None else 0
        # Capsule spans arrive in end order (children before parents),
        # so ids are assigned in a first pass and resolved in a second.
        new_ids: Dict[int, int] = {}
        by_id: Dict[int, Dict[str, Any]] = {}
        for data in span_dicts:
            new_ids[data["span_id"]] = self._next_id
            self._next_id += 1
            by_id[data["span_id"]] = data

        def foreign_depth(data: Dict[str, Any]) -> int:
            depth = 0
            while data["parent_id"] in by_id:
                data = by_id[data["parent_id"]]
                depth += 1
            return depth

        for data in span_dicts:
            attrs = dict(data.get("attributes") or {})
            if attributes:
                attrs.update(attributes)
            foreign_parent = data.get("parent_id")
            span = Span(
                tracer=self,
                span_id=new_ids[data["span_id"]],
                parent_id=(
                    new_ids[foreign_parent]
                    if foreign_parent in new_ids
                    else local_parent_id
                ),
                name=data["name"],
                start=data["start"] + offset,
                depth=base_depth + foreign_depth(data),
                attributes=attrs,
            )
            end = data.get("end")
            span.end = (end if end is not None else data["start"]) + offset
            self.finished.append(span)
        return len(span_dicts)

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def names(self) -> List[str]:
        """Names of finished spans, in end order."""
        return [span.name for span in self.finished]

    def clear(self) -> None:
        self.finished.clear()
        self._stack.clear()
        self._next_id = 1


#: Shared disabled tracer for code paths that want "no telemetry".
NULL_TRACER = Tracer(enabled=False)
