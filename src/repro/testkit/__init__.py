"""The conformance testkit: seeded generators, differential oracles,
metamorphic properties, fault injection, and the fuzz campaign driver.

PRs 2–3 introduced several "must be bit-identical" equivalences:

* query-cache **on vs off** must never change a verdict;
* **serial vs thread vs process** pools must agree search for search;
* the VM's **dispatch table vs straight-line reference** evaluation must
  retire the same instructions to the same final kernel state;
* a run **ledger** written, read back and diffed against itself must be
  clean.

Each was checked by a handful of hand-written cases; this package checks
them against *generated* inputs instead.  Everything is seeded
(``random.Random(seed)``, no third-party dependency): the same seed
always produces the same programs, configurations and queries, so every
failure is replayable from one small JSON file.

Modules:

* :mod:`repro.testkit.generators` — seeded case generators (PrivC
  programs, ROSA configurations, capability/credential tuples, attack
  query batches, kernel syscall traces) plus the case→input builders;
* :mod:`repro.testkit.reference` — independent reference
  implementations (the straight-line VM evaluator);
* :mod:`repro.testkit.oracles` — the differential oracles and the
  metamorphic properties, each a named family;
* :mod:`repro.testkit.shrink` — the greedy case shrinker;
* :mod:`repro.testkit.faults` — artificial bug injection, to prove the
  oracles actually detect the class of bug they exist for;
* :mod:`repro.testkit.fuzz` — the campaign driver behind
  ``privanalyzer fuzz`` (runs, shrinking, repro files, replay).

See ``docs/TESTING.md`` for the workflow.
"""

from repro.testkit.fuzz import (
    CampaignResult,
    load_repro,
    replay_repro,
    run_campaign,
    write_repro,
)
from repro.testkit.oracles import ALL_FAMILIES, DEFAULT_FAMILIES, OracleResult, family
from repro.testkit.shrink import greedy_shrink

__all__ = [
    "ALL_FAMILIES",
    "CampaignResult",
    "DEFAULT_FAMILIES",
    "OracleResult",
    "family",
    "greedy_shrink",
    "load_repro",
    "replay_repro",
    "run_campaign",
    "write_repro",
]
