"""Artificial bug injection.

An oracle that has never caught a bug proves nothing: maybe the code is
correct, maybe the oracle compares the wrong things.  Each named fault
here plants a realistic bug in one production component; the test suite
(and ``privanalyzer fuzz --inject``) then demonstrates that the matching
oracle family catches it, shrinks the triggering case, and replays it.

Faults are installed with the :func:`install_fault` context manager and
always fully undone on exit, even on error — the patched objects are
module/class attributes, never copies.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import signal
from typing import Callable, Dict

#: Registered fault names → installer.  An installer patches production
#: code and returns a zero-argument undo callable.
FAULTS: Dict[str, Callable[[], Callable[[], None]]] = {}


def fault(name: str):
    """Register a fault installer under ``name``."""

    def register(installer: Callable[[], Callable[[], None]]):
        FAULTS[name] = installer
        return installer

    return register


@contextlib.contextmanager
def install_fault(name: str):
    """Install the named fault for the duration of the ``with`` block."""
    if name not in FAULTS:
        raise ValueError(
            f"unknown fault {name!r}; known: {', '.join(sorted(FAULTS))}"
        )
    undo = FAULTS[name]()
    try:
        yield
    finally:
        undo()


@fault("vm-mul-truncate")
def _vm_mul_truncate() -> Callable[[], None]:
    """The production VM silently truncates large ``mul`` results.

    Models a narrowing bug in the shared ``BINARY_OPS`` semantics table,
    which *both* production cores consult — the dispatch loop at every
    retired instruction, the compiled core when it specializes a ``mul``
    closure (per-VM caches, so interpreters built inside the fault
    window compile the bug in).  The reference interpreter inlines its
    own arithmetic and stays correct — exactly the disagreement the
    ``vm`` oracle family exists to catch.  (The ``compiled`` family
    deliberately does *not* catch this one: both production strategies
    share the table and agree with each other — see
    ``compiled-mul-truncate`` for its bug class.)
    """
    from repro.ir import instructions

    original = instructions.BINARY_OPS["mul"]

    def buggy_mul(a, b):
        raw = a * b
        if abs(raw) >= 64:
            raw &= 63
        return raw

    instructions.BINARY_OPS["mul"] = buggy_mul

    def undo() -> None:
        instructions.BINARY_OPS["mul"] = original

    return undo


@fault("compiled-mul-truncate")
def _compiled_mul_truncate() -> Callable[[], None]:
    """The compiled core bakes a stale ``mul`` into its closures.

    Models compile-time-captured semantics drifting from the dispatch
    loop's — a table updated in one place but not the other.  Only the
    compiler module's ``BINARY_OPS`` binding is rebound (to a copy with
    a truncating ``mul``), so the dispatch loop and the reference
    evaluator stay correct: the ``compiled`` oracle family's
    compiled-vs-dispatch comparison is what catches it.
    """
    from repro.vm import compiled

    original = compiled.BINARY_OPS

    def buggy_mul(a, b):
        raw = a * b
        if abs(raw) >= 64:
            raw &= 63
        return raw

    compiled.BINARY_OPS = {**original, "mul": buggy_mul}

    def undo() -> None:
        compiled.BINARY_OPS = original

    return undo


@fault("cache-verdict-flip")
def _cache_verdict_flip() -> Callable[[], None]:
    """The query cache flips every verdict it serves.

    Models a corrupted or mis-keyed cache entry.  Cache-off runs search
    live and stay correct, so the ``cache`` oracle's on-vs-off comparison
    catches the first served hit.
    """
    from repro.rosa.engine import QueryCache, _CacheEntry
    from repro.rosa.query import Verdict

    original = QueryCache.get
    flipped = {
        Verdict.VULNERABLE.value: Verdict.INVULNERABLE.value,
        Verdict.INVULNERABLE.value: Verdict.VULNERABLE.value,
    }

    def buggy_get(self, key):
        entry = original(self, key)
        if entry is None:
            return None
        outcome = dataclasses.replace(
            entry.outcome,
            verdict=flipped.get(entry.outcome.verdict, entry.outcome.verdict),
        )
        return _CacheEntry(outcome=outcome, report=None)

    QueryCache.get = buggy_get

    def undo() -> None:
        QueryCache.get = original

    return undo


@fault("profile-ledger-skew")
def _profile_ledger_skew() -> Callable[[], None]:
    """The ledger writer drops the final phase record from exposure.json.

    Models an off-by-one in the ledger's serialisation path.  Only the
    ``ledger`` module's ``analysis_to_dict`` binding is rebound, so the
    live extraction (``repro.corpus.profile`` imports the report
    function directly) stays correct — and the ``ledger`` family's
    self-diff is blind to the bug, because *both* captures it compares
    carry the same skew.  The ``profile`` oracle family's live-vs-ledger
    comparison is what catches it: phase counts, hold times and
    credential-tuple counts all drift the moment a phase goes missing.
    """
    from repro.core import ledger

    original = ledger.analysis_to_dict

    def skewed(analysis):
        data = original(analysis)
        if data.get("phases"):
            data = dict(data)
            data["phases"] = data["phases"][:-1]
        return data

    ledger.analysis_to_dict = skewed

    def undo() -> None:
        ledger.analysis_to_dict = original

    return undo


@fault("store-attestation-skew")
def _store_attestation_skew() -> Callable[[], None]:
    """Every published store object is corrupted after attestation.

    Models bit rot (or a hostile writer) between the attestation being
    computed and the object landing on disk: the written outcome's
    ``states_explored`` is bumped by one, so the recorded attestation no
    longer covers what the file says.  The fail-closed read path rejects
    every such entry and recomputes live — verdicts never flip — so the
    ``store`` oracle family catches this as a serving-efficacy failure
    (a warm engine with zero store hits and nonzero rejections), which
    is exactly the behaviour the fail-closed design promises.  The
    ``cache`` family is blind: the in-memory cache never touches disk.
    """
    import json

    from repro.rosa.store import SharedVerdictStore

    original = SharedVerdictStore.put

    def corrupting_put(self, key, outcome):
        published = original(self, key, outcome)
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            entry["outcome"]["states_explored"] = (
                int(entry["outcome"].get("states_explored", 0)) + 1
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True)
        except (OSError, KeyError, TypeError, ValueError):
            pass
        return published

    SharedVerdictStore.put = corrupting_put

    def undo() -> None:
        SharedVerdictStore.put = original

    return undo


@dataclasses.dataclass(frozen=True)
class CrashingSpec:
    """A picklable query spec whose ``build()`` kills its process.

    Stands in for a worker lost to the OOM killer or a native crash.
    Submitting it through the engine's process pool must surface the
    engine's broken-pool diagnostic, not a hang or a bare
    ``BrokenProcessPool`` — see ``tests/test_worker_crash.py``.
    """

    label: str = "crash"

    def build(self):
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable: SIGKILL is immediate")
