"""The fuzz campaign driver behind ``privanalyzer fuzz``.

A campaign runs ``runs`` cases per oracle family, each drawn from a
per-run :class:`random.Random` seeded with ``"{seed}:{family}:{run}"``
— so any single run is reproducible without replaying the whole
campaign, and adding runs never perturbs earlier ones.  A failing case
is greedily shrunk (re-running the oracle under the same fault
injection, if any) and written to a **repro file** under
``artifacts/fuzz/`` that replays in one command::

    privanalyzer fuzz --replay artifacts/fuzz/vm-seed0-run7.json

Repro files carry everything replay needs: the family, the (shrunk)
case, the injected fault name, and the original seed coordinates.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import random
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.testkit.faults import install_fault
from repro.testkit.oracles import DEFAULT_FAMILIES, OracleResult, family
from repro.testkit.shrink import case_size, greedy_shrink

#: Bump when the repro file format changes.
REPRO_SCHEMA_VERSION = 1


@dataclasses.dataclass
class FailureRecord:
    """One failing case, after shrinking."""

    family: str
    seed: int
    run: int
    details: str
    repro_path: Optional[str]
    original_size: int
    shrunk_size: int
    shrink_attempts: int


@dataclasses.dataclass
class CampaignResult:
    """Everything one campaign did."""

    seed: int
    runs: int
    families: Sequence[str]
    executed: int = 0
    skipped: int = 0
    failures: List[FailureRecord] = dataclasses.field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures


def _run_guarded(family_name: str, case: Dict[str, Any], inject: Optional[str]):
    """One oracle invocation; crashes count as failures, with the traceback."""
    oracle = family(family_name)
    guard = install_fault(inject) if inject else contextlib.nullcontext()
    try:
        with guard:
            return oracle.run(case)
    except Exception as error:  # noqa: BLE001 - any crash is a finding
        return OracleResult(
            family=family_name,
            ok=False,
            details=f"oracle crashed: {type(error).__name__}: {error}",
        )


def run_campaign(
    seed: int,
    runs: int,
    max_size: int = 20,
    families: Sequence[str] = DEFAULT_FAMILIES,
    artifacts_dir: Union[str, Path, None] = "artifacts/fuzz",
    inject: Optional[str] = None,
    log: Optional[Callable[[str], None]] = None,
    max_shrink_attempts: int = 200,
) -> CampaignResult:
    """Run one seeded campaign; shrink and record every failure."""
    emit = log or (lambda message: None)
    result = CampaignResult(seed=seed, runs=runs, families=tuple(families))
    for family_name in families:
        oracle = family(family_name)  # fail fast on unknown names
        failures_before = len(result.failures)
        for run in range(runs):
            rng = random.Random(f"{seed}:{family_name}:{run}")
            case = oracle.generate(rng, max_size)
            outcome = _run_guarded(family_name, case, inject)
            result.executed += 1
            if outcome.skipped:
                result.skipped += 1
                continue
            if outcome.ok:
                continue
            emit(f"{family_name}: run {run} FAILED — shrinking…")
            shrunk, attempts = greedy_shrink(
                case,
                lambda candidate: _run_guarded(
                    family_name, candidate, inject
                ).failed,
                oracle.shrink_candidates,
                max_attempts=max_shrink_attempts,
            )
            final = _run_guarded(family_name, shrunk, inject)
            record = FailureRecord(
                family=family_name,
                seed=seed,
                run=run,
                details=final.details or outcome.details,
                repro_path=None,
                original_size=case_size(case),
                shrunk_size=case_size(shrunk),
                shrink_attempts=attempts,
            )
            if artifacts_dir is not None:
                record.repro_path = str(
                    write_repro(artifacts_dir, record, shrunk, inject)
                )
                emit(
                    f"{family_name}: shrunk {record.original_size} -> "
                    f"{record.shrunk_size} nodes ({attempts} attempts); "
                    f"repro: {record.repro_path}"
                )
            result.failures.append(record)
        found = len(result.failures) - failures_before
        emit(
            f"{family_name}: {runs} runs, "
            + ("all passed" if not found else f"{found} failure(s)")
        )
    return result


# -- repro files --------------------------------------------------------------


def write_repro(
    artifacts_dir: Union[str, Path],
    record: FailureRecord,
    case: Dict[str, Any],
    inject: Optional[str],
) -> Path:
    """Write one replayable repro file; returns its path."""
    root = Path(artifacts_dir)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{record.family}-seed{record.seed}-run{record.run}.json"
    payload = {
        "schema": REPRO_SCHEMA_VERSION,
        "kind": "privanalyzer-fuzz-repro",
        "family": record.family,
        "seed": record.seed,
        "run": record.run,
        "inject": inject,
        "details": record.details,
        "original_size": record.original_size,
        "shrunk_size": record.shrunk_size,
        "case": case,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> Dict[str, Any]:
    """Load and validate one repro file."""
    try:
        data = json.loads(Path(path).read_text())
    except ValueError as error:
        raise ValueError(f"corrupt repro file {path}: {error}") from error
    if not isinstance(data, dict) or data.get("kind") != "privanalyzer-fuzz-repro":
        raise ValueError(f"{path} is not a privanalyzer fuzz repro file")
    if data.get("schema") != REPRO_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has repro schema {data.get('schema')!r}, "
            f"this tool reads version {REPRO_SCHEMA_VERSION}"
        )
    for field in ("family", "case"):
        if field not in data:
            raise ValueError(f"{path} is missing the {field!r} field")
    return data


def replay_repro(path: Union[str, Path]) -> OracleResult:
    """Re-run one repro file's case (re-installing its injected fault)."""
    data = load_repro(path)
    return _run_guarded(data["family"], data["case"], data.get("inject"))
