"""Seeded case generators and the case→input builders.

Every generator is a pure function of a ``random.Random`` instance: the
same seed yields the same case, on any machine, forever.  Cases are
plain JSON-able dictionaries — *not* live objects — so a failing case
can be written to a repro file, shrunk structurally, and rebuilt
bit-identically at replay time.  The ``build_*`` functions turn cases
into the live inputs the oracles feed to paired implementations.

Four input domains are covered:

* **PrivC programs** (:func:`gen_program_case`) — a bounded statement/
  expression grammar over integer variables plus the intrinsic surface
  (``priv_*``, credential setters, file and socket syscalls).  Rendered
  programs always compile, always terminate (loops have literal trip
  counts) and always exit 0 from ``main``, so they run through the whole
  pipeline as well as through bare interpreters.
* **ROSA configurations** (:func:`gen_config_case`) — processes, users,
  groups, files, directory entries and wildcard syscall messages within
  bounded sizes, mirroring the paper's Figure 2 shape.
* **Attack query batches** (:func:`gen_batch_case`) — (attack ×
  capability set × credential tuple × syscall surface) combinations with
  picklable specs, exactly what the pipeline feeds the query engine.
* **Kernel syscall traces** (:func:`gen_trace_case`) — straight-line
  sequences of ``sys_*`` calls against a fresh simulated machine.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.caps import CapabilitySet
from repro.core.attacks import ALL_ATTACKS, ATTACKS_BY_ID
from repro.programs.common import ProgramSpec
from repro.rewriting import Configuration, SearchBudget
from repro.rosa import model, syscalls
from repro.rosa.engine import QueryRequest

Case = Dict[str, Any]

#: Capabilities the generators draw from: the ones the paper's programs
#: and the modeled attacks actually exercise, so generated queries have
#: interesting (not vacuously invulnerable) state spaces.
CAP_POOL = (
    "CapChown",
    "CapDacOverride",
    "CapDacReadSearch",
    "CapFowner",
    "CapKill",
    "CapNetBindService",
    "CapSetgid",
    "CapSetuid",
)

#: Uids/gids the generators draw from (see ``repro.oskernel.setup``).
UID_POOL = (0, 998, 1000, 1001, 2000)
GID_POOL = (0, 15, 42, 998, 1000, 1001)

#: ROSA message kinds a generated syscall surface may contain (the value
#: side of ``repro.core.extract.INTRINSIC_TO_ROSA``).
SURFACE_POOL = (
    "open_read",
    "open_write",
    "setuid",
    "seteuid",
    "setresuid",
    "setgid",
    "setegid",
    "setresgid",
    "setgroups",
    "kill",
    "chmod",
    "fchmod",
    "chown",
    "fchown",
    "unlink",
    "rename",
    "socket",
    "bind",
    "connect",
)


def subset(rng: random.Random, pool, low: int = 0, high: int = None) -> List:
    """A sorted random subset of ``pool`` with ``low``–``high`` elements.

    Unordered pools (sets, frozensets, dict views) are canonicalized
    before sampling: ``rng.sample`` picks by *position*, so a
    hash-ordered pool would make the same seed draw different elements
    under ``PYTHONHASHSEED`` variation — corpus builds must be
    byte-identical across interpreter launches.  Sequences keep the
    caller's order so existing seeds keep their draws.
    """
    items = list(pool) if isinstance(pool, (list, tuple)) else sorted(pool, key=str)
    high = len(items) if high is None else min(high, len(items))
    count = rng.randint(low, high)
    return sorted(rng.sample(items, count), key=str)


def gen_capset_names(rng: random.Random, max_size: int = 4) -> List[str]:
    """A random permitted capability set, as camel-case names."""
    return subset(rng, CAP_POOL, 0, max(1, max_size))


def gen_credentials(
    rng: random.Random,
) -> Tuple[List[int], List[int]]:
    """Random (ruid, euid, suid) and (rgid, egid, sgid) triples.

    Half the time the triple is uniform (a plain login shell); otherwise
    the three ids are drawn independently, covering the saved-id states
    privilege-separated servers pass through.
    """

    def triple(pool) -> List[int]:
        if rng.random() < 0.5:
            value = rng.choice(pool)
            return [value, value, value]
        return [rng.choice(pool) for _ in range(3)]

    return triple(UID_POOL), triple(GID_POOL)


# -- attack query batches ------------------------------------------------------


def gen_query_case(rng: random.Random, max_size: int = 20) -> Case:
    """One (attack, caps, credentials, surface) question, as a case."""
    uids, gids = gen_credentials(rng)
    return {
        "attack": rng.choice([attack.attack_id for attack in ALL_ATTACKS]),
        "caps": gen_capset_names(rng, max_size=3),
        "uids": uids,
        "gids": gids,
        "surface": subset(rng, SURFACE_POOL, 0, max(2, min(6, max_size // 3))),
        "repeat": rng.choice([1, 1, 1, 2]),
        "max_states": 20_000,
    }


def gen_batch_case(rng: random.Random, max_size: int = 20) -> Case:
    """A batch of query cases, as the pipeline would submit them.

    Batches deliberately repeat cases sometimes: deduplication and cache
    sharing are part of the behaviour under test.
    """
    count = rng.randint(1, max(2, max_size // 5))
    queries = [gen_query_case(rng, max_size) for _ in range(count)]
    if len(queries) > 1 and rng.random() < 0.5:
        queries.append(dict(rng.choice(queries)))
    return {"queries": queries}


def build_query_request(case: Case) -> QueryRequest:
    """The live (query, spec, budget) triple of one query case."""
    attack = ATTACKS_BY_ID[case["attack"]]
    caps = CapabilitySet(case["caps"])
    uids = tuple(case["uids"])
    gids = tuple(case["gids"])
    surface = frozenset(case["surface"])
    repeat = int(case.get("repeat", 1))
    budget = SearchBudget(max_states=int(case.get("max_states", 20_000)))
    return QueryRequest(
        query=attack.build_query(caps, uids, gids, surface, repeat=repeat),
        budget=budget,
        spec=attack.query_spec(caps, uids, gids, surface, repeat=repeat),
    )


def build_batch_requests(case: Case) -> List[QueryRequest]:
    return [build_query_request(query_case) for query_case in case["queries"]]


# -- ROSA configurations -------------------------------------------------------


def gen_config_case(rng: random.Random, max_size: int = 20) -> Case:
    """A bounded random configuration: objects plus wildcard messages.

    Sizes are kept small enough that the reachable state space usually
    exhausts within a few thousand states — the rule-order property needs
    exhaustion to compare reachable sets, and the oracles need speed.
    """
    uids, gids = gen_credentials(rng)
    caps = gen_capset_names(rng, max_size=3)
    file_count = rng.randint(1, 2)
    files = [
        {
            "oid": 10 + index,
            "owner": rng.choice(UID_POOL),
            "group": rng.choice(GID_POOL),
            "perms": rng.choice([0o600, 0o640, 0o644, 0o000, 0o666]),
        }
        for index in range(file_count)
    ]
    dirs = []
    if rng.random() < 0.6:
        dirs.append(
            {
                "oid": 30,
                "owner": rng.choice(UID_POOL),
                "group": rng.choice(GID_POOL),
                "perms": rng.choice([0o755, 0o700, 0o711]),
                "inode": rng.choice(files)["oid"],
            }
        )
    message_count = rng.randint(1, max(2, min(4, max_size // 5)))
    messages = [
        rng.choice(
            (
                "open_read",
                "open_write",
                "setuid",
                "seteuid",
                "setgid",
                "chmod",
                "chown",
                "kill",
                "unlink",
                "socket",
                "bind",
            )
        )
        for _ in range(message_count)
    ]
    return {
        "proc": {"uids": uids, "gids": gids},
        "caps": caps,
        "users": subset(rng, UID_POOL, 1, 3),
        "groups": subset(rng, GID_POOL, 1, 2),
        "files": files,
        "dirs": dirs,
        "ports": sorted(subset(rng, (22, 80, 8080), 0, 2)),
        "messages": messages,
        "max_states": 30_000,
    }


def build_configuration(case: Case) -> Configuration:
    """The live :class:`Configuration` of one config case."""
    pid = 1
    uids = case["proc"]["uids"]
    gids = case["proc"]["gids"]
    caps = frozenset(CapabilitySet(case["caps"]).as_frozenset())
    elements: List = [
        model.process(
            pid,
            ruid=uids[0], euid=uids[1], suid=uids[2],
            rgid=gids[0], egid=gids[1], sgid=gids[2],
        )
    ]
    for index, uid in enumerate(case["users"]):
        elements.append(model.user(40 + index, uid))
    for index, gid in enumerate(case["groups"]):
        elements.append(model.group(50 + index, gid))
    for entry in case["files"]:
        elements.append(
            model.file_obj(
                entry["oid"], name=f"/f{entry['oid']}",
                owner=entry["owner"], group=entry["group"], perms=entry["perms"],
            )
        )
    for entry in case["dirs"]:
        elements.append(
            model.dir_entry(
                entry["oid"], name=f"/d{entry['oid']}",
                owner=entry["owner"], group=entry["group"],
                perms=entry["perms"], inode=entry["inode"],
            )
        )
    for index, port in enumerate(case.get("ports", [])):
        elements.append(model.port_obj(60 + index, port))
    W = syscalls.WILDCARD
    builders = {
        "open_read": lambda: syscalls.sys_open(pid, W, syscalls.O_RDONLY, caps),
        "open_write": lambda: syscalls.sys_open(pid, W, syscalls.O_WRONLY, caps),
        "setuid": lambda: syscalls.sys_setuid(pid, W, caps),
        "seteuid": lambda: syscalls.sys_seteuid(pid, W, caps),
        "setgid": lambda: syscalls.sys_setgid(pid, W, caps),
        "chmod": lambda: syscalls.sys_chmod(pid, W, 0o777, caps),
        "chown": lambda: syscalls.sys_chown(pid, W, W, W, caps),
        "kill": lambda: syscalls.sys_kill(pid, W, model.SIGKILL, caps),
        "unlink": lambda: syscalls.sys_unlink(pid, W, caps),
        "socket": lambda: syscalls.sys_socket(pid, caps),
        "bind": lambda: syscalls.sys_bind(pid, W, W, caps),
    }
    for name in case["messages"]:
        elements.append(builders[name]())
    return Configuration(elements)


# -- PrivC programs ------------------------------------------------------------

#: Binary operators the expression generator may emit.  Shift and
#: division operands are constrained at generation time (literal shift
#: widths, non-zero literal divisors) so generated programs never hit
#: undefined arithmetic — both interpreters must agree on *defined*
#: behaviour, which is the property under test.
_EXPR_OPS = ("+", "-", "*", "&", "|", "^", "<", "<=", "==", "!=")
_DIV_OPS = ("/", "%")
_SHIFT_OPS = ("<<", ">>")

#: Paths that exist on every kernel ``build_kernel`` creates.
_PATH_POOL = ("/etc/passwd", "/etc/shadow", "/dev/null", "/dev/mem", "/var/log/sulog")

#: Nullary intrinsics usable inside expressions.
_EXPR_CALLS = ("getuid", "geteuid", "getgid", "getegid", "getpid")


def _gen_expr(rng: random.Random, vars_count: int, depth: int) -> List:
    roll = rng.random()
    if depth <= 0 or roll < 0.35:
        if vars_count and rng.random() < 0.5:
            return ["var", rng.randrange(vars_count)]
        return ["lit", rng.choice((0, 1, 2, 3, 7, 64, 255, 4096, -1, -17))]
    if roll < 0.45:
        return ["call", rng.choice(_EXPR_CALLS)]
    kind = rng.random()
    if kind < 0.15:
        op = rng.choice(_SHIFT_OPS)
        return [
            "bin", op,
            _gen_expr(rng, vars_count, depth - 1),
            ["lit", rng.randint(0, 8)],
        ]
    if kind < 0.3:
        op = rng.choice(_DIV_OPS)
        return [
            "bin", op,
            _gen_expr(rng, vars_count, depth - 1),
            ["lit", rng.choice((1, 2, 3, 7, 97))],
        ]
    return [
        "bin", rng.choice(_EXPR_OPS),
        _gen_expr(rng, vars_count, depth - 1),
        _gen_expr(rng, vars_count, depth - 1),
    ]


def _gen_stmt(rng: random.Random, vars_count: int, depth: int, budget: List[int]) -> List:
    budget[0] -= 1
    roll = rng.random()
    if depth > 0 and roll < 0.12 and budget[0] > 3:
        count = rng.randint(1, 3)
        body = _gen_block(rng, vars_count, depth - 1, budget)
        return ["loop", count, body]
    if depth > 0 and roll < 0.24 and budget[0] > 3:
        return [
            "if",
            _gen_expr(rng, vars_count, 2),
            _gen_block(rng, vars_count, depth - 1, budget),
            _gen_block(rng, vars_count, depth - 1, budget) if rng.random() < 0.5 else [],
        ]
    if roll < 0.34:
        return ["print", _gen_expr(rng, vars_count, 2)]
    if roll < 0.44:
        return ["priv", rng.choice(("raise", "lower", "remove")), rng.choice(CAP_POOL)]
    if roll < 0.56:
        sys_roll = rng.random()
        if sys_roll < 0.4:
            return [
                "open",
                rng.randrange(vars_count),
                rng.choice(_PATH_POOL),
                rng.choice(("r", "w")),
            ]
        if sys_roll < 0.55:
            return ["close", rng.randrange(vars_count)]
        if sys_roll < 0.7:
            return [
                "sys1",
                rng.choice(("setuid", "seteuid", "setgid", "setegid")),
                rng.choice((0, 1000, 1001)),
            ]
        if sys_roll < 0.85:
            return ["chmod", rng.choice(_PATH_POOL), rng.choice((0o600, 0o644, 0o755))]
        return ["sock", rng.randrange(vars_count), rng.choice((22, 8080))]
    return ["set", rng.randrange(vars_count), _gen_expr(rng, vars_count, 3)]


def _gen_block(
    rng: random.Random, vars_count: int, depth: int, budget: List[int]
) -> List[List]:
    count = rng.randint(1, 3)
    block = []
    for _ in range(count):
        if budget[0] <= 0:
            break
        block.append(_gen_stmt(rng, vars_count, depth, budget))
    return block


def gen_program_case(rng: random.Random, max_size: int = 20) -> Case:
    """A random PrivC program plus its launch configuration."""
    vars_count = rng.randint(2, 4)
    budget = [max(4, max_size)]
    body: List[List] = []
    while budget[0] > 0:
        body.append(_gen_stmt(rng, vars_count, 2, budget))
    return {
        "vars": vars_count,
        "body": body,
        "permitted": gen_capset_names(rng, max_size=4),
        "uid": rng.choice((0, 1000, 1001)),
        "gid": rng.choice((0, 1000)),
    }


_CAP_TO_CONST = {
    "CapChown": "CAP_CHOWN",
    "CapDacOverride": "CAP_DAC_OVERRIDE",
    "CapDacReadSearch": "CAP_DAC_READ_SEARCH",
    "CapFowner": "CAP_FOWNER",
    "CapKill": "CAP_KILL",
    "CapNetBindService": "CAP_NET_BIND_SERVICE",
    "CapSetgid": "CAP_SETGID",
    "CapSetuid": "CAP_SETUID",
    "CapSysAdmin": "CAP_SYS_ADMIN",
    "CapSysChroot": "CAP_SYS_CHROOT",
}


def _render_expr(expr: List) -> str:
    kind = expr[0]
    if kind == "lit":
        value = int(expr[1])
        return f"(0 - {-value})" if value < 0 else str(value)
    if kind == "var":
        return f"x{int(expr[1])}"
    if kind == "call":
        return f"{expr[1]}()"
    if kind == "bin":
        return f"({_render_expr(expr[2])} {expr[1]} {_render_expr(expr[3])})"
    raise ValueError(f"unknown expression node {expr!r}")


def _render_stmt(stmt: List, vars_count: int, indent: str, lines: List[str]) -> None:
    kind = stmt[0]
    if kind == "set":
        if int(stmt[1]) < vars_count:
            lines.append(f"{indent}x{int(stmt[1])} = {_render_expr(stmt[2])};")
    elif kind == "print":
        lines.append(f"{indent}print_int({_render_expr(stmt[1])});")
    elif kind == "priv":
        lines.append(f"{indent}priv_{stmt[1]}({_CAP_TO_CONST[stmt[2]]});")
    elif kind == "open":
        if int(stmt[1]) < vars_count:
            lines.append(f'{indent}x{int(stmt[1])} = open("{stmt[2]}", "{stmt[3]}");')
    elif kind == "close":
        if int(stmt[1]) < vars_count:
            lines.append(f"{indent}close(x{int(stmt[1])});")
    elif kind == "sys1":
        lines.append(f"{indent}{stmt[1]}({int(stmt[2])});")
    elif kind == "chmod":
        lines.append(f'{indent}chmod("{stmt[1]}", {int(stmt[2])});')
    elif kind == "sock":
        if int(stmt[1]) < vars_count:
            lines.append(f"{indent}x{int(stmt[1])} = socket();")
            lines.append(f"{indent}bind(x{int(stmt[1])}, {int(stmt[2])});")
    elif kind == "loop":
        counter = f"t{len(lines)}"
        lines.append(f"{indent}int {counter} = {int(stmt[1])};")
        lines.append(f"{indent}while ({counter} > 0) {{")
        lines.append(f"{indent}    {counter} = {counter} - 1;")
        for inner in stmt[2]:
            _render_stmt(inner, vars_count, indent + "    ", lines)
        lines.append(f"{indent}}}")
    elif kind == "if":
        lines.append(f"{indent}if ({_render_expr(stmt[1])}) {{")
        for inner in stmt[2]:
            _render_stmt(inner, vars_count, indent + "    ", lines)
        if stmt[3]:
            lines.append(f"{indent}}} else {{")
            for inner in stmt[3]:
                _render_stmt(inner, vars_count, indent + "    ", lines)
        lines.append(f"{indent}}}")
    else:
        raise ValueError(f"unknown statement node {stmt!r}")


def render_program(case: Case) -> str:
    """The PrivC source of one program case.

    Statement descriptors are self-contained over a pre-declared pool of
    integer variables, so *any* subset of statements still compiles —
    the shrinker relies on this.
    """
    vars_count = int(case["vars"])
    lines = ["int main() {"]
    for index in range(vars_count):
        lines.append(f"    int x{index} = 0;")
    for stmt in case["body"]:
        _render_stmt(stmt, vars_count, "    ", lines)
    # Print every variable's final value: a value bug anywhere in the
    # program becomes observable on stdout even if the generated
    # statements never happened to use the corrupted result.
    for index in range(vars_count):
        lines.append(f"    print_int(x{index});")
    lines.append("    return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def build_program_spec(case: Case, name: str = "generated") -> ProgramSpec:
    """The pipeline-ready :class:`ProgramSpec` of one program case."""
    return ProgramSpec(
        name=name,
        description="testkit generated program",
        source=render_program(case),
        permitted=CapabilitySet(case["permitted"]),
        uid=int(case["uid"]),
        gid=int(case["gid"]),
    )


# -- family-conditioned corpus programs ----------------------------------------

#: The scenario-corpus program families (see docs/CORPUS.md).  Each is a
#: hand-shaped template over the same statement grammar as
#: :func:`gen_program_case`, conditioned to produce the privilege
#: *shape* of one real-world software class — so peer-group clustering
#: over privilege profiles has structure to find.
PROGRAM_FAMILIES = (
    "daemon",
    "setuid-helper",
    "super-server",
    "container-shim",
    "cron",
)

#: The powerful capability a family's planted least-privilege violator
#: hoards for (nearly) its whole execution.
VIOLATOR_CAP = {
    "daemon": "CapSysAdmin",
    "setuid-helper": "CapDacReadSearch",
    "super-server": "CapKill",
    "container-shim": "CapSysAdmin",
    "cron": "CapDacOverride",
}


def _bracket(cap: str, inner: List[List]) -> List[List]:
    """``priv_raise(cap); inner; priv_lower(cap)`` — the AutoPriv idiom."""
    return [["priv", "raise", cap]] + inner + [["priv", "lower", cap]]


def _compute_loop(rng: random.Random, var: int, count: int) -> List:
    """A bounded busy loop mutating ``var`` — dynamic instruction mass."""
    return [
        "loop", count,
        [["set", var, ["bin", "+", ["var", var], ["lit", rng.choice((1, 2, 3, 7))]]]],
    ]


#: Optional per-family behaviours, drawn as a sorted-key subset so the
#: same seed picks the same features under any PYTHONHASHSEED.
_FAMILY_FEATURES = {
    "daemon": ("logfile", "pidfile", "stats"),
    "setuid-helper": ("audit-log", "retry"),
    "super-server": ("logfile", "per-conn-stats"),
    "container-shim": ("devnull-setup", "stats"),
    "cron": ("joblog", "stats"),
}


def _feature_stmts(feature: str, rng: random.Random) -> List[List]:
    if feature in ("logfile", "audit-log", "joblog"):
        return [["open", 2, "/var/log/sulog", "w"], ["close", 2]]
    if feature == "pidfile":
        return [["open", 2, "/dev/null", "w"], ["close", 2]]
    if feature in ("stats", "per-conn-stats"):
        return [["print", ["bin", "+", ["var", 0], ["lit", rng.randint(0, 9)]]]]
    if feature == "retry":
        return [["if", ["bin", "<", ["var", 0], ["lit", 0]],
                 [["print", ["lit", 1]]], []]]
    if feature == "devnull-setup":
        return [["chmod", "/dev/null", 0o666]]
    raise ValueError(f"unknown family feature {feature!r}")


def _gen_daemon_body(rng: random.Random, features: List[str]) -> Tuple[List, List[str], int, int]:
    port = rng.choice((22, 80, 443))
    drop_uid = rng.choice((998, 1000))
    body: List[List] = []
    body += _bracket("CapNetBindService", [["sock", 1, port]])
    for feature in features:
        body += _feature_stmts(feature, rng)
    body += _bracket("CapSetgid", [["sys1", "setgid", 1000]])
    body += _bracket("CapSetuid", [["sys1", "setuid", drop_uid]])
    serve = [
        ["open", 2, rng.choice(("/etc/passwd", "/dev/null")), "r"],
        ["close", 2],
        ["set", 0, ["bin", "+", ["var", 0], ["lit", 1]]],
    ]
    body.append(["loop", rng.randint(5, 9), serve])
    body.append(_compute_loop(rng, 0, rng.randint(2, 4)))
    caps = ["CapNetBindService", "CapSetgid", "CapSetuid"]
    return body, caps, 0, 0


def _gen_setuid_helper_body(rng: random.Random, features: List[str]) -> Tuple[List, List[str], int, int]:
    body: List[List] = [_compute_loop(rng, 0, rng.randint(2, 4))]
    body += _bracket(
        "CapDacReadSearch",
        [["open", 1, "/etc/shadow", "r"], ["close", 1]],
    )
    for feature in features:
        body += _feature_stmts(feature, rng)
    body.append(_compute_loop(rng, 0, rng.randint(3, 6)))
    caps = ["CapDacReadSearch"]
    if rng.random() < 0.5:
        body += _bracket("CapSetuid", [["sys1", "seteuid", 1000]])
        caps.append("CapSetuid")
    return body, caps, 1000, 1000


def _gen_super_server_body(rng: random.Random, features: List[str]) -> Tuple[List, List[str], int, int]:
    body: List[List] = []
    ports = rng.sample((22, 80, 443, 8080), rng.randint(1, 2))
    binds: List[List] = []
    for index, port in enumerate(ports):
        binds.append(["sock", index, port])
    body += _bracket("CapNetBindService", binds)
    per_conn: List[List] = []
    per_conn += _bracket("CapSetuid", [["sys1", "seteuid", 1000]])
    for feature in features:
        per_conn += _feature_stmts(feature, rng)
    per_conn.append(["set", 0, ["bin", "+", ["var", 0], ["lit", 1]]])
    per_conn += _bracket("CapSetuid", [["sys1", "seteuid", 0]])
    body.append(["loop", rng.randint(3, 6), per_conn])
    caps = ["CapNetBindService", "CapSetuid", "CapSetgid"]
    return body, caps, 0, 0


def _gen_container_shim_body(rng: random.Random, features: List[str]) -> Tuple[List, List[str], int, int]:
    body: List[List] = []
    body += _bracket("CapSysAdmin", [["set", 0, ["lit", 1]]])  # mount rootfs
    body += _bracket(
        "CapChown",
        [["chmod", rng.choice(("/var/log/sulog", "/dev/null")), 0o755]],
    )
    for feature in features:
        body += _feature_stmts(feature, rng)
    body += _bracket("CapSetgid", [["sys1", "setgid", 1000]])
    body += _bracket("CapSetuid", [["sys1", "setuid", rng.choice((1000, 1001))]])
    body.append(_compute_loop(rng, 1, rng.randint(5, 9)))  # container workload
    caps = ["CapSysAdmin", "CapChown", "CapSetgid", "CapSetuid"]
    return body, caps, 0, 0


def _gen_cron_body(rng: random.Random, features: List[str]) -> Tuple[List, List[str], int, int]:
    job: List[List] = []
    job += _bracket("CapSetuid", [["sys1", "seteuid", rng.choice((1000, 1001))]])
    job.append(_compute_loop(rng, 1, rng.randint(2, 4)))
    for feature in features:
        job += _feature_stmts(feature, rng)
    job += _bracket("CapSetuid", [["sys1", "seteuid", 0]])
    body: List[List] = [["loop", rng.randint(2, 4), job]]
    body.append(_compute_loop(rng, 0, rng.randint(2, 3)))
    caps = ["CapSetuid", "CapSetgid"]
    return body, caps, 0, 0


_FAMILY_BUILDERS = {
    "daemon": _gen_daemon_body,
    "setuid-helper": _gen_setuid_helper_body,
    "super-server": _gen_super_server_body,
    "container-shim": _gen_container_shim_body,
    "cron": _gen_cron_body,
}


def gen_corpus_program_case(
    rng: random.Random,
    max_size: int = 20,
    family: Optional[str] = None,
    violator: bool = False,
) -> Case:
    """One family-conditioned PrivC program, as a case.

    Unlike :func:`gen_program_case`'s free-form grammar walk, the body
    follows the named family's privilege template (bind-then-drop for
    daemons, a tight DAC bracket for setuid helpers, …) with seeded
    variation in loop counts, ports, paths and optional features.  With
    ``violator=True`` the family's :data:`VIOLATOR_CAP` is raised before
    the main work and lowered only at the very end — the planted
    least-privilege violation peer-group analysis must flag.
    """
    if family is None:
        family = rng.choice(PROGRAM_FAMILIES)
    if family not in _FAMILY_BUILDERS:
        raise ValueError(
            f"unknown program family {family!r}; known: {', '.join(PROGRAM_FAMILIES)}"
        )
    features = subset(rng, _FAMILY_FEATURES[family], 0, 2)
    body, caps, uid, gid = _FAMILY_BUILDERS[family](rng, features)
    if violator:
        hoarded = VIOLATOR_CAP[family]
        if hoarded not in caps:
            caps.append(hoarded)
        body = (
            [["priv", "raise", hoarded]]
            + body
            + [["priv", "lower", hoarded]]
        )
    return {
        "family": family,
        "violator": bool(violator),
        "vars": 3,
        "body": body,
        "permitted": sorted(caps),
        "uid": uid,
        "gid": gid,
    }


# -- kernel syscall traces -----------------------------------------------------

#: The trace generator's catalog: (name, argument generators).  Every
#: call takes the acting pid first; generated arguments keep within the
#: machine ``build_kernel`` creates.
def gen_trace_case(rng: random.Random, max_size: int = 20) -> Case:
    """A straight-line syscall trace against a fresh machine."""
    steps: List[List] = []
    for _ in range(rng.randint(1, max(2, max_size // 2))):
        roll = rng.random()
        if roll < 0.3:
            steps.append(["open", rng.choice(_PATH_POOL), rng.choice(("r", "w"))])
        elif roll < 0.4:
            steps.append(["close", rng.randint(3, 6)])
        elif roll < 0.55:
            steps.append(
                [rng.choice(("setuid", "seteuid", "setgid", "setegid")),
                 rng.choice((0, 1000, 1001))]
            )
        elif roll < 0.7:
            steps.append(["chmod", rng.choice(_PATH_POOL), rng.choice((0o600, 0o644))])
        elif roll < 0.8:
            steps.append(["chown", rng.choice(_PATH_POOL),
                          rng.choice(UID_POOL), rng.choice(GID_POOL)])
        elif roll < 0.9:
            steps.append(["socket_bind", rng.choice((22, 8080))])
        else:
            steps.append(["access", rng.choice(_PATH_POOL), rng.choice(("r", "w"))])
    return {
        "uid": rng.choice((0, 1000, 1001)),
        "gid": rng.choice((0, 1000)),
        "caps": gen_capset_names(rng, max_size=3),
        "steps": steps,
    }


def apply_trace(case: Case, kernel, pid: int) -> List:
    """Run one trace case against ``kernel``; returns per-step outcomes.

    Failures become ``["err", errno]`` entries rather than exceptions, so
    traces exercise the access-control error paths too.
    """
    from repro.oskernel.errors import SyscallError

    outcomes: List = []
    for step in case["steps"]:
        name, args = step[0], step[1:]
        try:
            if name == "open":
                outcomes.append(kernel.sys_open(pid, args[0], args[1]))
            elif name == "close":
                outcomes.append(kernel.sys_close(pid, args[0]))
            elif name in ("setuid", "seteuid", "setgid", "setegid"):
                outcomes.append(getattr(kernel, f"sys_{name}")(pid, args[0]))
            elif name == "chmod":
                outcomes.append(kernel.sys_chmod(pid, args[0], args[1]))
            elif name == "chown":
                outcomes.append(kernel.sys_chown(pid, args[0], args[1], args[2]))
            elif name == "socket_bind":
                fd = kernel.sys_socket(pid)
                outcomes.append(kernel.sys_bind(pid, fd, args[0]))
            elif name == "access":
                outcomes.append(kernel.sys_access(pid, args[0], args[1]))
            else:
                raise ValueError(f"unknown trace step {name!r}")
        except SyscallError as error:
            outcomes.append(["err", error.errno])
    return outcomes
